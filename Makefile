# Common development targets.

.PHONY: install test lint gradcheck bench bench-perf bench-train examples report clean

install:
	pip install -e . || python setup.py develop

test:
	python -m pytest tests/

test-slow:
	python -m pytest tests/ -m slow

# Framework-invariant linter (rules RN001-RN006); must exit 0.
lint:
	PYTHONPATH=src python -m repro.analysis.lint src/ tests/ benchmarks/

# Numerical-gradient sweep over every differentiable nn op.
gradcheck:
	PYTHONPATH=src python -m repro.analysis.gradcheck

bench: bench-perf
	python -m pytest benchmarks/ --benchmark-only

# Batched-inference perf benchmark; writes BENCH_block_inference.json.
bench-perf:
	python -m pytest benchmarks/test_perf_inference.py -q -s

# Batched-training perf benchmark; writes BENCH_training.json.
# BENCH_TRAIN_SMOKE=1 shrinks it to a CI-sized smoke run.
bench-train:
	python -m pytest benchmarks/test_perf_training.py -q -s

examples:
	python examples/quickstart.py
	python examples/pretraining_objectives.py
	python examples/distant_ner.py
	python examples/talent_screening.py
	python examples/error_analysis.py

# Instrumented training run + human-readable summary of its JSONL log.
# Override the log path with RUN=path/to/run.jsonl (skips the training
# step when the file already exists).
RUN ?= run_telemetry.jsonl
report:
	@test -f $(RUN) || PYTHONPATH=src python examples/telemetry_run.py $(RUN)
	PYTHONPATH=src python -m repro.obs.report $(RUN)

clean:
	rm -rf .pytest_cache .benchmarks .hypothesis benchmarks/results
	rm -f run_telemetry.jsonl
	find . -name __pycache__ -type d -exec rm -rf {} +
