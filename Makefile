# Common development targets.

.PHONY: install test lint lock-audit gradcheck bench bench-perf bench-train bench-quant bench-parallel bench-history serve-obs examples report compare baseline clean

install:
	pip install -e . || python setup.py develop

test:
	python -m pytest tests/

test-slow:
	python -m pytest tests/ -m slow

# Framework-invariant linter: autograd rules RN001-RN006 plus the
# concurrency tier RN007-RN012, gated against the committed baseline
# (analysis/baseline.json); must exit 0 on new findings only.
lint:
	PYTHONPATH=src python -m repro.analysis.lint src/ tests/ benchmarks/ \
		--baseline analysis/baseline.json

# Runtime lock-order sanitizer ("tsan-lite") over the threaded suites;
# exits 1 on any lock-order cycle.  Writes lock_audit_report.json.
lock-audit:
	PYTHONPATH=src python -m repro.analysis.lock_audit tests/obs tests/parallel \
		--json-out lock_audit_report.json

# Numerical-gradient sweep over every differentiable nn op.
gradcheck:
	PYTHONPATH=src python -m repro.analysis.gradcheck

bench: bench-perf
	python -m pytest benchmarks/ --benchmark-only

# Batched-inference perf benchmark; writes BENCH_block_inference.json.
bench-perf:
	python -m pytest benchmarks/test_perf_inference.py -q -s

# Batched-training perf benchmark; writes BENCH_training.json.
# BENCH_TRAIN_SMOKE=1 shrinks it to a CI-sized smoke run.
bench-train:
	python -m pytest benchmarks/test_perf_training.py -q -s

# int8-vs-float parity + latency benchmark; writes
# BENCH_quantized_inference.json (fails on an F1 parity regression —
# this is the CI quantization-parity gate).
bench-quant:
	python -m pytest benchmarks/test_perf_quantized.py -q -s

# Data-parallel scaling benchmark (1/2/4 workers); writes
# BENCH_parallel.json.  Asserts 1-vs-2-worker parameter parity always;
# the >= 1.6x speedup floor at 4 workers only applies on machines with
# >= 4 cores.  BENCH_PARALLEL_SMOKE=1 shrinks it to a CI-sized smoke run.
bench-parallel:
	python -m pytest benchmarks/test_perf_parallel.py -q -s

# Benchmark trajectory gate: render the committed perf history and exit 1
# when any bench's latest full record regresses against the trailing
# median (this is the CI obs-serve gate's second half).
bench-history:
	PYTHONPATH=src python -m repro.obs.bench_history
	PYTHONPATH=src python -m repro.obs.bench_history --check

# Live observability plane: train the tiny example model with alerts,
# SLOs and the profiler armed, then serve /metrics /health /ready
# /alerts /trace /profile on PORT (default 9099) until Ctrl-C.
PORT ?= 9099
serve-obs:
	PYTHONPATH=src python examples/serve_obs.py --port $(PORT)

examples:
	python examples/quickstart.py
	python examples/pretraining_objectives.py
	python examples/distant_ner.py
	python examples/talent_screening.py
	python examples/error_analysis.py

# Instrumented training run + human-readable summary of its JSONL log.
# Override the log path with RUN=path/to/run.jsonl (skips the training
# step when the file already exists).
RUN ?= run_telemetry.jsonl
report:
	@test -f $(RUN) || PYTHONPATH=src python examples/telemetry_run.py $(RUN)
	PYTHONPATH=src python -m repro.obs.report $(RUN)

# Regression gate: diff a fresh instrumented run against the committed
# baseline log.  --no-timing because the baseline ran on another machine;
# exits non-zero on a loss or validation regression (this is the CI
# obs-gate).  Override the candidate with RUN=..., the baseline with
# BASELINE=...
BASELINE ?= baselines/run_telemetry_baseline.jsonl
compare:
	@test -f $(RUN) || PYTHONPATH=src python examples/telemetry_run.py $(RUN)
	PYTHONPATH=src python -m repro.obs.compare $(BASELINE) $(RUN) \
		--no-timing --require-complete --json-out obs_gate_diff.json

# Refresh the committed baseline after an intentional training change.
baseline:
	PYTHONPATH=src python examples/telemetry_run.py $(BASELINE)
	PYTHONPATH=src python -m repro.obs.report $(BASELINE)

clean:
	rm -rf .pytest_cache .benchmarks .hypothesis benchmarks/results
	rm -f run_telemetry.jsonl obs_gate_diff.json lock_audit_report.json
	find . -name __pycache__ -type d -exec rm -rf {} +
