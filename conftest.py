"""Pin BLAS threads before numpy loads anywhere in the test session."""

import os

for var in (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
):
    os.environ.setdefault(var, "1")
