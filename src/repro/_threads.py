"""Pin BLAS to a single thread.

The library's numpy workloads are many small matmuls; OpenBLAS's default
thread pool (sized for large GEMMs) causes severe spin-wait contention on
them — on a single-core machine the first training step can run 30-40x
slower than steady state.  Importing this module (which ``repro`` does
before its own numpy import) caps the common BLAS thread-count environment
variables so any BLAS loaded afterwards starts single-threaded.

If numpy was already imported with a multi-threaded BLAS, the cap cannot be
applied retroactively; set ``OMP_NUM_THREADS=1`` in the environment instead
(the test and benchmark suites do this in ``conftest.py``).
"""

from __future__ import annotations

import os
from typing import Optional

_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)


def limit_blas_threads(count: Optional[int] = None) -> None:
    """Cap BLAS threads via environment (no-op for already-loaded BLAS).

    With ``count=None`` (the default, used at ``repro`` import time) each
    thread-count variable is only *defaulted* to 1, so values the user set
    in the environment win.  An explicit ``count`` is a request and
    overrides pre-set variables — callers who pass one expect it honoured.

    Either way the variables only take effect for BLAS libraries loaded
    afterwards.  If numpy is already imported, set the variables before
    starting Python instead; the repo's root and benchmark ``conftest.py``
    files do exactly that (``os.environ.setdefault`` before any test
    import) as the fallback for test runs that bypass this module.
    """
    for var in _ENV_VARS:
        if count is None:
            os.environ.setdefault(var, "1")
        else:
            os.environ[var] = str(count)


limit_blas_threads()
