"""Pin BLAS to a single thread.

The library's numpy workloads are many small matmuls; OpenBLAS's default
thread pool (sized for large GEMMs) causes severe spin-wait contention on
them — on a single-core machine the first training step can run 30-40x
slower than steady state.  Importing this module (which ``repro`` does
before its own numpy import) caps the common BLAS thread-count environment
variables so any BLAS loaded afterwards starts single-threaded.

If numpy was already imported with a multi-threaded BLAS, the cap cannot be
applied retroactively; set ``OMP_NUM_THREADS=1`` in the environment instead
(the test and benchmark suites do this in ``conftest.py``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)


def blas_thread_counts() -> Dict[str, Optional[str]]:
    """The effective BLAS thread-count environment, for reporting.

    Maps each capped variable to its current value (None when unset).
    ``repro.parallel`` workers include this in their ready handshake so
    tests can assert every worker actually runs under a single-threaded
    BLAS rather than trusting that the cap was applied in time.
    """
    return {var: os.environ.get(var) for var in _ENV_VARS}


def limit_blas_threads(count: Optional[int] = None) -> None:
    """Cap BLAS threads via environment (no-op for already-loaded BLAS).

    With ``count=None`` (the default, used at ``repro`` import time) each
    thread-count variable is only *defaulted* to 1, so values the user set
    in the environment win.  An explicit ``count`` is a request and
    overrides pre-set variables — callers who pass one expect it honoured.

    Either way the variables only take effect for BLAS libraries loaded
    afterwards.  If numpy is already imported, set the variables before
    starting Python instead; the repo's root and benchmark ``conftest.py``
    files do exactly that (``os.environ.setdefault`` before any test
    import) as the fallback for test runs that bypass this module.
    """
    for var in _ENV_VARS:
        if count is None:
            os.environ.setdefault(var, "1")
        else:
            os.environ[var] = str(count)


@contextmanager
def blas_threads_pinned(count: int = 1) -> Iterator[None]:
    """Temporarily force the BLAS thread-count environment to ``count``.

    Unlike :func:`limit_blas_threads`, this restores the previous values
    (including unset) on exit.  ``repro.parallel`` wraps worker-process
    spawning in it: under the ``spawn`` start method the children inherit
    the environment *before* their first numpy import — the only moment
    the cap is guaranteed to bind — while the parent's own policy stays
    whatever the user configured.
    """
    previous = {var: os.environ.get(var) for var in _ENV_VARS}
    for var in _ENV_VARS:
        os.environ[var] = str(count)
    try:
        yield
    finally:
        for var, value in previous.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value


limit_blas_threads()
