"""Pin BLAS to a single thread.

The library's numpy workloads are many small matmuls; OpenBLAS's default
thread pool (sized for large GEMMs) causes severe spin-wait contention on
them — on a single-core machine the first training step can run 30-40x
slower than steady state.  Importing this module (which ``repro`` does
before its own numpy import) caps the common BLAS thread-count environment
variables so any BLAS loaded afterwards starts single-threaded.

If numpy was already imported with a multi-threaded BLAS, the cap cannot be
applied retroactively; set ``OMP_NUM_THREADS=1`` in the environment instead
(the test and benchmark suites do this in ``conftest.py``).
"""

from __future__ import annotations

import os

_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)


def limit_blas_threads(count: int = 1) -> None:
    """Cap BLAS threads via environment (no-op for already-loaded BLAS)."""
    for var in _ENV_VARS:
        os.environ.setdefault(var, str(count))


limit_blas_threads(1)
