"""``repro.nn`` — a self-contained numpy neural-network substrate.

The environment for this reproduction has no deep-learning framework, so the
entire stack — reverse-mode autograd, Transformer encoders, LSTMs, CRFs and
optimisers — is implemented here from scratch and gradient-checked in the
test suite.
"""

from . import functional, init, quantize
from .attention import (
    MultiHeadSelfAttention,
    TransformerEncoder,
    TransformerEncoderLayer,
    fused_self_attention,
)
from .crf import FuzzyCrf, LinearChainCrf
from .layers import Dropout, Embedding, LayerNorm, Linear, Mlp
from .module import Module, ModuleList, Parameter, Sequential
from .optim import Adam, AdamW, LinearWarmupSchedule, ParamGroup, Sgd, clip_grad_norm
from .quantize import QuantizedLinear, dequantize, quantize_model
from .recurrent import BiLstm, Lstm, LstmCell, fused_lstm_step
from .serialization import load_module, load_state, save_module, save_state
from .tensor import Tensor, as_tensor, concat, is_grad_enabled, no_grad, stack, where

__all__ = [
    "functional",
    "init",
    "quantize",
    "Tensor",
    "as_tensor",
    "concat",
    "stack",
    "where",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "Mlp",
    "MultiHeadSelfAttention",
    "TransformerEncoder",
    "TransformerEncoderLayer",
    "fused_self_attention",
    "Lstm",
    "LstmCell",
    "BiLstm",
    "fused_lstm_step",
    "QuantizedLinear",
    "quantize_model",
    "dequantize",
    "LinearChainCrf",
    "FuzzyCrf",
    "Sgd",
    "Adam",
    "AdamW",
    "ParamGroup",
    "LinearWarmupSchedule",
    "clip_grad_norm",
    "save_state",
    "load_state",
    "save_module",
    "load_module",
]
