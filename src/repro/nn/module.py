"""Module base class: parameter registration, train/eval mode, state dicts."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "ModuleList", "Sequential"]


class Parameter(Tensor):
    """A tensor that is registered as a trainable model parameter."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all neural network modules.

    Submodules and parameters assigned as attributes are discovered
    automatically, mirroring the PyTorch convention.
    """

    def __init__(self):
        self.training = True

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, value in vars(self).items():
            if isinstance(value, Parameter):
                yield f"{prefix}{name}", value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()

    # ------------------------------------------------------------------
    # Mode and gradient management
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, value in state.items():
            target = params[name]
            if target.data.shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{target.data.shape} vs {value.shape}"
                )
            target.data = value.astype(np.float64).copy()

    def copy_from(self, other: "Module") -> None:
        """Copy all parameter values from an identically-shaped module."""
        self.load_state_dict(other.state_dict())

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """Hold an ordered list of submodules with parameter discovery."""

    def __init__(self, modules=()):
        super().__init__()
        self._items: List[Module] = list(modules)

    def append(self, module: Module) -> None:
        self._items.append(module)

    def __iter__(self):
        return iter(self._items)

    def __len__(self):
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def named_parameters(self, prefix: str = ""):
        for i, module in enumerate(self._items):
            yield from module.named_parameters(prefix=f"{prefix}{i}.")

    def modules(self):
        yield self
        for module in self._items:
            yield from module.modules()


class Sequential(ModuleList):
    """Apply submodules in order."""

    def forward(self, x):
        for module in self._items:
            x = module(x)
        return x
