"""LSTM and bidirectional LSTM layers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor, concat, is_grad_enabled, stack

__all__ = ["fused_lstm_step", "LstmCell", "Lstm", "BiLstm"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


def fused_lstm_step(
    x: Tensor,
    h_prev: Tensor,
    c_prev: Tensor,
    weight: Tensor,
    bias: Tensor,
) -> Tuple[Tensor, Tensor]:
    """One LSTM time step as a fused autograd op.

    Runs the whole gate computation — ``[x;h] @ W + b``, the four gate
    nonlinearities, the cell update and the output — in raw numpy, and
    returns ``(h, c)`` as two graph nodes that share one cached set of
    activations.  The compositional cell builds ~15 primitive nodes per
    step; this builds two.

    Gradients are additive across the two outputs, so each node's
    backward pushes its own incoming gradient through the shared
    analytic closure: the ``h`` gradient enters via the output gate and
    ``tanh(c)``, the ``c`` gradient directly via the cell state.
    """
    hd = bias.shape[0] // 4
    input_dim = x.shape[-1]
    combined = np.concatenate([x.data, h_prev.data], axis=-1)
    gates = combined @ weight.data + bias.data
    i = _sigmoid(gates[:, :hd])
    f = _sigmoid(gates[:, hd : 2 * hd])
    g = np.tanh(gates[:, 2 * hd : 3 * hd])
    o = _sigmoid(gates[:, 3 * hd :])
    c_data = f * c_prev.data + i * g
    tanh_c = np.tanh(c_data)
    h_data = o * tanh_c

    def push(dh: Optional[np.ndarray], dc: np.ndarray) -> None:
        d_o = np.zeros_like(o) if dh is None else dh * tanh_c * o * (1.0 - o)
        d_gates = np.concatenate(
            [
                dc * g * i * (1.0 - i),
                dc * c_prev.data * f * (1.0 - f),
                dc * i * (1.0 - g**2),
                d_o,
            ],
            axis=-1,
        )
        weight._accumulate(combined.T @ d_gates)
        bias._accumulate(d_gates.sum(axis=0))
        d_combined = d_gates @ weight.data.T
        x._accumulate(d_combined[:, :input_dim])
        h_prev._accumulate(d_combined[:, input_dim:])
        c_prev._accumulate(dc * f)

    def backward_h(grad: np.ndarray) -> None:
        push(grad, grad * o * (1.0 - tanh_c**2))

    def backward_c(grad: np.ndarray) -> None:
        push(None, grad)

    parents = (x, h_prev, c_prev, weight, bias)
    return x._make(h_data, parents, backward_h), x._make(c_data, parents, backward_c)


class LstmCell(Module):
    """A single LSTM cell computing one time step for a batch."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or init.default_rng()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.weight = Parameter(
            init.xavier_uniform((input_dim + hidden_dim, 4 * hidden_dim), rng)
        )
        bias = init.zeros(4 * hidden_dim)
        # Forget-gate bias of 1.0 eases gradient flow early in training.
        bias[hidden_dim : 2 * hidden_dim] = 1.0
        self.bias = Parameter(bias)

    def forward(
        self, x: Tensor, state: Tuple[Tensor, Tensor]
    ) -> Tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        return fused_lstm_step(x, h_prev, c_prev, self.weight, self.bias)

    def _step_reference(
        self, x: Tensor, state: Tuple[Tensor, Tensor]
    ) -> Tuple[Tensor, Tensor]:
        """Compositional-autograd step (parity reference for the fused op)."""
        h_prev, c_prev = state
        combined = concat([x, h_prev], axis=-1)
        gates = combined @ self.weight + self.bias
        hd = self.hidden_dim
        i = gates[:, 0 * hd : 1 * hd].sigmoid()
        f = gates[:, 1 * hd : 2 * hd].sigmoid()
        g = gates[:, 2 * hd : 3 * hd].tanh()
        o = gates[:, 3 * hd : 4 * hd].sigmoid()
        c = f * c_prev + i * g
        h = o * c.tanh()
        return h, c


class Lstm(Module):
    """Unidirectional LSTM over ``(batch, seq, dim)`` inputs."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        reverse: bool = False,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.cell = LstmCell(input_dim, hidden_dim, rng=rng)
        self.hidden_dim = hidden_dim
        self.reverse = reverse

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        """Run the recurrence over ``(batch, seq, dim)`` inputs.

        ``mask`` is an optional ``(batch, seq)`` 0/1 validity array for
        ragged batches (padding must be a suffix).  Masked steps carry the
        zero initial state, so each sequence's outputs match running it
        alone at its true length — in particular the *reverse* direction
        starts from each sequence's own last valid step instead of from the
        shared padded end.
        """
        if not is_grad_enabled():
            return Tensor(self._forward_inference(x.data, mask))
        return self._forward_train_fused(x, mask)

    def _forward_train_fused(
        self, x: Tensor, mask: Optional[np.ndarray] = None
    ) -> Tensor:
        """Training path as ONE autograd node with hand-written BPTT.

        The compositional recurrence builds ~15 graph nodes per time step;
        for 100-step resumes that dominates training time.  This runs the
        forward in raw numpy, caches per-step activations, and implements
        backpropagation-through-time analytically.  The input projection of
        every time step is hoisted into a single GEMM; only the hidden-state
        projection stays inside the (inherently sequential) time loop.
        """
        data = x.data
        batch, seq, input_dim = data.shape
        hd = self.hidden_dim
        weight = self.cell.weight
        bias = self.cell.bias
        w = weight.data
        w_h = w[input_dim:]
        valid = None if mask is None else np.asarray(mask, dtype=np.float64)

        # Ragged batches: steps past the longest sequence are pure padding
        # (masking is suffix-only), where h/c are zeroed anyway — skip them.
        limit = seq if valid is None else int(valid.sum(axis=1).max())
        steps = list(range(limit - 1, -1, -1) if self.reverse else range(limit))
        xw = data.reshape(batch * seq, input_dim) @ w[:input_dim]
        xw = xw.reshape(batch, seq, 4 * hd) + bias.data
        h = np.zeros((batch, hd))
        c = np.zeros((batch, hd))
        outputs = np.zeros((batch, seq, hd))
        cache = {}
        for t in steps:
            h_prev = h
            gates = xw[:, t] + h_prev @ w_h
            i = _sigmoid(gates[:, :hd])
            f = _sigmoid(gates[:, hd : 2 * hd])
            g = np.tanh(gates[:, 2 * hd : 3 * hd])
            o = _sigmoid(gates[:, 3 * hd :])
            c_prev = c
            c = f * c_prev + i * g
            tanh_c = np.tanh(c)
            h = o * tanh_c
            if valid is not None:
                step = valid[:, t][:, None]
                h = h * step
                c = c * step
            outputs[:, t, :] = h
            cache[t] = (h_prev, i, f, g, o, c_prev, tanh_c)

        def backward(grad: np.ndarray) -> None:
            grad_x = np.zeros_like(data)
            grad_w = np.zeros_like(w)
            grad_b = np.zeros_like(bias.data)
            dh_next = np.zeros((batch, hd))
            dc_next = np.zeros((batch, hd))
            for t in reversed(steps):
                h_prev, i, f, g, o, c_prev, tanh_c = cache[t]
                dh = grad[:, t, :] + dh_next
                dc = dc_next
                if valid is not None:
                    step = valid[:, t][:, None]
                    dh = dh * step
                    dc = dc * step
                dc = dc + dh * o * (1.0 - tanh_c**2)
                d_gates = np.concatenate(
                    [
                        dc * g * i * (1.0 - i),
                        dc * c_prev * f * (1.0 - f),
                        dc * i * (1.0 - g**2),
                        dh * tanh_c * o * (1.0 - o),
                    ],
                    axis=-1,
                )
                grad_w[:input_dim] += data[:, t].T @ d_gates
                grad_w[input_dim:] += h_prev.T @ d_gates
                grad_b += d_gates.sum(axis=0)
                d_combined = d_gates @ w.T
                grad_x[:, t, :] = d_combined[:, :input_dim]
                dh_next = d_combined[:, input_dim:]
                dc_next = dc * f
            x._accumulate(grad_x)
            weight._accumulate(grad_w)
            bias._accumulate(grad_b)

        return x._make(outputs, (x, weight, bias), backward)

    def _forward_train_reference(self, x: Tensor) -> Tensor:
        """Compositional-autograd recurrence (slow; verification only)."""
        batch, seq, _ = x.shape
        h = Tensor(np.zeros((batch, self.hidden_dim)))
        c = Tensor(np.zeros((batch, self.hidden_dim)))
        steps = range(seq - 1, -1, -1) if self.reverse else range(seq)
        outputs = [None] * seq
        for t in steps:
            h, c = self.cell(x[:, t, :], (h, c))
            outputs[t] = h
        return stack(outputs, axis=1)

    def _forward_inference(
        self, x: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Fused numpy recurrence — no autograd dispatch on the hot path.

        The input projection for all time steps runs as one GEMM up front;
        the per-step work is a single ``(batch, hd) @ (hd, 4hd)`` matmul
        plus elementwise gates, so batching documents amortises the python
        loop across the whole batch.  The recurrence follows the input
        dtype, so a float32 serving pipeline stays narrow end to end.
        """
        batch, seq, input_dim = x.shape
        hd = self.hidden_dim
        weight = self.cell.weight.data
        bias = self.cell.bias.data
        if weight.dtype != x.dtype:
            weight = weight.astype(x.dtype)
            bias = bias.astype(x.dtype)
        w_h = weight[input_dim:]
        valid = None if mask is None else np.asarray(mask, dtype=x.dtype)
        xw = x.reshape(batch * seq, input_dim) @ weight[:input_dim]
        xw = xw.reshape(batch, seq, 4 * hd) + bias
        h = np.zeros((batch, hd), dtype=x.dtype)
        c = np.zeros((batch, hd), dtype=x.dtype)
        outputs = np.zeros((batch, seq, hd), dtype=x.dtype)
        # As in training: fully-padded trailing steps contribute zeros.
        limit = seq if valid is None else int(valid.sum(axis=1).max())
        steps = range(limit - 1, -1, -1) if self.reverse else range(limit)
        for t in steps:
            gates = xw[:, t] + h @ w_h
            i = _sigmoid(gates[:, :hd])
            f = _sigmoid(gates[:, hd : 2 * hd])
            g = np.tanh(gates[:, 2 * hd : 3 * hd])
            o = _sigmoid(gates[:, 3 * hd :])
            c = f * c + i * g
            h = o * np.tanh(c)
            if valid is not None:
                step = valid[:, t][:, None]
                h = h * step
                c = c * step
            outputs[:, t, :] = h
        return outputs


class BiLstm(Module):
    """Bidirectional LSTM concatenating forward and backward hidden states.

    Implements Eq. (8) of the paper: the output at each step is the
    concatenation ``[h_forward ; h_backward]`` of dimension ``2 * hidden_dim``.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or init.default_rng()
        self.forward_lstm = Lstm(input_dim, hidden_dim, reverse=False, rng=rng)
        self.backward_lstm = Lstm(input_dim, hidden_dim, reverse=True, rng=rng)
        self.output_dim = 2 * hidden_dim

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        fwd = self.forward_lstm(x, mask=mask)
        bwd = self.backward_lstm(x, mask=mask)
        return concat([fwd, bwd], axis=-1)

    def infer(self, x: np.ndarray, mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Forward-only bidirectional pass on a raw array (no boxing)."""
        return np.concatenate(
            [
                self.forward_lstm._forward_inference(x, mask),
                self.backward_lstm._forward_inference(x, mask),
            ],
            axis=-1,
        )
