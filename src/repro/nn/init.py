"""Weight initialisation schemes with an explicit RNG for reproducibility."""

from __future__ import annotations

import numpy as np

__all__ = ["default_rng", "xavier_uniform", "normal", "zeros", "ones", "uniform"]

_GLOBAL_SEED = 0


def default_rng(seed: int | None = None) -> np.random.Generator:
    """Return a numpy Generator; seed defaults to the library-wide seed."""
    return np.random.default_rng(_GLOBAL_SEED if seed is None else seed)


def xavier_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for weight matrices."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def normal(shape, rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """BERT-style truncated-ish normal initialisation."""
    return rng.normal(0.0, std, size=shape)


def uniform(shape, rng: np.random.Generator, limit: float = 0.1) -> np.ndarray:
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape)


def ones(shape) -> np.ndarray:
    return np.ones(shape)


def _fans(shape) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[:-1]))
    return fan_in, shape[-1]
