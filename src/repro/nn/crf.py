"""Linear-chain conditional random fields.

Provides the standard CRF used by the block classifier and NER baselines
(forward-algorithm loss, Viterbi decoding) and the *fuzzy* CRF of
Shang et al. (2018) used for distantly supervised data, where each position
may carry a set of permitted tags and the likelihood marginalises over all
paths consistent with the constraints.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from . import init
from .functional import logsumexp
from .module import Module, Parameter
from .tensor import Tensor, where

__all__ = ["LinearChainCrf", "FuzzyCrf"]

_NEG_INF = -1e9


def _lse(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable log-sum-exp over ``axis`` (pure numpy, used by the fused op)."""
    m = np.max(x, axis=axis, keepdims=True)
    m = np.where(np.isfinite(m), m, 0.0)
    return np.squeeze(m, axis) + np.log(np.exp(x - m).sum(axis=axis))


def _fused_log_partition(
    emissions: Tensor,
    transitions,
    start_scores,
    end_scores,
    lengths: np.ndarray,
) -> Tensor:
    """Log partition per sequence as ONE autograd node.

    The naive composition of tensor ops builds thousands of graph nodes per
    document (a python-level forward recursion); this fused operator runs
    the forward pass in raw numpy and implements the analytic gradient — the
    forward-backward marginals — making CRF training ~10x faster.  Gradients
    flow to the emissions, the transition matrix, and the start/end scores.

    Both recursions are vectorised over the batch axis: ragged lengths are
    handled by carrying each sequence's alpha forward unchanged past its
    last valid step, so the only python loop left is the (inherently
    sequential) time recursion.
    """
    emissions_data = emissions.data
    batch, seq, num_tags = emissions_data.shape
    trans = transitions.data
    start = start_scores.data
    end = end_scores.data
    lengths = np.asarray(lengths, dtype=np.int64)
    batch_idx = np.arange(batch)

    # Forward pass: alphas for the whole batch (stored for the backward
    # pass).  Past a sequence's length the alpha is carried unchanged, so
    # ``alphas[b, t >= length]`` equals the final alpha of sequence ``b``.
    alphas = np.empty((batch, seq, num_tags))
    alpha = start + emissions_data[:, 0]
    alphas[:, 0] = alpha
    for t in range(1, seq):
        advanced = _lse(alpha[:, :, None] + trans[None], axis=1)
        advanced = advanced + emissions_data[:, t]
        step = (t < lengths)[:, None]
        alpha = np.where(step, advanced, alpha)
        alphas[:, t] = alpha
    log_z = _lse(alpha + end, axis=1)

    def backward(grad: np.ndarray) -> None:
        # Backward (beta) recursion, batched: beta resets to the end scores
        # at each sequence's last valid step and is inert in the padding.
        betas = np.empty((batch, seq, num_tags))
        beta = np.broadcast_to(end, (batch, num_tags))
        betas[:, seq - 1] = beta
        for t in range(seq - 2, -1, -1):
            stepped = _lse(
                trans[None]
                + emissions_data[:, t + 1][:, None, :]
                + beta[:, None, :],
                axis=2,
            )
            is_last = (t == lengths - 1)[:, None]
            inside = (t < lengths - 1)[:, None]
            beta = np.where(is_last, end[None, :], np.where(inside, stepped, beta))
            betas[:, t] = beta

        valid = (np.arange(seq)[None, :] < lengths[:, None]).astype(np.float64)
        g = grad[:, None, None]
        # Unary marginals (zeroed in the padding).
        marginals = np.exp(alphas + betas - log_z[:, None, None])
        marginals *= valid[:, :, None]
        emissions._accumulate(g * marginals)
        start_scores._accumulate((grad[:, None] * marginals[:, 0]).sum(axis=0))
        final_alpha = alphas[batch_idx, lengths - 1]
        end_scores._accumulate(
            (
                grad[:, None]
                * np.exp(final_alpha + end - log_z[:, None])
            ).sum(axis=0)
        )
        # Pairwise marginals -> transition gradient, over all (b, t) at once.
        if seq > 1:
            pair = np.exp(
                alphas[:, :-1, :, None]
                + trans[None, None]
                + emissions_data[:, 1:, None, :]
                + betas[:, 1:, None, :]
                - log_z[:, None, None, None]
            )
            pair *= (g * valid[:, 1:, None])[..., None]
            transitions._accumulate(pair.sum(axis=(0, 1)))
        else:
            transitions._accumulate(np.zeros_like(trans))

    return emissions._make(
        log_z, (emissions, transitions, start_scores, end_scores), backward
    )


def _fused_gold_score(
    emissions: Tensor,
    transitions,
    start_scores,
    end_scores,
    tags: np.ndarray,
    mask: np.ndarray,
) -> Tensor:
    """Gold-path score per sequence as one autograd node (count gradients)."""
    emissions_data = emissions.data
    batch, seq, _ = emissions_data.shape
    lengths = mask.sum(axis=1).astype(np.int64)
    batch_idx = np.arange(batch)

    scores = start_scores.data[tags[:, 0]] + emissions_data[batch_idx, 0, tags[:, 0]]
    for t in range(1, seq):
        step = mask[:, t]
        scores = scores + step * (
            emissions_data[batch_idx, t, tags[:, t]]
            + transitions.data[tags[:, t - 1], tags[:, t]]
        )
    last_tags = tags[batch_idx, lengths - 1]
    scores = scores + end_scores.data[last_tags]

    def backward(grad: np.ndarray) -> None:
        grad_emissions = np.zeros_like(emissions_data)
        grad_trans = np.zeros_like(transitions.data)
        grad_start = np.zeros_like(start_scores.data)
        grad_end = np.zeros_like(end_scores.data)
        np.add.at(grad_emissions, (batch_idx, 0, tags[:, 0]), grad)
        np.add.at(grad_start, tags[:, 0], grad)
        for t in range(1, seq):
            weight = grad * mask[:, t]
            np.add.at(grad_emissions, (batch_idx, t, tags[:, t]), weight)
            np.add.at(grad_trans, (tags[:, t - 1], tags[:, t]), weight)
        np.add.at(grad_end, last_tags, grad)
        emissions._accumulate(grad_emissions)
        transitions._accumulate(grad_trans)
        start_scores._accumulate(grad_start)
        end_scores._accumulate(grad_end)

    return emissions._make(
        scores, (emissions, transitions, start_scores, end_scores), backward
    )


class LinearChainCrf(Module):
    """Linear-chain CRF layer over emission scores.

    Emissions have shape ``(batch, seq, num_tags)``.  ``mask`` is a 0/1 array
    of shape ``(batch, seq)``; position 0 must be valid for every sequence.
    """

    def __init__(self, num_tags: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or init.default_rng()
        self.num_tags = num_tags
        self.transitions = Parameter(init.uniform((num_tags, num_tags), rng))
        self.start_scores = Parameter(init.uniform((num_tags,), rng))
        self.end_scores = Parameter(init.uniform((num_tags,), rng))

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def neg_log_likelihood(
        self,
        emissions: Tensor,
        tags: np.ndarray,
        mask: Optional[np.ndarray] = None,
        reduction: str = "mean",
    ) -> Tensor:
        """Batched CRF NLL.  ``reduction``: ``"mean"`` (per-sequence mean —
        the batched-training invariant: equals the mean of single-sequence
        losses), ``"sum"``, or ``"none"`` (per-sequence vector)."""
        tags = np.asarray(tags, dtype=np.int64)
        mask = self._prepare_mask(mask, tags.shape)
        gold = self._score_sequence(emissions, tags, mask)
        log_z = self._partition(emissions, mask)
        nll = log_z - gold
        if reduction == "none":
            return nll
        if reduction == "sum":
            return nll.sum()
        if reduction != "mean":
            raise ValueError(f"unknown reduction {reduction!r}")
        return nll.sum() / float(emissions.shape[0])

    def _prepare_mask(self, mask, shape) -> np.ndarray:
        if mask is None:
            mask = np.ones(shape, dtype=np.float64)
        mask = np.asarray(mask, dtype=np.float64)
        if not np.all(mask[:, 0] == 1.0):
            raise ValueError("CRF requires the first position of each sequence valid")
        return mask

    @staticmethod
    def _is_prefix_mask(mask: np.ndarray) -> bool:
        lengths = mask.sum(axis=1).astype(np.int64)
        positions = np.arange(mask.shape[1])
        return bool(np.all((positions[None, :] < lengths[:, None]) == (mask > 0)))

    def _score_sequence(
        self, emissions: Tensor, tags: np.ndarray, mask: np.ndarray
    ) -> Tensor:
        if self._is_prefix_mask(mask):
            return _fused_gold_score(
                emissions, self.transitions, self.start_scores,
                self.end_scores, tags, mask,
            )
        return self._score_sequence_reference(emissions, tags, mask)

    def _score_sequence_reference(
        self, emissions: Tensor, tags: np.ndarray, mask: np.ndarray
    ) -> Tensor:
        """Compositional-autograd gold score (slow; used for verification
        and for non-prefix masks)."""
        batch, seq, _ = emissions.shape
        batch_idx = np.arange(batch)

        score = self.start_scores[tags[:, 0]] + emissions[batch_idx, 0, tags[:, 0]]
        for t in range(1, seq):
            step_mask = Tensor(mask[:, t])
            emit = emissions[batch_idx, t, tags[:, t]]
            trans = self.transitions[tags[:, t - 1], tags[:, t]]
            score = score + (emit + trans) * step_mask

        # End transition from the last valid tag of each sequence.
        lengths = mask.sum(axis=1).astype(np.int64)
        last_tags = tags[batch_idx, lengths - 1]
        score = score + self.end_scores[last_tags]
        return score

    def _partition(self, emissions: Tensor, mask: np.ndarray) -> Tensor:
        if self._is_prefix_mask(mask):
            lengths = mask.sum(axis=1).astype(np.int64)
            return _fused_log_partition(
                emissions, self.transitions, self.start_scores,
                self.end_scores, lengths,
            )
        return self._partition_reference(emissions, mask)

    def _partition_reference(self, emissions: Tensor, mask: np.ndarray) -> Tensor:
        """Compositional-autograd forward algorithm (slow; verification)."""
        batch, seq, _ = emissions.shape
        alpha = self.start_scores + emissions[:, 0, :]
        for t in range(1, seq):
            # broadcast: (batch, prev, 1) + (prev, next) -> (batch, prev, next)
            scores = alpha.reshape(batch, self.num_tags, 1) + self.transitions
            new_alpha = logsumexp(scores, axis=1) + emissions[:, t, :]
            step = mask[:, t][:, None].astype(bool)
            alpha = where(np.broadcast_to(step, alpha.shape), new_alpha, alpha)
        alpha = alpha + self.end_scores
        return logsumexp(alpha, axis=1)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(
        self, emissions: Tensor, mask: Optional[np.ndarray] = None
    ) -> List[List[int]]:
        """Viterbi decoding; returns the best tag sequence per batch item.

        Both the max-product recursion and the backtrace are vectorised over
        the batch axis; ragged lengths are handled with validity masks, so
        decoding a batch of documents costs one time loop total instead of
        one per document.
        """
        scores = emissions.data if isinstance(emissions, Tensor) else emissions
        batch, seq, num_tags = scores.shape
        mask = self._prepare_mask(mask, (batch, seq))
        lengths = mask.sum(axis=1).astype(np.int64)
        transitions = self.transitions.data
        start = self.start_scores.data
        end = self.end_scores.data
        batch_idx = np.arange(batch)

        # Forward max-product pass.  ``viterbi`` carries each sequence's
        # best-path scores; past a sequence's length it is carried forward
        # unchanged so the end-transition can be applied uniformly.
        pointers = np.zeros((batch, seq, num_tags), dtype=np.int64)
        viterbi = start + scores[:, 0]
        for t in range(1, seq):
            candidate = viterbi[:, :, None] + transitions[None]
            pointers[:, t] = candidate.argmax(axis=1)
            advanced = candidate.max(axis=1) + scores[:, t]
            step = (t < lengths)[:, None]
            viterbi = np.where(step, advanced, viterbi)

        best = (viterbi + end).argmax(axis=1)
        # Batched backtrace: position t-1's tag is read off ``pointers[t]``
        # wherever t is inside the sequence; finished (shorter) sequences
        # keep their tags untouched.
        tags = np.zeros((batch, seq), dtype=np.int64)
        tags[batch_idx, lengths - 1] = best
        for t in range(seq - 1, 0, -1):
            inside = t <= lengths - 1
            best = np.where(inside, pointers[batch_idx, t, best], best)
            tags[:, t - 1] = np.where(inside, best, tags[:, t - 1])
        return [row[:length].tolist() for row, length in zip(tags, lengths)]

    def marginals(
        self, emissions: Tensor, mask: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Unary marginals ``p(tag_t = k | x)`` via forward-backward.

        Pure-numpy inference twin of the recursion inside
        :func:`_fused_log_partition` — no autograd graph is built.  Returns
        ``(batch, seq, num_tags)`` probabilities, zeroed in the padding;
        ``marginals.max(axis=2)`` is the per-position confidence signal the
        drift monitor consumes.  Requires prefix masks (contiguous valid
        positions), like batched decoding.
        """
        scores = emissions.data if isinstance(emissions, Tensor) else emissions
        batch, seq, num_tags = scores.shape
        mask = self._prepare_mask(mask, (batch, seq))
        if not self._is_prefix_mask(mask):
            raise ValueError("marginals requires prefix masks")
        lengths = mask.sum(axis=1).astype(np.int64)
        trans = self.transitions.data
        start = self.start_scores.data
        end = self.end_scores.data

        alphas = np.empty((batch, seq, num_tags))
        alpha = start + scores[:, 0]
        alphas[:, 0] = alpha
        for t in range(1, seq):
            advanced = _lse(alpha[:, :, None] + trans[None], axis=1)
            advanced = advanced + scores[:, t]
            step = (t < lengths)[:, None]
            alpha = np.where(step, advanced, alpha)
            alphas[:, t] = alpha
        log_z = _lse(alpha + end, axis=1)

        betas = np.empty((batch, seq, num_tags))
        beta = np.broadcast_to(end, (batch, num_tags))
        betas[:, seq - 1] = beta
        for t in range(seq - 2, -1, -1):
            stepped = _lse(
                trans[None] + scores[:, t + 1][:, None, :] + beta[:, None, :],
                axis=2,
            )
            is_last = (t == lengths - 1)[:, None]
            inside = (t < lengths - 1)[:, None]
            beta = np.where(is_last, end[None, :], np.where(inside, stepped, beta))
            betas[:, t] = beta

        valid = (np.arange(seq)[None, :] < lengths[:, None]).astype(np.float64)
        marginals = np.exp(alphas + betas - log_z[:, None, None])
        return marginals * valid[:, :, None]


class FuzzyCrf(LinearChainCrf):
    """Fuzzy CRF: likelihood marginalised over label sets per position.

    ``allowed`` is a boolean array ``(batch, seq, num_tags)`` marking the
    tags permitted at each position (all-True rows mean "unknown").  The loss
    is ``log Z - log Z_constrained`` where the constrained partition sums
    only over paths that respect ``allowed``.
    """

    def constrained_nll(
        self,
        emissions: Tensor,
        allowed: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        allowed = np.asarray(allowed, dtype=bool)
        batch, seq, _ = emissions.shape
        mask = self._prepare_mask(mask, (batch, seq))
        if not allowed.any(axis=-1).all():
            raise ValueError("every position needs at least one allowed tag")

        penalty = Tensor(np.where(allowed, 0.0, _NEG_INF))
        constrained = self._partition(emissions + penalty, mask)
        log_z = self._partition(emissions, mask)
        return (log_z - constrained).sum() / float(batch)
