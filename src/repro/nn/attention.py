"""Multi-head self-attention and Transformer encoder stacks."""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import init
from .functional import gelu, masked_fill, softmax
from .layers import Dropout, LayerNorm, Linear
from .module import Module, ModuleList
from .tensor import Tensor

__all__ = [
    "MultiHeadSelfAttention",
    "TransformerEncoderLayer",
    "TransformerEncoder",
]


class MultiHeadSelfAttention(Module):
    """Scaled dot-product multi-head self-attention.

    Operates on ``(batch, seq, dim)`` inputs with an optional boolean/0-1
    ``attention_mask`` of shape ``(batch, seq)`` where 1 marks valid tokens.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        rng = rng or init.default_rng()
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.query = Linear(dim, dim, rng=rng)
        self.key = Linear(dim, dim, rng=rng)
        self.value = Linear(dim, dim, rng=rng)
        self.out = Linear(dim, dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(
            0, 2, 1, 3
        )

    def forward(
        self, x: Tensor, attention_mask: Optional[np.ndarray] = None
    ) -> Tensor:
        batch, seq, _ = x.shape
        q = self._split_heads(self.query(x))
        k = self._split_heads(self.key(x))
        v = self._split_heads(self.value(x))

        scores = (q @ k.transpose(0, 1, 3, 2)) / np.sqrt(self.head_dim)
        if attention_mask is not None:
            mask = np.asarray(attention_mask, dtype=bool)
            if not mask.all():
                # Broadcast key mask to (batch, heads, query, key).
                invalid = ~mask[:, None, None, :]
                invalid = np.broadcast_to(invalid, scores.shape)
                scores = masked_fill(scores, invalid)
        weights = softmax(scores, axis=-1)
        weights = self.dropout(weights)
        context = weights @ v
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)
        return self.out(context)


class TransformerEncoderLayer(Module):
    """Post-norm Transformer encoder layer (attention + feed-forward)."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        ffn_dim: Optional[int] = None,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or init.default_rng()
        ffn_dim = ffn_dim or dim * 4
        self.attention = MultiHeadSelfAttention(dim, num_heads, dropout, rng=rng)
        self.norm1 = LayerNorm(dim)
        self.ffn_in = Linear(dim, ffn_dim, rng=rng)
        self.ffn_out = Linear(ffn_dim, dim, rng=rng)
        self.norm2 = LayerNorm(dim)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(
        self, x: Tensor, attention_mask: Optional[np.ndarray] = None
    ) -> Tensor:
        attended = self.attention(x, attention_mask=attention_mask)
        x = self.norm1(x + self.dropout(attended))
        transformed = self.ffn_out(gelu(self.ffn_in(x)))
        return self.norm2(x + self.dropout(transformed))


class TransformerEncoder(Module):
    """A stack of :class:`TransformerEncoderLayer`."""

    def __init__(
        self,
        num_layers: int,
        dim: int,
        num_heads: int,
        ffn_dim: Optional[int] = None,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or init.default_rng()
        self.layers = ModuleList(
            TransformerEncoderLayer(dim, num_heads, ffn_dim, dropout, rng=rng)
            for _ in range(num_layers)
        )

    def forward(
        self, x: Tensor, attention_mask: Optional[np.ndarray] = None
    ) -> Tensor:
        for layer in self.layers:
            x = layer(x, attention_mask=attention_mask)
        return x
