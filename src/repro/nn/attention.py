"""Multi-head self-attention and Transformer encoder stacks.

Two execution tiers share one set of parameters:

* **Training** — :func:`fused_self_attention` runs the whole attention
  chain (QKV projection → scaled scores → masked softmax → context →
  output projection) as a *single* autograd node with one analytic
  backward closure, instead of the ~25 primitive nodes the compositional
  path builds.  The compositional path is kept as the reference
  implementation (and is still used when attention-weight dropout is
  active, which the fused kernel does not model).
* **Inference** — under ``no_grad`` the encoder stack routes to
  allocation-lean raw-``ndarray`` kernels (:meth:`TransformerEncoder`
  ``fused_inference`` flag): no ``Tensor`` boxing, no graph bookkeeping,
  and an ``inference_dtype`` knob so the quantized int8 path can run the
  elementwise tail in float32.  At the default ``float64`` the attention
  core mirrors the compositional op order exactly (bit-identical); the
  full encoder layer matches the training-graph forward to one-ulp
  LayerNorm round-off (its serving kernel uses a fused einsum variance).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import init
from .functional import gelu, gelu_ndarray, masked_fill, softmax, softmax_ndarray
from .layers import Dropout, LayerNorm, Linear
from .module import Module, ModuleList
from .tensor import Tensor, is_grad_enabled

__all__ = [
    "fused_self_attention",
    "MultiHeadSelfAttention",
    "TransformerEncoderLayer",
    "TransformerEncoder",
]

#: Large negative logit used to exclude masked keys from the softmax.
_NEG_INF = -1e9


def _split_heads_np(x: np.ndarray, num_heads: int) -> np.ndarray:
    batch, seq, dim = x.shape
    return x.reshape(batch, seq, num_heads, dim // num_heads).transpose(0, 2, 1, 3)


def _merge_heads_np(x: np.ndarray) -> np.ndarray:
    batch, heads, seq, head_dim = x.shape
    return x.transpose(0, 2, 1, 3).reshape(batch, seq, heads * head_dim)


def _masked_softmax_np(
    scores: np.ndarray, attention_mask: Optional[np.ndarray]
) -> np.ndarray:
    """Key-masked softmax over the last axis, on raw arrays.

    Mirrors ``masked_fill`` + ``functional.softmax`` operation for
    operation so the float64 result is bit-identical to the
    compositional path.
    """
    if attention_mask is not None:
        mask = np.asarray(attention_mask, dtype=bool)
        if not mask.all():
            invalid = np.broadcast_to(~mask[:, None, None, :], scores.shape)
            np.copyto(scores, scores.dtype.type(_NEG_INF), where=invalid)
    shift = scores.max(axis=-1, keepdims=True)
    np.copyto(shift, 0.0, where=~np.isfinite(shift))
    scores -= shift
    np.exp(scores, out=scores)
    denom = scores.sum(axis=-1, keepdims=True)
    if scores.dtype == np.float64:
        scores /= denom
    else:
        # Narrow pipelines trade the full-tensor divide for a reciprocal
        # on the tiny denominator (last-ulp difference only).
        np.divide(1.0, denom, out=denom)
        scores *= denom
    return scores


def fused_self_attention(
    x: Tensor,
    w_q: Tensor,
    b_q: Tensor,
    w_k: Tensor,
    b_k: Tensor,
    w_v: Tensor,
    b_v: Tensor,
    w_o: Tensor,
    b_o: Tensor,
    num_heads: int,
    attention_mask: Optional[np.ndarray] = None,
) -> Tensor:
    """The full attention chain as one einsum-based autograd node.

    Computes QKV projections, scaled dot-product scores, key-masked
    softmax, context gather and the output projection in raw numpy and
    registers a *single* backward closure that pushes analytic gradients
    to ``x`` and all eight projection parameters — one graph node where
    the compositional path builds a deep chain of primitives.

    ``attention_mask`` is an optional ``(batch, seq)`` 0/1 array; masked
    keys receive exactly zero attention weight (their fill value of
    ``-1e9`` underflows the softmax), so their gradient contribution is
    exactly zero as in the compositional reference.
    """
    batch, seq, dim = x.shape
    head_dim = dim // num_heads
    scale = 1.0 / np.sqrt(head_dim)
    data = x.data

    flat = data.reshape(batch * seq, dim)
    qm = (flat @ w_q.data + b_q.data).reshape(batch, seq, dim)
    km = (flat @ w_k.data + b_k.data).reshape(batch, seq, dim)
    vm = (flat @ w_v.data + b_v.data).reshape(batch, seq, dim)
    q = _split_heads_np(qm, num_heads)
    k = _split_heads_np(km, num_heads)
    v = _split_heads_np(vm, num_heads)

    scores = np.einsum("bhqd,bhkd->bhqk", q, k, optimize=True) * scale
    weights = _masked_softmax_np(scores, attention_mask)
    context = np.einsum("bhqk,bhkd->bhqd", weights, v, optimize=True)
    context_m = _merge_heads_np(context)
    out_data = context_m @ w_o.data + b_o.data

    def backward(grad: np.ndarray) -> None:
        grad2d = grad.reshape(batch * seq, dim)
        b_o._accumulate(grad.sum(axis=(0, 1)))
        w_o._accumulate(context_m.reshape(batch * seq, dim).T @ grad2d)
        g_context = _split_heads_np(grad @ w_o.data.T, num_heads)

        g_weights = np.einsum("bhqd,bhkd->bhqk", g_context, v, optimize=True)
        g_v = np.einsum("bhqk,bhqd->bhkd", weights, g_context, optimize=True)
        # Softmax backward: rows of exactly-zero weight (masked keys)
        # contribute exactly zero, matching the constant fill value.
        g_scores = weights * (
            g_weights - (g_weights * weights).sum(axis=-1, keepdims=True)
        )
        g_scores *= scale
        g_q = np.einsum("bhqk,bhkd->bhqd", g_scores, k, optimize=True)
        g_k = np.einsum("bhqk,bhqd->bhkd", g_scores, q, optimize=True)

        g_qm = _merge_heads_np(g_q).reshape(batch * seq, dim)
        g_km = _merge_heads_np(g_k).reshape(batch * seq, dim)
        g_vm = _merge_heads_np(g_v).reshape(batch * seq, dim)
        w_q._accumulate(flat.T @ g_qm)
        w_k._accumulate(flat.T @ g_km)
        w_v._accumulate(flat.T @ g_vm)
        b_q._accumulate(g_qm.sum(axis=0))
        b_k._accumulate(g_km.sum(axis=0))
        b_v._accumulate(g_vm.sum(axis=0))
        g_x = g_qm @ w_q.data.T + g_km @ w_k.data.T + g_vm @ w_v.data.T
        x._accumulate(g_x.reshape(batch, seq, dim))

    parents = (x, w_q, b_q, w_k, b_k, w_v, b_v, w_o, b_o)
    return x._make(out_data, parents, backward)


class MultiHeadSelfAttention(Module):
    """Scaled dot-product multi-head self-attention.

    Operates on ``(batch, seq, dim)`` inputs with an optional boolean/0-1
    ``attention_mask`` of shape ``(batch, seq)`` where 1 marks valid tokens.

    The forward pass routes to :func:`fused_self_attention` whenever
    attention-weight dropout is inactive (eval mode or ``dropout=0``);
    the compositional reference path — identical math, one graph node
    per primitive — remains for dropout and for parity testing.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        rng = rng or init.default_rng()
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.query = Linear(dim, dim, rng=rng)
        self.key = Linear(dim, dim, rng=rng)
        self.value = Linear(dim, dim, rng=rng)
        self.out = Linear(dim, dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(
            0, 2, 1, 3
        )

    def _dropout_active(self) -> bool:
        return self.dropout.training and self.dropout.p > 0.0

    def forward(
        self, x: Tensor, attention_mask: Optional[np.ndarray] = None
    ) -> Tensor:
        if not self._dropout_active():
            return fused_self_attention(
                x,
                self.query.weight,
                self.query.bias,
                self.key.weight,
                self.key.bias,
                self.value.weight,
                self.value.bias,
                self.out.weight,
                self.out.bias,
                self.num_heads,
                attention_mask=attention_mask,
            )
        return self._forward_reference(x, attention_mask=attention_mask)

    def _forward_reference(
        self, x: Tensor, attention_mask: Optional[np.ndarray] = None
    ) -> Tensor:
        """Compositional-autograd attention (dropout + parity reference)."""
        batch, seq, _ = x.shape
        q = self._split_heads(self.query(x))
        k = self._split_heads(self.key(x))
        v = self._split_heads(self.value(x))

        scores = (q @ k.transpose(0, 1, 3, 2)) / np.sqrt(self.head_dim)
        if attention_mask is not None:
            mask = np.asarray(attention_mask, dtype=bool)
            if not mask.all():
                # Broadcast key mask to (batch, heads, query, key).
                invalid = ~mask[:, None, None, :]
                invalid = np.broadcast_to(invalid, scores.shape)
                scores = masked_fill(scores, invalid)
        weights = softmax(scores, axis=-1)
        weights = self.dropout(weights)
        context = weights @ v
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)
        return self.out(context)

    def _quantized_qkv(self, x: np.ndarray) -> Optional[np.ndarray]:
        """One int8 GEMM for all three QKV projections, if quantized.

        When ``query``/``key``/``value`` are all :class:`QuantizedLinear`
        (and none is calibrating), their integer-valued weight stages are
        concatenated into one ``(dim, 3·dim)`` matrix so the input is
        quantized once and projected in a single sgemm.  All three
        projections see the same input and hence the same activation
        scale, and per-output-channel weight scales concatenate, so the
        result is bitwise identical to three separate quantized calls.
        Returns the stacked ``(batch, seq, 3·dim)`` output, or ``None``
        when the fast path does not apply.
        """
        from .quantize import QuantizedLinear, quantize_activations

        projections = (self.query, self.key, self.value)
        if not all(type(p) is QuantizedLinear for p in projections):
            return None
        if any(p.calibrating or p.bias_f32 is None for p in projections):
            return None
        cached = getattr(self, "_qkv_cache", None)
        if cached is None or any(
            a is not b for a, b in zip(cached[0], projections)
        ):
            cached = (
                projections,
                np.concatenate([p.weight_f32 for p in projections], axis=1),
                np.concatenate([p.weight_scale for p in projections]),
                np.concatenate([p.bias_f32 for p in projections]),
            )
            self._qkv_cache = cached
        _, weight_f32, weight_scale, bias_f32 = cached
        x32 = x.astype(np.float32, copy=False)
        scale = self.query.act_scale(x32)
        x_q = quantize_activations(x32, scale)
        out = x_q @ weight_f32
        out *= np.float32(scale) * weight_scale
        out += bias_f32
        return out

    def _forward_inference(
        self, x: np.ndarray, attention_mask: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Forward-only attention on raw arrays — no graph, no boxing.

        Projections go through :meth:`Linear.infer`, so a quantized
        encoder transparently substitutes its int8 kernels (with the QKV
        trio further fused into one stacked GEMM).  At float64 the op
        order mirrors the compositional path bit for bit.
        """
        dim = self.dim
        qkv = self._quantized_qkv(x)
        if qkv is not None:
            q = _split_heads_np(qkv[..., :dim], self.num_heads)
            k = _split_heads_np(qkv[..., dim : 2 * dim], self.num_heads)
            v = _split_heads_np(qkv[..., 2 * dim :], self.num_heads)
        else:
            q = _split_heads_np(self.query.infer(x), self.num_heads)
            k = _split_heads_np(self.key.infer(x), self.num_heads)
            v = _split_heads_np(self.value.infer(x), self.num_heads)
        if q.dtype == np.float64:
            scores = (q @ k.swapaxes(-1, -2)) / np.sqrt(self.head_dim)
        else:
            # Fold 1/sqrt(d) into q — one pass over (…, t, d) instead of
            # a divide over the O(t^2) score tensor.
            q = q * q.dtype.type(1.0 / np.sqrt(self.head_dim))
            scores = q @ k.swapaxes(-1, -2)
        weights = _masked_softmax_np(scores, attention_mask)
        context = _merge_heads_np(weights @ v)
        return self.out.infer(context)

    def _infer_block(self, flat, blocks, masks) -> np.ndarray:
        """Attention over a ragged block of sequences sharing one 2-D buffer.

        ``flat`` is ``(total_rows, dim)`` holding several padded sequence
        groups back to back; ``blocks`` lists ``(offset, n, t)`` spans and
        ``masks`` the per-group key masks.  The QKV and output projections
        — per-row maps — run *once* over the whole buffer (one GEMM each,
        or a single stacked int8 GEMM when quantized); only the O(t²)
        attention core runs per group.  Per-row results are bitwise
        identical to calling :meth:`_forward_inference` group by group.
        """
        dim = self.dim
        qkv = self._quantized_qkv(flat)
        if qkv is not None:
            qm = qkv[:, :dim]
            km = qkv[:, dim : 2 * dim]
            vm = qkv[:, 2 * dim :]
        else:
            qm = self.query.infer(flat)
            km = self.key.infer(flat)
            vm = self.value.infer(flat)
        scaled = qm.dtype != np.float64
        if scaled:
            # Fold 1/sqrt(d) into the (rows, d) query buffer up front —
            # far cheaper than dividing every O(t^2) score tensor below.
            qm = qm * qm.dtype.type(1.0 / np.sqrt(self.head_dim))
        context = np.empty((flat.shape[0], dim), dtype=qm.dtype)
        scale = np.asarray(np.sqrt(self.head_dim), dtype=qm.dtype)
        for (offset, n, t), mask in zip(blocks, masks):
            end = offset + n * t
            q = _split_heads_np(qm[offset:end].reshape(n, t, dim), self.num_heads)
            k = _split_heads_np(km[offset:end].reshape(n, t, dim), self.num_heads)
            v = _split_heads_np(vm[offset:end].reshape(n, t, dim), self.num_heads)
            scores = q @ k.swapaxes(-1, -2)
            if not scaled:
                scores /= scale
            weights = _masked_softmax_np(scores, mask)
            context[offset:end] = _merge_heads_np(weights @ v).reshape(n * t, dim)
        return self.out.infer(context)


class TransformerEncoderLayer(Module):
    """Post-norm Transformer encoder layer (attention + feed-forward)."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        ffn_dim: Optional[int] = None,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or init.default_rng()
        ffn_dim = ffn_dim or dim * 4
        self.attention = MultiHeadSelfAttention(dim, num_heads, dropout, rng=rng)
        self.norm1 = LayerNorm(dim)
        self.ffn_in = Linear(dim, ffn_dim, rng=rng)
        self.ffn_out = Linear(ffn_dim, dim, rng=rng)
        self.norm2 = LayerNorm(dim)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(
        self, x: Tensor, attention_mask: Optional[np.ndarray] = None
    ) -> Tensor:
        attended = self.attention(x, attention_mask=attention_mask)
        x = self.norm1(x + self.dropout(attended))
        transformed = self.ffn_out(gelu(self.ffn_in(x)))
        return self.norm2(x + self.dropout(transformed))

    def _forward_inference(
        self, x: np.ndarray, attention_mask: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Whole-layer forward on raw arrays (dropout must be inactive)."""
        attended = self.attention._forward_inference(x, attention_mask)
        x = self.norm1.infer(x + attended)
        transformed = self.ffn_out.infer(gelu_ndarray(self.ffn_in.infer(x)))
        return self.norm2.infer(x + transformed)

    def _infer_block(self, flat, blocks, masks) -> np.ndarray:
        """Whole layer over a ragged block (see ``_infer_block`` above)."""
        attended = self.attention._infer_block(flat, blocks, masks)
        x = self.norm1.infer(flat + attended)
        transformed = self.ffn_out.infer(gelu_ndarray(self.ffn_in.infer(x)))
        return self.norm2.infer(x + transformed)


class TransformerEncoder(Module):
    """A stack of :class:`TransformerEncoderLayer`.

    Under ``no_grad`` (and with dropout inactive) the stack runs its
    allocation-lean fused inference kernels; set ``fused_inference =
    False`` to force the compositional path (benchmark baselines), and
    ``inference_dtype`` to ``np.float32`` to run the elementwise tail in
    single precision (the quantized path does this automatically).
    """

    def __init__(
        self,
        num_layers: int,
        dim: int,
        num_heads: int,
        ffn_dim: Optional[int] = None,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or init.default_rng()
        self.layers = ModuleList(
            TransformerEncoderLayer(dim, num_heads, ffn_dim, dropout, rng=rng)
            for _ in range(num_layers)
        )
        #: Route ``no_grad`` forwards to the raw-ndarray kernels.
        self.fused_inference = True
        #: Dtype of the fused inference pipeline (float64 = full precision).
        self.inference_dtype = np.float64

    def _dropout_inactive(self) -> bool:
        return all(
            not layer.dropout.training or layer.dropout.p == 0.0
            for layer in self.layers
        )

    def infer(
        self, x: np.ndarray, attention_mask: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Run the whole stack on a raw array (forward-only kernels)."""
        data = x.astype(self.inference_dtype, copy=False)
        for layer in self.layers:
            data = layer._forward_inference(data, attention_mask)
        return data

    def infer_block(self, flat, blocks, masks) -> np.ndarray:
        """Run the stack over a ragged block of padded sequence groups.

        ``flat``: ``(total_rows, dim)`` buffer of concatenated groups,
        each group ``(offset, n, t)`` in ``blocks`` spanning ``n·t`` rows;
        ``masks`` holds each group's ``(n, t)`` key mask.  Per-row maps
        run once over the buffer, attention per group — per-row output is
        bitwise identical to :meth:`infer` on each group separately.
        """
        data = flat.astype(self.inference_dtype, copy=False)
        for layer in self.layers:
            data = layer._infer_block(data, blocks, masks)
        return data

    def forward(
        self, x: Tensor, attention_mask: Optional[np.ndarray] = None
    ) -> Tensor:
        if (
            not is_grad_enabled()
            and self.fused_inference
            and self._dropout_inactive()
        ):
            return Tensor(self.infer(x.data, attention_mask))
        for layer in self.layers:
            x = layer(x, attention_mask=attention_mask)
        return x
