"""Reverse-mode automatic differentiation over numpy arrays.

This module is the foundation of the ``repro.nn`` substrate: a minimal but
complete autograd engine in the style of PyTorch, vectorised over numpy.
Every differentiable operation builds a node in a dynamic computation graph;
calling :meth:`Tensor.backward` on a scalar loss walks the graph in reverse
topological order and accumulates gradients into ``Tensor.grad``.

The engine supports full numpy broadcasting.  Gradients flowing into a
broadcast operand are reduced back to the operand's shape by
:func:`_unbroadcast`.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor"]

# Inference-mode state is per-context rather than a module global: threads
# (and asyncio tasks) serving batched inference each get their own flag, so
# one request running under ``no_grad()`` cannot disable gradient recording
# for a training step on another thread.
_GRAD_ENABLED: contextvars.ContextVar[bool] = contextvars.ContextVar(
    "repro_grad_enabled", default=True
)


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    token = _GRAD_ENABLED.set(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.reset(token)


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""
    return _GRAD_ENABLED.get()


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]


def as_tensor(value: ArrayLike, requires_grad: bool = False) -> "Tensor":
    """Coerce ``value`` to a :class:`Tensor` (no copy if already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


class Tensor:
    """A numpy array with an optional gradient and autograd history."""

    # __weakref__ lets diagnostics (repro.analysis.graph_audit) observe
    # graph-node lifetimes without keeping them alive.
    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "__weakref__")

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        # Severing requires_grad propagation is the entire point here.
        return Tensor(self.data)  # repro-lint: disable=RN006

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    def _make(
        self,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a child node, recording history only when grads are on."""
        needs = _GRAD_ENABLED.get() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=needs)
        if needs:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor.

        ``grad`` defaults to 1 and is only optional for scalar outputs.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # Topological order over the reachable graph.
        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))

        # Seed and propagate.  Interior nodes accumulate their gradient in
        # ``.grad`` (they were created with ``requires_grad=True`` whenever a
        # parent requires grad), so each ``_backward`` closure simply reads
        # the node's accumulated gradient and pushes shares to its parents.
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.data.shape))
            other._accumulate(_unbroadcast(grad, other.data.shape))

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.data.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data**2), other.data.shape)
            )

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                # 1-D dot product: grad is a scalar and both operand
                # shapes are exact, so no broadcast reduction can apply.
                self._accumulate(grad * b)  # repro-lint: disable=RN002
                other._accumulate(grad * a)  # repro-lint: disable=RN002
                return
            if a.ndim == 1:
                # (k,) @ (..., k, n) -> (..., n)
                ga = (grad[..., None, :] * b).sum(axis=-1)
                self._accumulate(_unbroadcast(ga, a.shape))
                gb = a[:, None] * grad[..., None, :]
                other._accumulate(_unbroadcast(gb, b.shape))
                return
            if b.ndim == 1:
                # (..., m, k) @ (k,) -> (..., m)
                ga = grad[..., :, None] * b
                self._accumulate(_unbroadcast(ga, a.shape))
                gb = (grad[..., :, None] * a).sum(axis=tuple(range(grad.ndim)))
                other._accumulate(_unbroadcast(gb, b.shape))
                return
            ga = grad @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ grad
            self._accumulate(_unbroadcast(ga, a.shape))
            other._accumulate(_unbroadcast(gb, b.shape))

        return self._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise non-linearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / out_data)

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(self.data * mask, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return self._make(np.abs(self.data), (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(np.clip(self.data, low, high), (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            self._accumulate(np.broadcast_to(g, self.data.shape).copy())

        return self._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
                    out = np.expand_dims(out, a)
            mask = self.data == out
            # Split gradient between ties, matching subgradient convention.
            counts = mask.sum(
                axis=axis if axis is not None else None, keepdims=True
            )
            self._accumulate(np.where(mask, g / counts, 0.0))

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return self._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return self._make(self.data.transpose(axes), (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.swapaxes(grad, a, b))

        return self._make(np.swapaxes(self.data, a, b), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        index = _normalize_index(index)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            full = np.zeros_like(self.data)
            if isinstance(index, np.ndarray) and index.dtype.kind in "iu":
                # Gathers whose rows are all distinct (inverse permutations,
                # padded-batch scatters) don't need the slow unbuffered
                # np.add.at — a plain fancy assignment is the same scatter.
                flat = index.ravel()
                if flat.size == np.unique(flat).size:
                    full[flat] = grad.reshape((flat.size,) + full.shape[1:])
                    self._accumulate(full)
                    return
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(self.data[index], (self,), backward)

    # ------------------------------------------------------------------
    # Comparison helpers (no gradient)
    # ------------------------------------------------------------------
    def __gt__(self, other: ArrayLike):
        return self.data > as_tensor(other).data

    def __lt__(self, other: ArrayLike):
        return self.data < as_tensor(other).data

    def __ge__(self, other: ArrayLike):
        return self.data >= as_tensor(other).data

    def __le__(self, other: ArrayLike):
        return self.data <= as_tensor(other).data


def _normalize_index(index):
    """Convert Tensor indices to arrays so numpy fancy indexing applies."""
    if isinstance(index, Tensor):
        return index.data.astype(np.int64)
    if isinstance(index, tuple):
        return tuple(
            i.data.astype(np.int64) if isinstance(i, Tensor) else i for i in index
        )
    return index


# ----------------------------------------------------------------------
# Free-function constructors and graph ops used throughout the library.
# ----------------------------------------------------------------------
def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(slicer)])

    out = tensors[0]._make(data, tensors, backward)
    return out


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        parts = np.split(grad, len(tensors), axis=axis)
        for tensor, part in zip(tensors, parts):
            tensor._accumulate(np.squeeze(part, axis=axis))

    return tensors[0]._make(data, tensors, backward)


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Differentiable ``np.where`` (condition carries no gradient)."""
    a = as_tensor(a)
    b = as_tensor(b)
    condition = np.asarray(condition, dtype=bool)
    data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(_unbroadcast(np.where(condition, grad, 0.0), a.data.shape))
        b._accumulate(_unbroadcast(np.where(condition, 0.0, grad), b.data.shape))

    return a._make(data, (a, b), backward)
