"""Differentiable functional operations built on :mod:`repro.nn.tensor`.

These compose the primitive :class:`~repro.nn.tensor.Tensor` operations into
the numerically-stable building blocks used by the models: softmax families,
losses, GELU, and normalisation helpers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor, as_tensor, is_grad_enabled, where

__all__ = [
    "softmax",
    "softmax_ndarray",
    "log_softmax",
    "logsumexp",
    "cross_entropy",
    "nll_loss",
    "kl_div_loss",
    "mse_loss",
    "gelu",
    "gelu_ndarray",
    "l2_normalize",
    "masked_fill",
]

_NEG_INF = -1e9


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable ``log(sum(exp(x)))`` along ``axis``."""
    x = as_tensor(x)
    # The max shift is treated as a constant; its gradient contribution
    # cancels analytically, so detaching it keeps the graph small and stable.
    shift = np.max(x.data, axis=axis, keepdims=True)
    shift = np.where(np.isfinite(shift), shift, 0.0)
    shifted = x - shift
    out = shifted.exp().sum(axis=axis, keepdims=True).log() + shift
    if not keepdims:
        out = out.reshape(_squeeze_shape(out.shape, axis))
    return out


def _squeeze_shape(shape, axis):
    axis = axis % len(shape)
    return tuple(s for i, s in enumerate(shape) if i != axis)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (stable via max-shift)."""
    x = as_tensor(x)
    if not is_grad_enabled():
        # Inference fast path: one fused ndarray kernel, no intermediate
        # Tensor boxing.  Identical op order → bit-identical results.
        return Tensor(softmax_ndarray(x.data, axis=axis))
    shift = np.max(x.data, axis=axis, keepdims=True)
    shift = np.where(np.isfinite(shift), shift, 0.0)
    exps = (x - shift).exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def softmax_ndarray(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Forward-only softmax on a raw array (stable via max-shift)."""
    shift = np.max(x, axis=axis, keepdims=True)
    shift = np.where(np.isfinite(shift), shift, 0.0)
    exps = np.exp(x - shift)
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis``."""
    x = as_tensor(x)
    return x - logsumexp(x, axis=axis, keepdims=True)


def nll_loss(
    log_probs: Tensor,
    targets: np.ndarray,
    mask: Optional[np.ndarray] = None,
) -> Tensor:
    """Negative log-likelihood for integer ``targets``.

    ``log_probs`` has shape ``(..., num_classes)``; ``targets`` the matching
    leading shape.  ``mask`` (same shape as ``targets``) selects positions
    that contribute to the mean.
    """
    targets = np.asarray(targets, dtype=np.int64)
    flat = log_probs.reshape(-1, log_probs.shape[-1])
    idx = (np.arange(flat.shape[0]), targets.reshape(-1))
    picked = flat[idx]
    if mask is not None:
        mask_flat = np.asarray(mask, dtype=np.float64).reshape(-1)
        total = max(mask_flat.sum(), 1.0)
        return -(picked * Tensor(mask_flat)).sum() / total
    return -picked.mean()


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    mask: Optional[np.ndarray] = None,
) -> Tensor:
    """Softmax cross-entropy with integer targets."""
    return nll_loss(log_softmax(logits, axis=-1), targets, mask=mask)


def kl_div_loss(
    logits: Tensor,
    soft_targets: np.ndarray,
    mask: Optional[np.ndarray] = None,
) -> Tensor:
    """Cross-entropy against a soft target distribution.

    Matches Eq. (10)/(12) of the paper: ``-sum_c S_c * log f_c`` averaged over
    (optionally masked) positions.  Since the soft targets are constants this
    equals KL divergence up to the targets' entropy.
    """
    soft = np.asarray(soft_targets, dtype=np.float64)
    logp = log_softmax(logits, axis=-1)
    per_pos = -(logp * Tensor(soft)).sum(axis=-1)
    if mask is not None:
        mask_arr = np.asarray(mask, dtype=np.float64)
        total = max(mask_arr.sum(), 1.0)
        return (per_pos * Tensor(mask_arr)).sum() / total
    return per_pos.mean()


def mse_loss(prediction: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target."""
    diff = prediction - np.asarray(target, dtype=np.float64)
    return (diff * diff).mean()


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation)."""
    x = as_tensor(x)
    if not is_grad_enabled():
        return Tensor(gelu_ndarray(x.data))
    inner = 0.7978845608028654 * (x + 0.044715 * x * x * x)
    return 0.5 * x * (1.0 + inner.tanh())


def gelu_ndarray(x: np.ndarray) -> np.ndarray:
    """Forward-only GELU (tanh approximation) on a raw array.

    The constants stay python floats: float64 keeps bit-parity with the
    Tensor path, and numpy promotes scalar * float32-array back to
    float32, so the quantized pipeline keeps its dtype.
    """
    # In-place chain; every rounding step matches the Tensor-path
    # expression ``0.5 * x * (1 + tanh(0.7978... * (x + 0.044715*x*x*x)))``
    # bit for bit (multiplication is commutative and scaling by 0.5 is
    # exact), with no intermediate temporaries.
    inner = x * 0.044715
    inner *= x
    inner *= x
    inner += x
    inner *= 0.7978845608028654
    np.tanh(inner, out=inner)
    inner += 1.0
    inner *= 0.5
    inner *= x
    return inner


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Normalise ``x`` to unit L2 norm along ``axis``."""
    norm = ((x * x).sum(axis=axis, keepdims=True) + eps).sqrt()
    return x / norm


def masked_fill(x: Tensor, mask: np.ndarray, value: float = _NEG_INF) -> Tensor:
    """Replace positions where ``mask`` is True with ``value`` (no grad there)."""
    return where(np.asarray(mask, dtype=bool), Tensor(np.full(x.shape, value)), x)
