"""Optimisers (SGD, Adam, AdamW), gradient clipping and LR schedules."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

import numpy as np

from .. import obs
from .module import Parameter
from .tensor import no_grad

__all__ = [
    "Sgd",
    "Adam",
    "AdamW",
    "clip_grad_norm",
    "LinearWarmupSchedule",
    "ParamGroup",
]


class ParamGroup:
    """A set of parameters sharing a learning rate.

    The paper fine-tunes the hierarchical encoder at 5e-5 while the
    BiLSTM+CRF head trains at 1e-3; param groups make that split explicit.
    """

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: List[Parameter] = list(params)
        self.lr = lr


class _Optimizer:
    def __init__(self, groups: Sequence[ParamGroup]):
        if not groups:
            raise ValueError("optimizer needs at least one parameter group")
        self.groups = list(groups)

    @classmethod
    def from_params(cls, params: Iterable[Parameter], lr: float, **kwargs):
        return cls([ParamGroup(params, lr)], **kwargs)

    def zero_grad(self) -> None:
        for group in self.groups:
            for param in group.params:
                param.zero_grad()

    def step(self) -> None:
        """Apply one update; timed into ``nn.optimizer_step_seconds`` when
        a :mod:`repro.obs` telemetry session is active."""
        telemetry = obs.get_telemetry()
        if telemetry is None:
            return self._step()
        timer = telemetry.metrics.timer("nn.optimizer_step_seconds")
        with timer.time(optimizer=type(self).__name__):
            return self._step()

    def _step(self) -> None:
        raise NotImplementedError

    def set_lr_scale(self, scale: float) -> None:
        """Scale every group's base learning rate (used by schedules)."""
        for group, base in zip(self.groups, self._base_lrs):
            group.lr = base * scale

    def _snapshot_lrs(self) -> None:
        self._base_lrs = [group.lr for group in self.groups]


class Sgd(_Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, groups: Sequence[ParamGroup], momentum: float = 0.0):
        super().__init__(groups)
        self.momentum = momentum
        self._velocity = [
            [np.zeros_like(p.data) for p in g.params] for g in self.groups
        ]
        self._snapshot_lrs()

    def _step(self) -> None:
        with no_grad():
            for group, velocities in zip(self.groups, self._velocity):
                for param, velocity in zip(group.params, velocities):
                    if param.grad is None:
                        continue
                    if self.momentum:
                        velocity *= self.momentum
                        velocity += param.grad
                        update = velocity
                    else:
                        update = param.grad
                    param.data -= group.lr * update


class Adam(_Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(
        self,
        groups: Sequence[ParamGroup],
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(groups)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [[np.zeros_like(p.data) for p in g.params] for g in self.groups]
        self._v = [[np.zeros_like(p.data) for p in g.params] for g in self.groups]
        self._snapshot_lrs()

    def _step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        with no_grad():
            for gi, group in enumerate(self.groups):
                for pi, param in enumerate(group.params):
                    if param.grad is None:
                        continue
                    grad = param.grad
                    if self.weight_decay and not self._decoupled():
                        grad = grad + self.weight_decay * param.data
                    m = self._m[gi][pi]
                    v = self._v[gi][pi]
                    m *= self.beta1
                    m += (1.0 - self.beta1) * grad
                    v *= self.beta2
                    v += (1.0 - self.beta2) * grad**2
                    m_hat = m / bias1
                    v_hat = v / bias2
                    update = m_hat / (np.sqrt(v_hat) + self.eps)
                    if self.weight_decay and self._decoupled():
                        update = update + self.weight_decay * param.data
                    param.data -= group.lr * update

    def _decoupled(self) -> bool:
        return False


class AdamW(Adam):
    """Adam with decoupled weight decay (the paper's 0.01 setting)."""

    def __init__(self, groups: Sequence[ParamGroup], weight_decay: float = 0.01, **kw):
        super().__init__(groups, weight_decay=weight_decay, **kw)

    def _decoupled(self) -> bool:
        return True


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Clip gradients in-place to a global L2 norm; returns the pre-clip norm.

    When a :mod:`repro.obs` telemetry session is active, the pre-clip norm
    is published to the ``nn.grad_norm`` gauge and ``nn.grad_clips``
    counts how often the clip actually fired.
    """
    params = [p for p in params if p.grad is not None]
    total = math.sqrt(sum(float((p.grad**2).sum()) for p in params))
    telemetry = obs.get_telemetry()
    if telemetry is not None:
        telemetry.metrics.gauge("nn.grad_norm").set(total)
        if total > max_norm:
            telemetry.metrics.counter("nn.grad_clips").inc()
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        with no_grad():
            for param in params:
                param.grad *= scale
    return total


class LinearWarmupSchedule:
    """Linear warmup followed by linear decay to zero."""

    def __init__(self, optimizer: _Optimizer, warmup_steps: int, total_steps: int):
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.warmup_steps = max(warmup_steps, 0)
        self.total_steps = total_steps
        self._step_count = 0

    def step(self) -> float:
        self._step_count += 1
        scale = self.scale_at(self._step_count)
        self.optimizer.set_lr_scale(scale)
        return scale

    def scale_at(self, step: int) -> float:
        if self.warmup_steps and step < self.warmup_steps:
            return step / self.warmup_steps
        remaining = max(self.total_steps - step, 0)
        denom = max(self.total_steps - self.warmup_steps, 1)
        return remaining / denom
