"""Post-training int8 quantization for the inference path.

Serving-oriented weight quantization in the style of dynamic-range
quantized GEMMs: per-output-channel int8 weights with a per-tensor
activation scale, applied after training (no fake-quant, no fine-tune).

The arithmetic trick that makes this both fast and exact: the int8
operands are staged as *integer-valued float32* arrays, so the GEMM runs
through BLAS sgemm at full speed while every product ``x_q * w_q``
(each ≤ 127 in magnitude, summed over ≤ a few thousand terms) stays well
below float32's 2^24 exact-integer range — the accumulation is exact,
and the only rounding error in the whole layer is the activation
quantization itself.

Usage::

    quantize_model(model)                      # swap Linears for int8
    with calibration(model):
        model.encode(held_out_slice)           # record activation ranges
    ...  # serve under no_grad; dequantize(model) restores float

:func:`quantize_model` walks a module tree replacing every
:class:`~repro.nn.layers.Linear` with a :class:`QuantizedLinear` wrapper
and flips any :class:`~repro.nn.attention.TransformerEncoder` to a
float32 elementwise pipeline.  The wrapper keeps the original ``Linear``
(and hence parameter names, ``state_dict`` keys and optimizer identity)
intact, so :func:`dequantize` is a pure structural undo.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Optional

import numpy as np

from .layers import Linear
from .module import Module, ModuleList
from .tensor import Tensor, is_grad_enabled

__all__ = [
    "QuantizedLinear",
    "quantize_model",
    "dequantize",
    "calibration",
    "set_fused_inference",
    "quantization_report",
]

#: int8 symmetric range; -128 is excluded so negation is closed.
_QMAX = 127.0
#: Guard against zero scales for all-zero weights/activations.
_EPS = 1e-12

# Module-wide GEMM-call counter, exported into telemetry by the core
# predict paths (see ``quantization_report``).
_GEMM_CALLS = 0


def quantize_activations(x32: np.ndarray, scale: float) -> np.ndarray:
    """Round ``x32 / scale`` into the symmetric int8 grid (float32-staged)."""
    x_q = x32 * np.float32(1.0 / scale)
    np.rint(x_q, out=x_q)
    np.clip(x_q, -_QMAX, _QMAX, out=x_q)
    return x_q


class QuantizedLinear(Module):
    """Drop-in int8 replacement for a :class:`Linear` at inference time.

    Weights are quantized per output channel (one scale per column of
    the ``(in, out)`` weight matrix), which costs nothing at GEMM time —
    the scales fold into the output elementwise multiply — and keeps
    channels with small dynamic range precise.  Activations use a single
    per-tensor scale: the calibrated running max when a calibration pass
    has run, otherwise the dynamic max of the batch at hand.

    The wrapped float layer stays on ``self.float_linear`` so parameter
    discovery, ``state_dict`` keys and ``load_state_dict`` behave as if
    the swap never happened.
    """

    def __init__(self, linear: Linear):
        super().__init__()
        self.float_linear = linear
        self.calibrating = False
        #: Calibrated running max of activation magnitude (None = dynamic).
        self.act_amax: Optional[float] = None
        w = linear.weight.data
        scale = np.abs(w).max(axis=0) / _QMAX
        scale = np.maximum(scale, _EPS)
        self.weight_scale = scale.astype(np.float32)
        quantized = np.clip(np.rint(w / scale), -_QMAX, _QMAX)
        self.weight_q = quantized.astype(np.int8)
        # Integer-valued float32 staging copy: BLAS-speed GEMM with
        # exact integer accumulation (|products| < 2^24).
        self.weight_f32 = quantized.astype(np.float32)
        self.bias_f32 = (
            None
            if linear.bias is None
            else linear.bias.data.astype(np.float32)
        )

    # Keep the original parameter names: the wrapper is transparent to
    # ``state_dict`` / ``load_state_dict`` / optimizers.
    def named_parameters(self, prefix: str = ""):
        yield from self.float_linear.named_parameters(prefix=prefix)

    def act_scale(self, x32: np.ndarray) -> float:
        """Activation scale for this call: calibrated if frozen, else dynamic."""
        amax = (
            self.act_amax
            if self.act_amax is not None
            else float(np.abs(x32).max(initial=0.0))
        )
        return max(amax / _QMAX, _EPS)

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Quantized affine map on a raw array (float32 out)."""
        global _GEMM_CALLS
        x32 = x.astype(np.float32, copy=False)
        if self.calibrating:
            amax = float(np.abs(x32).max(initial=0.0))
            self.act_amax = max(self.act_amax or 0.0, amax)
            return self.float_linear.infer(x32)
        scale = self.act_scale(x32)
        x_q = quantize_activations(x32, scale)
        out = x_q @ self.weight_f32
        out *= np.float32(scale) * self.weight_scale
        if self.bias_f32 is not None:
            out += self.bias_f32
        _GEMM_CALLS += 1
        return out

    def forward(self, x: Tensor) -> Tensor:
        if not is_grad_enabled():
            return Tensor(self.infer(x.data))
        raise RuntimeError(
            "QuantizedLinear is inference-only; call dequantize() "
            "before training or run under no_grad()"
        )


def _swap(parent: Module, make_replacement) -> int:
    """Replace Linear children of ``parent`` (attrs and ModuleList items)."""
    swapped = 0
    for name, value in list(vars(parent).items()):
        replacement = make_replacement(value)
        if replacement is not None:
            setattr(parent, name, replacement)
            swapped += 1
    if isinstance(parent, ModuleList):
        for index, value in enumerate(parent._items):
            replacement = make_replacement(value)
            if replacement is not None:
                parent._items[index] = replacement
                swapped += 1
    return swapped


def quantize_model(model: Module) -> int:
    """Swap every ``Linear`` in ``model`` for a :class:`QuantizedLinear`.

    Also flips every ``TransformerEncoder`` to a float32 elementwise
    pipeline so the non-GEMM tail (layer norm, GELU, softmax) matches
    the quantized GEMM dtype instead of paying float64 bandwidth.
    Returns the number of layers quantized; idempotent.
    """
    from .attention import TransformerEncoder

    count = 0
    for module in list(model.modules()):
        if isinstance(module, QuantizedLinear):
            continue
        if isinstance(module, TransformerEncoder):
            module.inference_dtype = np.float32
        count += _swap(
            module,
            lambda v: QuantizedLinear(v) if type(v) is Linear else None,
        )
    return count


def dequantize(model: Module) -> int:
    """Undo :func:`quantize_model`, restoring the original float layers."""
    from .attention import TransformerEncoder

    count = 0
    for module in list(model.modules()):
        if isinstance(module, TransformerEncoder):
            module.inference_dtype = np.float64
        count += _swap(
            module,
            lambda v: v.float_linear if isinstance(v, QuantizedLinear) else None,
        )
    return count


@contextlib.contextmanager
def calibration(model: Module):
    """Record activation ranges: run representative inputs inside this block.

    While calibrating, quantized layers compute in float and track the
    running max activation magnitude; afterwards that max becomes the
    fixed activation scale, making outputs independent of how documents
    are batched at serving time.
    """
    layers = [m for m in model.modules() if isinstance(m, QuantizedLinear)]
    for layer in layers:
        layer.calibrating = True
    try:
        yield model
    finally:
        for layer in layers:
            layer.calibrating = False


def set_fused_inference(model: Module, enabled: bool) -> None:
    """Toggle the raw-ndarray encoder kernels on every TransformerEncoder."""
    from .attention import TransformerEncoder

    for module in model.modules():
        if isinstance(module, TransformerEncoder):
            module.fused_inference = enabled


def quantization_report(model: Module) -> Dict[str, float]:
    """Summarise quantization state for telemetry gauges."""
    layers = [m for m in model.modules() if isinstance(m, QuantizedLinear)]
    calibrated = sum(1 for m in layers if m.act_amax is not None)
    return {
        "quantize.layers": float(len(layers)),
        "quantize.calibrated_layers": float(calibrated),
        "quantize.gemm_calls": float(_GEMM_CALLS),
    }
