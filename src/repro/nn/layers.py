"""Core neural layers: Linear, Embedding, LayerNorm, Dropout, MLP."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from . import init
from .functional import gelu
from .module import Module, Parameter
from .tensor import Tensor, is_grad_enabled, no_grad

__all__ = ["Linear", "Embedding", "LayerNorm", "Dropout", "Mlp"]


class Linear(Module):
    """Affine transformation ``y = x W + b`` over the last axis.

    Under ``no_grad`` the forward skips graph construction entirely and
    runs :meth:`infer` on the raw array — the hot path for serving.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or init.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if not is_grad_enabled():
            return Tensor(self.infer(x.data))
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Forward-only affine map on a raw array — no graph, no boxing.

        Parameters are cast to the activation dtype (a no-op at the
        default float64), so a float32 pipeline stays float32.
        """
        weight = self.weight.data
        if weight.dtype != x.dtype:
            weight = weight.astype(x.dtype)
        out = x @ weight
        if self.bias is not None:
            bias = self.bias.data
            if bias.dtype != x.dtype:
                bias = bias.astype(x.dtype)
            out += bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
        padding_idx: Optional[int] = None,
    ):
        super().__init__()
        rng = rng or init.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), rng))
        self.padding_idx = padding_idx
        if padding_idx is not None:
            with no_grad():
                self.weight.data[padding_idx] = 0.0

    def _checked(self, ids) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.min(initial=0) < 0 or ids.max(initial=0) >= self.num_embeddings:
            raise IndexError(
                f"embedding ids out of range [0, {self.num_embeddings}): "
                f"min={ids.min()}, max={ids.max()}"
            )
        return ids

    def lookup(self, ids, dtype=None) -> np.ndarray:
        """Range-checked raw table gather (no Tensor boxing).

        With ``dtype`` set, gathers from a cached cast of the table so a
        single-precision pipeline pays the cast once per table, not once
        per gathered row.  The cache is keyed on the table's identity —
        rebinding ``weight.data`` invalidates it.
        """
        ids = self._checked(ids)
        table = self.weight.data
        if dtype is not None and table.dtype != dtype:
            cached = getattr(self, "_cast_table", None)
            if cached is None or cached[0] is not table or cached[1].dtype != dtype:
                cached = (table, table.astype(dtype))
                self._cast_table = cached
            table = cached[1]
        return table[ids]

    def forward(self, ids) -> Tensor:
        ids = self._checked(ids)
        if not is_grad_enabled():
            # Fast path: fancy-index the raw table, skip graph bookkeeping.
            return Tensor(self.weight.data[ids])
        return self.weight[ids]


class LayerNorm(Module):
    """Layer normalisation over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(init.ones(dim))
        self.beta = Parameter(init.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        if not is_grad_enabled():
            return Tensor(self.infer(x.data))
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Forward-only layer norm on a raw array.

        The variance is a fused einsum dot-product over the centered rows
        — one pass, no ``centered**2`` temporary — which lands within one
        ulp of the compositional reduction (both serving paths share this
        kernel, so fused-vs-graph inference parity is unaffected).
        """
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = np.einsum("...i,...i->...", centered, centered)[..., None]
        var /= x.shape[-1]
        gamma = self.gamma.data
        beta = self.beta.data
        if gamma.dtype != x.dtype:
            gamma = gamma.astype(x.dtype)
            beta = beta.astype(x.dtype)
        # In-place on the fresh temporaries; identical rounding to
        # ``centered / sqrt(var + eps) * gamma + beta``.
        var += self.eps
        np.sqrt(var, out=var)
        if x.dtype == np.float64:
            centered /= var
        else:
            # Reciprocal on the (rows, 1) column, multiply on the matrix —
            # cheaper than a full-width divide (last-ulp difference only).
            np.divide(1.0, var, out=var)
            centered *= var
        centered *= gamma
        centered += beta
        return centered


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.1, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1): {p}")
        self.p = p
        self._rng = rng or init.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float64) / keep
        return x * Tensor(mask)


class Mlp(Module):
    """Multi-layer perceptron with GELU activations between layers."""

    def __init__(
        self,
        sizes: Sequence[int],
        rng: Optional[np.random.Generator] = None,
        activation: str = "gelu",
    ):
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("Mlp needs at least input and output sizes")
        rng = rng or init.default_rng()
        from .module import ModuleList

        self.layers = ModuleList(
            Linear(a, b, rng=rng) for a, b in zip(sizes[:-1], sizes[1:])
        )
        if activation not in ("gelu", "tanh", "relu"):
            raise ValueError(f"unknown activation: {activation}")
        self.activation = activation

    def forward(self, x: Tensor) -> Tensor:
        last = len(self.layers) - 1
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i != last:
                if self.activation == "gelu":
                    x = gelu(x)
                elif self.activation == "tanh":
                    x = x.tanh()
                else:
                    x = x.relu()
        return x

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Forward-only pass on a raw array (same op order as forward)."""
        from .functional import gelu_ndarray

        last = len(self.layers) - 1
        for i, layer in enumerate(self.layers):
            x = layer.infer(x)
            if i != last:
                if self.activation == "gelu":
                    x = gelu_ndarray(x)
                elif self.activation == "tanh":
                    x = np.tanh(x)
                else:
                    x = x * (x > 0)
        return x
