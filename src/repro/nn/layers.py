"""Core neural layers: Linear, Embedding, LayerNorm, Dropout, MLP."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from . import init
from .functional import gelu
from .module import Module, Parameter
from .tensor import Tensor, no_grad

__all__ = ["Linear", "Embedding", "LayerNorm", "Dropout", "Mlp"]


class Linear(Module):
    """Affine transformation ``y = x W + b`` over the last axis."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or init.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
        padding_idx: Optional[int] = None,
    ):
        super().__init__()
        rng = rng or init.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), rng))
        self.padding_idx = padding_idx
        if padding_idx is not None:
            with no_grad():
                self.weight.data[padding_idx] = 0.0

    def forward(self, ids) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.min(initial=0) < 0 or ids.max(initial=0) >= self.num_embeddings:
            raise IndexError(
                f"embedding ids out of range [0, {self.num_embeddings}): "
                f"min={ids.min()}, max={ids.max()}"
            )
        return self.weight[ids]


class LayerNorm(Module):
    """Layer normalisation over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(init.ones(dim))
        self.beta = Parameter(init.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.1, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1): {p}")
        self.p = p
        self._rng = rng or init.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float64) / keep
        return x * Tensor(mask)


class Mlp(Module):
    """Multi-layer perceptron with GELU activations between layers."""

    def __init__(
        self,
        sizes: Sequence[int],
        rng: Optional[np.random.Generator] = None,
        activation: str = "gelu",
    ):
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("Mlp needs at least input and output sizes")
        rng = rng or init.default_rng()
        from .module import ModuleList

        self.layers = ModuleList(
            Linear(a, b, rng=rng) for a, b in zip(sizes[:-1], sizes[1:])
        )
        if activation not in ("gelu", "tanh", "relu"):
            raise ValueError(f"unknown activation: {activation}")
        self.activation = activation

    def forward(self, x: Tensor) -> Tensor:
        last = len(self.layers) - 1
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i != last:
                if self.activation == "gelu":
                    x = gelu(x)
                elif self.activation == "tanh":
                    x = x.tanh()
                else:
                    x = x.relu()
        return x
