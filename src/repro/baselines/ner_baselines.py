"""Intra-block NER baselines (Table IV).

* :class:`DrMatch` — pure dictionary + regex matching.
* :class:`BertBiLstmCrf` — encoder + BiLSTM + linear-chain CRF trained on
  hard distant labels (fully-supervised recipe applied to noisy data).
* :class:`BertBiLstmFuzzyCrf` — the same stack with a fuzzy CRF that
  marginalises over unmatched positions (Shang et al., 2018).
* :class:`AutoNer` — the "Tie or Break" tagger: a boundary head decides
  whether adjacent tokens bind together, a type head classifies chunks;
  unknown boundaries (both tokens unmatched) contribute no loss.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..corpus.datasets import NerExample
from ..docmodel.labels import ENTITY_SCHEME, ENTITY_TAGS, IobScheme
from ..nn import (
    AdamW,
    BiLstm,
    FuzzyCrf,
    LinearChainCrf,
    Linear,
    Module,
    ParamGroup,
    Tensor,
    clip_grad_norm,
    no_grad,
)
from ..nn import init as nn_init
from ..nn.functional import cross_entropy
from ..ner.annotate import DistantAnnotator
from ..ner.model import NerConfig, NerEncoder
from ..text.wordpiece import WordPieceTokenizer

__all__ = [
    "DrMatch",
    "BertBiLstmCrf",
    "BertBiLstmFuzzyCrf",
    "AutoNer",
    "NerBaselineTrainer",
]


class DrMatch:
    """Dictionary & regular-expression matching (no learning)."""

    def __init__(self, annotator: DistantAnnotator):
        self.annotator = annotator
        self.scheme = ENTITY_SCHEME

    def predict(self, examples: Sequence[NerExample]) -> List[List[str]]:
        return [self.annotator.annotate(e.words).labels for e in examples]


class _NerCrfBase(Module):
    """Shared encoder + BiLSTM + emission stack for the CRF baselines."""

    def __init__(
        self,
        config: NerConfig,
        tokenizer: WordPieceTokenizer,
        scheme: IobScheme = ENTITY_SCHEME,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or nn_init.default_rng()
        from ..ner.encoding import NerFeaturizer

        self.config = config
        self.scheme = scheme
        self.featurizer = NerFeaturizer(
            tokenizer, scheme, max_words=config.max_words,
            max_pieces=config.max_pieces,
        )
        self.encoder = NerEncoder(config, rng=rng)
        self.bilstm = BiLstm(config.hidden_dim, config.lstm_hidden, rng=rng)
        self.emitter = Linear(2 * config.lstm_hidden, scheme.num_labels, rng=rng)

    def emissions(self, features) -> Tensor:
        states = self.encoder(
            features.piece_ids, features.piece_mask, features.piece_shape
        )
        rows = np.arange(features.batch_size)[:, None]
        gathered = states[rows, features.first_piece]
        return self.emitter(self.bilstm(gathered))

    def predict(self, examples: Sequence[NerExample]) -> List[List[str]]:
        features = self.featurizer.featurize(examples)
        self.eval()
        with no_grad():
            emissions = self.emissions(features)
        mask = features.word_mask.copy()
        mask[:, 0] = 1.0  # decoder needs a valid first position
        paths = self._decoder().decode(emissions, mask)
        out: List[List[str]] = []
        for example, path in zip(examples, paths):
            labels = self.scheme.decode(path)[: len(example.words)]
            labels += ["O"] * (len(example.words) - len(labels))
            out.append(labels)
        return out

    def _decoder(self) -> LinearChainCrf:
        raise NotImplementedError


class BertBiLstmCrf(_NerCrfBase):
    """Hard-label CRF baseline."""

    def __init__(self, config, tokenizer, scheme=ENTITY_SCHEME, rng=None):
        super().__init__(config, tokenizer, scheme, rng)
        self.crf = LinearChainCrf(scheme.num_labels, rng=rng or nn_init.default_rng())

    def _decoder(self):
        return self.crf

    def loss(self, features) -> Tensor:
        mask = features.word_mask.copy()
        mask[:, 0] = 1.0
        return self.crf.neg_log_likelihood(
            self.emissions(features), features.label_ids, mask
        )


class BertBiLstmFuzzyCrf(_NerCrfBase):
    """Fuzzy-CRF baseline: unmatched positions marginalised over all tags."""

    def __init__(self, config, tokenizer, scheme=ENTITY_SCHEME, rng=None):
        super().__init__(config, tokenizer, scheme, rng)
        self.crf = FuzzyCrf(scheme.num_labels, rng=rng or nn_init.default_rng())

    def _decoder(self):
        return self.crf

    def allowed_matrix(
        self,
        examples: Sequence[NerExample],
        annotator: DistantAnnotator,
        confident_o: Optional[frozenset] = None,
    ) -> np.ndarray:
        """Per-position permitted-tag sets from the annotator's commitments.

        Matched positions are pinned to their distant tag; positions whose
        word belongs to ``confident_o`` (frequent corpus words the annotator
        never matched anywhere — Shang et al.'s distant-O trick) are pinned
        to ``O``; everything else stays unconstrained.  Without a distant-O
        signal, the fuzzy likelihood exerts no pressure towards ``O`` on
        unmatched tokens and precision collapses.
        """
        features = self.featurizer.featurize(examples)
        b, w = features.label_ids.shape
        allowed = np.ones((b, w, self.scheme.num_labels), dtype=bool)
        outside = self.scheme.outside_id
        for row, example in enumerate(examples):
            annotation = annotator.annotate(example.words)
            for pos in range(min(len(example.words), w)):
                if annotation.matched[pos]:
                    allowed[row, pos] = False
                    allowed[row, pos, self.scheme.label_id(annotation.labels[pos])] = True
                elif confident_o and example.words[pos].lower() in confident_o:
                    allowed[row, pos] = False
                    allowed[row, pos, outside] = True
        return allowed

    @staticmethod
    def build_confident_o(
        examples: Sequence[NerExample],
        annotator: DistantAnnotator,
        min_count: int = 3,
    ) -> frozenset:
        """Words seen >= ``min_count`` times in the corpus and never matched
        by the annotator anywhere — confidently-outside tokens."""
        counts: dict = {}
        matched_words: set = set()
        for example in examples:
            annotation = annotator.annotate(example.words)
            for word, is_matched in zip(example.words, annotation.matched):
                lowered = word.lower()
                counts[lowered] = counts.get(lowered, 0) + 1
                if is_matched:
                    matched_words.add(lowered)
        return frozenset(
            word
            for word, count in counts.items()
            if count >= min_count and word not in matched_words
        )

    def loss(self, features, allowed: np.ndarray) -> Tensor:
        mask = features.word_mask.copy()
        mask[:, 0] = 1.0
        return self.crf.constrained_nll(self.emissions(features), allowed, mask)


class AutoNer(Module):
    """"Tie or Break" tagger (Shang et al., 2018).

    Between each pair of adjacent words a boundary head predicts *tie*
    (same chunk) or *break*; a type head classifies each word among the
    entity types plus ``None``.  Distant supervision: boundaries inside or
    at the edge of matched entities are known, pairs of unmatched words are
    *unknown* and skipped — the scheme's noise-tolerance trick.
    """

    TIE, BREAK = 0, 1

    def __init__(
        self,
        config: NerConfig,
        tokenizer: WordPieceTokenizer,
        scheme: IobScheme = ENTITY_SCHEME,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or nn_init.default_rng()
        from ..ner.encoding import NerFeaturizer

        self.config = config
        self.scheme = scheme
        self.tags = list(ENTITY_TAGS)
        self.featurizer = NerFeaturizer(
            tokenizer, scheme, max_words=config.max_words,
            max_pieces=config.max_pieces,
        )
        self.encoder = NerEncoder(config, rng=rng)
        self.bilstm = BiLstm(config.hidden_dim, config.lstm_hidden, rng=rng)
        hidden = 2 * config.lstm_hidden
        self.boundary_head = Linear(2 * hidden, 2, rng=rng)
        self.type_head = Linear(hidden, len(self.tags) + 1, rng=rng)  # +None

    # ------------------------------------------------------------------
    def _states(self, features) -> Tensor:
        states = self.encoder(
            features.piece_ids, features.piece_mask, features.piece_shape
        )
        rows = np.arange(features.batch_size)[:, None]
        gathered = states[rows, features.first_piece]
        return self.bilstm(gathered)

    def boundary_logits(self, states: Tensor) -> Tensor:
        """(b, w-1, 2) tie/break scores for adjacent word pairs."""
        from ..nn import concat

        left = states[:, :-1, :]
        right = states[:, 1:, :]
        return self.boundary_head(concat([left, right], axis=-1))

    def supervision(self, examples: Sequence[NerExample], annotator: DistantAnnotator):
        """Boundary and type targets from distant matches.

        Returns ``(boundary_targets, boundary_mask, type_targets, type_mask)``
        aligned to the featurizer's padded word grid.
        """
        features = self.featurizer.featurize(examples)
        b, w = features.label_ids.shape
        boundary = np.zeros((b, w - 1), dtype=np.int64)
        boundary_mask = np.zeros((b, w - 1))
        types = np.full((b, w), len(self.tags), dtype=np.int64)  # None index
        type_mask = np.zeros((b, w))
        for row, example in enumerate(examples):
            annotation = annotator.annotate(example.words)
            labels = annotation.labels
            matched = annotation.matched
            n = min(len(example.words), w)
            for pos in range(n):
                if matched[pos]:
                    tag = labels[pos][2:]
                    types[row, pos] = self.tags.index(tag)
                    type_mask[row, pos] = 1.0
                else:
                    type_mask[row, pos] = 0.5  # weak 'None' supervision
            for pos in range(n - 1):
                left_known = matched[pos]
                right_known = matched[pos + 1]
                if not (left_known or right_known):
                    continue  # unknown boundary: contributes no loss
                tie = (
                    left_known
                    and right_known
                    and labels[pos + 1].startswith("I-")
                )
                boundary[row, pos] = self.TIE if tie else self.BREAK
                boundary_mask[row, pos] = 1.0
        return features, boundary, boundary_mask, types, type_mask

    def loss(self, features, boundary, boundary_mask, types, type_mask) -> Tensor:
        states = self._states(features)
        b_logits = self.boundary_logits(states)
        t_logits = self.type_head(states)
        boundary_loss = cross_entropy(b_logits, boundary, mask=boundary_mask)
        type_loss = cross_entropy(t_logits, types, mask=type_mask)
        return boundary_loss + type_loss

    # ------------------------------------------------------------------
    def predict(self, examples: Sequence[NerExample]) -> List[List[str]]:
        from ..nn.functional import softmax

        features = self.featurizer.featurize(examples)
        self.eval()
        with no_grad():
            states = self._states(features)
            breaks = softmax(self.boundary_logits(states), axis=-1).numpy()
            type_probs = softmax(self.type_head(states), axis=-1).numpy()
        out: List[List[str]] = []
        none_index = len(self.tags)
        for row, example in enumerate(examples):
            n = min(len(example.words), features.max_words)
            labels = ["O"] * len(example.words)
            # Chunk at predicted breaks, then classify each chunk.
            starts = [0]
            for pos in range(n - 1):
                if breaks[row, pos, self.BREAK] >= 0.5:
                    starts.append(pos + 1)
            starts.append(n)
            for begin, end in zip(starts, starts[1:]):
                if begin >= end:
                    continue
                mean_probs = type_probs[row, begin:end].mean(axis=0)
                best = int(mean_probs.argmax())
                if best == none_index:
                    continue
                tag = self.tags[best]
                labels[begin] = f"B-{tag}"
                for pos in range(begin + 1, end):
                    labels[pos] = f"I-{tag}"
            out.append(labels)
        return out


class NerBaselineTrainer:
    """Mini-batch trainer covering all three learned NER baselines."""

    def __init__(
        self,
        model: Module,
        annotator: Optional[DistantAnnotator] = None,
        learning_rate: float = 1e-3,
        weight_decay: float = 0.01,
        batch_size: int = 16,
        max_grad_norm: float = 5.0,
        seed: int = 0,
    ):
        self.model = model
        self.annotator = annotator
        self.batch_size = batch_size
        self.rng = np.random.default_rng(seed)
        self.optimizer = AdamW(
            [ParamGroup(model.parameters(), learning_rate)],
            weight_decay=weight_decay,
        )
        self.max_grad_norm = max_grad_norm

    def fit(self, train: Sequence[NerExample], epochs: int = 5) -> List[float]:
        if isinstance(self.model, BertBiLstmFuzzyCrf) and self.annotator is not None:
            self._confident_o = BertBiLstmFuzzyCrf.build_confident_o(
                train, self.annotator
            )
        losses: List[float] = []
        for _ in range(epochs):
            self.model.train()
            epoch_loss, batches = 0.0, 0
            for features, chunk in self.model.featurizer.batches(
                train, self.batch_size, rng=self.rng
            ):
                self.optimizer.zero_grad()
                loss = self._batch_loss(features, chunk)
                loss.backward()
                clip_grad_norm(self.model.parameters(), self.max_grad_norm)
                self.optimizer.step()
                epoch_loss += float(loss.data)
                batches += 1
            losses.append(epoch_loss / max(batches, 1))
        return losses

    def _batch_loss(self, features, chunk):
        if isinstance(self.model, BertBiLstmFuzzyCrf):
            if self.annotator is None:
                raise ValueError("fuzzy CRF training needs the annotator")
            allowed = self.model.allowed_matrix(
                chunk, self.annotator,
                confident_o=getattr(self, "_confident_o", None),
            )
            return self.model.loss(features, allowed)
        if isinstance(self.model, AutoNer):
            if self.annotator is None:
                raise ValueError("AutoNER training needs the annotator")
            features, boundary, b_mask, types, t_mask = self.model.supervision(
                chunk, self.annotator
            )
            return self.model.loss(features, boundary, b_mask, types, t_mask)
        return self.model.loss(features)
