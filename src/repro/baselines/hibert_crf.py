"""HiBERT+CRF baseline: hierarchical, text-only, non-pretrained.

Chapuis et al. (2020)-style hierarchical encoder: a sentence-level
Transformer pools each sentence to a vector, a document-level Transformer
contextualises the sequence, and a CRF tags sentences.  Identical task
framing to our method but with *no layout, no visual channel and no
pre-training* — isolating the contribution of multi-modality and the
self-supervised objectives (Table II).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.embeddings import TextEmbedding
from ..core.featurize import DocumentFeatures, Featurizer
from ..docmodel.document import ResumeDocument
from ..docmodel.labels import BLOCK_SCHEME, IobScheme
from ..nn import (
    Embedding,
    LinearChainCrf,
    Linear,
    Module,
    Tensor,
    TransformerEncoder,
    no_grad,
)
from ..nn import init as nn_init
from ..nn.functional import l2_normalize

__all__ = ["HiBertCrf"]


class HiBertCrf(Module):
    """Two-level text-only Transformer with a sentence-level CRF head."""

    def __init__(
        self,
        featurizer: Featurizer,
        scheme: IobScheme = BLOCK_SCHEME,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or nn_init.default_rng()
        config = featurizer.config
        self.featurizer = featurizer
        self.scheme = scheme
        self.config = config
        self.token_embedding = TextEmbedding(
            config.vocab_size,
            config.hidden_dim,
            max_positions=config.max_sentence_tokens + 1,
            rng=rng,
        )
        self.sentence_encoder = TransformerEncoder(
            config.sentence_layers, config.hidden_dim, config.sentence_heads,
            ffn_dim=config.hidden_dim * config.ffn_multiplier,
            dropout=config.dropout, rng=rng,
        )
        self.pooler = Linear(config.hidden_dim, config.hidden_dim, rng=rng)
        self.sentence_position = Embedding(
            config.max_document_sentences, config.hidden_dim, rng=rng
        )
        self.document_encoder = TransformerEncoder(
            config.document_layers, config.hidden_dim, config.document_heads,
            ffn_dim=config.hidden_dim * config.ffn_multiplier,
            dropout=config.dropout, rng=rng,
        )
        self.classifier = Linear(config.hidden_dim, scheme.num_labels, rng=rng)
        self.crf = LinearChainCrf(scheme.num_labels, rng=rng)

    # ------------------------------------------------------------------
    def emissions(self, features: DocumentFeatures) -> Tensor:
        embedded = self.token_embedding(features.token_ids, features.token_segments)
        states = self.sentence_encoder(embedded, attention_mask=features.token_mask)
        pooled = l2_normalize(self.pooler(states[:, 0, :]).tanh(), axis=-1)
        m = features.num_sentences
        doc_input = pooled + self.sentence_position(features.sentence_positions)
        contextual = self.document_encoder(
            doc_input.reshape(1, m, self.config.hidden_dim),
            attention_mask=np.ones((1, m)),
        )
        return self.classifier(contextual)

    def loss(self, features: DocumentFeatures, labels) -> Tensor:
        labels = np.asarray(labels, dtype=np.int64)[: features.num_sentences]
        return self.crf.neg_log_likelihood(self.emissions(features), labels[None, :])

    # ------------------------------------------------------------------
    def predict(self, document: ResumeDocument) -> List[str]:
        features = self.featurizer.featurize(document)
        self.eval()
        with no_grad():
            emissions = self.emissions(features)
        labels = self.scheme.decode(self.crf.decode(emissions)[0])
        labels += ["O"] * (document.num_sentences - len(labels))
        return labels

    def predict_block_tags(self, document: ResumeDocument) -> List[str]:
        return [l if l == "O" else l[2:] for l in self.predict(document)]

    def predict_token_tags(self, document: ResumeDocument) -> List[str]:
        tags: List[str] = []
        for sentence, tag in zip(
            document.sentences, self.predict_block_tags(document)
        ):
            tags.extend([tag] * len(sentence.tokens))
        return tags
