"""RoBERTa+GCN baseline (Wei et al., 2020): text encoder + layout graph.

A token-level Transformer encodes the text; a graph convolutional network
over a spatial k-nearest-neighbour graph of token boxes injects 2-D
positional structure; a CRF decodes token tags.  The spatial graph is
constructed with :mod:`networkx` from each window's token centres.
"""

from __future__ import annotations

from typing import List, Optional

import networkx as nx
import numpy as np

from ..docmodel.labels import BLOCK_SCHEME
from ..nn import Module, Parameter, Tensor
from ..nn import init as nn_init
from .token_level import TokenBlockTagger, TokenTaggerConfig, TokenWindow

__all__ = ["RobertaGcn", "build_spatial_graph", "normalized_adjacency"]


def build_spatial_graph(layout: np.ndarray, k: int = 4) -> nx.Graph:
    """k-NN graph over token layout tuples (bucketised centres).

    Node ``i`` connects to its ``k`` nearest tokens by Euclidean distance
    between box centres ``((x_min+x_max)/2, (y_min+y_max)/2)``, with page
    distance dominating so cross-page edges only appear for tiny windows.
    """
    n = layout.shape[0]
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    if n <= 1:
        return graph
    centers = np.stack(
        [
            (layout[:, 0] + layout[:, 2]) / 2.0,
            (layout[:, 1] + layout[:, 3]) / 2.0,
            layout[:, 6] * 1000.0,  # page separation dominates
        ],
        axis=1,
    )
    diff = centers[:, None, :] - centers[None, :, :]
    distance = np.sqrt((diff**2).sum(-1))
    np.fill_diagonal(distance, np.inf)
    neighbours = np.argsort(distance, axis=1)[:, : min(k, n - 1)]
    for i in range(n):
        for j in neighbours[i]:
            graph.add_edge(i, int(j))
    return graph


def normalized_adjacency(graph: nx.Graph) -> np.ndarray:
    """Symmetrically normalised adjacency with self-loops (Kipf & Welling)."""
    n = graph.number_of_nodes()
    adjacency = nx.to_numpy_array(graph, nodelist=range(n)) + np.eye(n)
    degree = adjacency.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1e-12))
    return adjacency * inv_sqrt[:, None] * inv_sqrt[None, :]


class _GcnLayer(Module):
    """One graph convolution: ``H' = relu(Â H W)``."""

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.weight = Parameter(nn_init.xavier_uniform((dim, dim), rng))

    def forward(self, states: Tensor, adjacency: np.ndarray) -> Tensor:
        mixed = Tensor(adjacency) @ (states @ self.weight)
        return mixed.relu()


class RobertaGcn(TokenBlockTagger):
    """Token-level text Transformer + spatial GCN + CRF."""

    def __init__(
        self,
        config: TokenTaggerConfig,
        tokenizer,
        scheme=BLOCK_SCHEME,
        rng: Optional[np.random.Generator] = None,
        gcn_layers: int = 2,
        knn: int = 4,
    ):
        config.use_layout = False   # layout enters through the graph instead
        config.use_visual = False
        super().__init__(config, tokenizer, scheme, rng)
        rng = rng or nn_init.default_rng()
        from ..nn import ModuleList

        self.gcn = ModuleList(
            _GcnLayer(config.hidden_dim, rng) for _ in range(gcn_layers)
        )
        self.knn = knn

    def emissions(self, window: TokenWindow) -> Tensor:
        ids = window.word_ids[None, :]
        embedded = self.text_embedding(ids, np.zeros_like(ids))
        states = self.encoder(embedded, attention_mask=window.word_mask[None, :])
        n = window.word_ids.shape[0]
        flat = states.reshape(n, self.config.hidden_dim)
        adjacency = normalized_adjacency(
            build_spatial_graph(window.layout, k=self.knn)
        )
        for layer in self.gcn:
            flat = layer(flat, adjacency) + flat  # residual keeps text signal
        return self.classifier(flat.reshape(1, n, self.config.hidden_dim))
