"""Token-level block classification baselines (BERT+CRF, LayoutXLM-like).

These models classify every *word token* of a document (vs. our method's
sentence-level tagging).  Long documents are processed in fixed-size word
windows, mirroring the 512-token limit the paper highlights: token-level
models cannot see the whole resume at once, which costs them both accuracy
on cross-window structure and an order of magnitude in speed (Table II's
Time/Resume row).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.embeddings import LayoutEmbedding, TextEmbedding
from ..corpus.render import VISUAL_DIM, sentence_visual_features
from ..docmodel.document import ResumeDocument
from ..docmodel.labels import BLOCK_SCHEME, IobScheme
from ..nn import (
    AdamW,
    LinearChainCrf,
    Linear,
    Module,
    ParamGroup,
    Tensor,
    TransformerEncoder,
    clip_grad_norm,
    no_grad,
)
from ..nn import init as nn_init
from ..nn.functional import cross_entropy
from ..text.wordpiece import WordPieceTokenizer

__all__ = [
    "TokenTaggerConfig",
    "TokenWindow",
    "window_document",
    "TokenBlockTagger",
    "BertCrf",
    "LayoutXlmLike",
    "TokenTaggerTrainer",
]


@dataclass
class TokenTaggerConfig:
    """Hyper-parameters shared by the token-level baselines."""

    vocab_size: int
    hidden_dim: int = 64
    layers: int = 2
    heads: int = 4
    window_words: int = 128     # the "512 WordPiece tokens" budget, scaled
    layout_buckets: int = 64
    dropout: float = 0.1
    ffn_multiplier: int = 2
    use_layout: bool = False
    use_visual: bool = False
    visual_dim: int = VISUAL_DIM

    def validate(self) -> "TokenTaggerConfig":
        if self.hidden_dim % self.heads:
            raise ValueError("hidden_dim must divide heads")
        return self


@dataclass
class TokenWindow:
    """One window of a flattened document (WordPiece granularity).

    Every sub-word piece carries its source word's layout, visual features
    and label; ``word_index`` maps each piece back to its word so
    piece-level predictions can be reduced to word tags.
    """

    word_ids: np.ndarray      # (t,) WordPiece ids
    word_mask: np.ndarray     # (t,)
    layout: np.ndarray        # (t, 7) bucketised
    visual: np.ndarray        # (t, visual_dim)
    sentence_index: np.ndarray  # (t,) which sentence each piece came from
    word_index: np.ndarray = None  # (t,) which document word each piece is
    labels: Optional[np.ndarray] = None  # (t,) token-level IOB ids


def token_block_labels(
    document: ResumeDocument, scheme: IobScheme = BLOCK_SCHEME
) -> List[int]:
    """Token-level gold IOB ids expanded from sentence-level gold."""
    sentence_ids = document.block_iob_labels(scheme)
    labels: List[int] = []
    for sentence, sid in zip(document.sentences, sentence_ids):
        label = scheme.id_to_label(sid)
        if label == "O":
            labels.extend([scheme.outside_id] * len(sentence.tokens))
            continue
        tag = label[2:]
        first = scheme.begin_id(tag) if label.startswith("B") else scheme.inside_id(tag)
        labels.append(first)
        labels.extend([scheme.inside_id(tag)] * (len(sentence.tokens) - 1))
    return labels


def window_document(
    document: ResumeDocument,
    tokenizer: WordPieceTokenizer,
    config: TokenTaggerConfig,
    scheme: IobScheme = BLOCK_SCHEME,
    with_labels: bool = False,
    stride: Optional[int] = None,
) -> List[TokenWindow]:
    """Flatten a document into full-WordPiece windows.

    Every word expands to all its sub-word pieces — the reason token-level
    models pay an order of magnitude more compute per resume than the
    sentence-level hierarchy (Table II's Time/Resume row).  Word labels
    replicate over their pieces (continuations become ``I-``).

    ``stride`` < ``window_words`` yields overlapping windows (the standard
    sliding-window inference for 512-token models); the default is
    non-overlapping chunks (used for training).
    """
    vocab = tokenizer.vocab
    pieces: List[int] = []
    layouts: List[np.ndarray] = []
    visuals: List[np.ndarray] = []
    sentence_index: List[int] = []
    word_index: List[int] = []
    piece_labels: List[int] = []
    from ..core.featurize import Featurizer
    from ..core.config import ResuFormerConfig

    bucketizer = Featurizer(
        tokenizer,
        ResuFormerConfig(
            vocab_size=config.vocab_size, layout_buckets=config.layout_buckets
        ),
    )
    word_labels = token_block_labels(document, scheme) if with_labels else None
    w_idx = 0
    for s_idx, sentence in enumerate(document.sentences):
        page = document.page(sentence.page)
        visual = (
            np.asarray(sentence.visual, dtype=np.float64)
            if sentence.visual is not None
            else sentence_visual_features(sentence, page.width, page.height)
        )
        for token in sentence.tokens:
            layout = bucketizer._layout_tuple(
                token.bbox.normalized(page.width, page.height), token.page
            )
            sub = tokenizer.tokenize_word(token.word.lower())
            for k, piece in enumerate(sub):
                pieces.append(vocab.token_to_id(piece))
                layouts.append(layout)
                visuals.append(visual)
                sentence_index.append(s_idx)
                word_index.append(w_idx)
                if word_labels is not None:
                    label_id = word_labels[w_idx]
                    if k > 0 and label_id != scheme.outside_id:
                        tag = scheme.tag_of(label_id)
                        label_id = scheme.inside_id(tag)
                    piece_labels.append(label_id)
            w_idx += 1

    windows: List[TokenWindow] = []
    size = config.window_words
    step = stride or size
    if step >= size:
        # Non-overlapping chunking (training): exact partition.
        starts = list(range(0, len(pieces), size))
    else:
        # Sliding-window inference: overlap plus a tail window so the last
        # pieces still receive full context.
        starts = list(range(0, max(len(pieces) - size, 0) + 1, step))
        if not starts or starts[-1] + size < len(pieces):
            starts.append(max(len(pieces) - size, 0))
        seen = set()
        starts = [s for s in starts if not (s in seen or seen.add(s))]
    for start in starts:
        stop = min(start + size, len(pieces))
        count = stop - start
        window = TokenWindow(
            word_ids=np.asarray(pieces[start:stop], dtype=np.int64),
            word_mask=np.ones(count),
            layout=np.stack(layouts[start:stop]),
            visual=np.stack(visuals[start:stop]),
            sentence_index=np.asarray(sentence_index[start:stop], dtype=np.int64),
            word_index=np.asarray(word_index[start:stop], dtype=np.int64),
            labels=(
                np.asarray(piece_labels[start:stop], dtype=np.int64)
                if word_labels is not None
                else None
            ),
        )
        windows.append(window)
    return windows


class TokenBlockTagger(Module):
    """Windowed token-level tagger: embeddings → Transformer → CRF."""

    def __init__(
        self,
        config: TokenTaggerConfig,
        tokenizer: WordPieceTokenizer,
        scheme: IobScheme = BLOCK_SCHEME,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        config.validate()
        rng = rng or nn_init.default_rng()
        self.config = config
        self.tokenizer = tokenizer
        self.scheme = scheme
        self.text_embedding = TextEmbedding(
            config.vocab_size, config.hidden_dim,
            max_positions=config.window_words, rng=rng,
        )
        if config.use_layout:
            self.layout_embedding = LayoutEmbedding(
                config.hidden_dim, config.layout_buckets, rng=rng
            )
        else:
            self.layout_embedding = None
        if config.use_visual:
            self.visual_project = Linear(
                config.visual_dim, config.hidden_dim, rng=rng
            )
        else:
            self.visual_project = None
        self.encoder = TransformerEncoder(
            config.layers, config.hidden_dim, config.heads,
            ffn_dim=config.hidden_dim * config.ffn_multiplier,
            dropout=config.dropout, rng=rng,
        )
        self.classifier = Linear(config.hidden_dim, scheme.num_labels, rng=rng)
        self.crf = LinearChainCrf(scheme.num_labels, rng=rng)

    # ------------------------------------------------------------------
    def emissions(self, window: TokenWindow) -> Tensor:
        embedded = self._embed_window(window)
        states = self.encoder(embedded, attention_mask=window.word_mask[None, :])
        return self.classifier(states)

    def loss(self, window: TokenWindow) -> Tensor:
        if window.labels is None:
            raise ValueError("window carries no labels")
        return self.crf.neg_log_likelihood(
            self.emissions(window), window.labels[None, :]
        )

    # ------------------------------------------------------------------
    def predict_token_tags(self, document: ResumeDocument) -> List[str]:
        """Bare block tag per word (area-metric interface).

        Piece-level Viterbi paths reduce to word tags by majority vote over
        each word's pieces.  Inference uses half-window overlapping strides —
        the standard sliding-window protocol for fixed-context models — so
        words near chunk boundaries get bidirectional context from at least
        one window.
        """
        self.eval()
        num_words = document.num_tokens
        votes: List[Dict[str, int]] = [{} for _ in range(num_words)]
        stride = max(self.config.window_words // 2, 1)
        for window in window_document(
            document, self.tokenizer, self.config, stride=stride
        ):
            with no_grad():
                emissions = self.emissions(window)
            path = self.crf.decode(emissions)[0]
            for label_id, w_idx in zip(path, window.word_index):
                tag = self.scheme.tag_of(label_id)
                counter = votes[w_idx]
                counter[tag] = counter.get(tag, 0) + 1
        return [
            max(counter, key=counter.get) if counter else "O" for counter in votes
        ]

    # ------------------------------------------------------------------
    def _embed_window(self, window: TokenWindow) -> Tensor:
        """Shared embedding path (text [+ layout] [+ visual])."""
        ids = window.word_ids[None, :]
        embedded = self.text_embedding(ids, np.zeros_like(ids))
        if self.layout_embedding is not None:
            embedded = embedded + self.layout_embedding(window.layout[None])
        if self.visual_project is not None:
            embedded = embedded + self.visual_project(Tensor(window.visual[None]))
        return embedded

    def pretrain_mlm(
        self,
        documents: Sequence[ResumeDocument],
        epochs: int = 1,
        mask_prob: float = 0.15,
        learning_rate: float = 5e-4,
        seed: int = 0,
    ) -> List[float]:
        """Masked-LM pre-training over unlabeled documents.

        Available on every token tagger so the "pre-trained" baselines
        (RoBERTa+GCN, LayoutXLM) get the initialisation role their originals
        bring; the MLM head is created on first use.
        """
        from ..core.pretrain import masked_copy

        if not hasattr(self, "mlm_head"):
            self.mlm_head = Linear(
                self.config.hidden_dim, self.config.vocab_size,
                rng=nn_init.default_rng(seed + 17),
            )
        rng = np.random.default_rng(seed)
        vocab = self.tokenizer.vocab
        params = self.parameters()
        optimizer = AdamW([ParamGroup(params, learning_rate)])
        losses: List[float] = []
        self.train()
        for _ in range(epochs):
            for document in documents:
                for window in window_document(document, self.tokenizer, self.config):
                    ids = window.word_ids[None, :]
                    corrupted, selected = masked_copy(
                        ids, window.word_mask[None, :], mask_prob,
                        vocab.mask_id, self.config.vocab_size, rng,
                    )
                    if not selected.any():
                        continue
                    patched = TokenWindow(
                        corrupted[0], window.word_mask, window.layout,
                        window.visual, window.sentence_index,
                    )
                    embedded = self._embed_window(patched)
                    states = self.encoder(
                        embedded, attention_mask=patched.word_mask[None, :]
                    )
                    logits = self.mlm_head(states)
                    loss = cross_entropy(logits, ids, mask=selected)
                    optimizer.zero_grad()
                    loss.backward()
                    clip_grad_norm(params, 5.0)
                    optimizer.step()
                    losses.append(float(loss.data))
        return losses

    def predict(self, document: ResumeDocument) -> List[str]:
        """Sentence-level IOB labels by per-sentence majority vote
        (footnote 3: token predictions are converted to sentence labels)."""
        token_tags = self.predict_token_tags(document)
        votes: Dict[int, Dict[str, int]] = {}
        position = 0
        for s_idx, sentence in enumerate(document.sentences):
            counter: Dict[str, int] = {}
            for _ in sentence.tokens:
                tag = token_tags[position] if position < len(token_tags) else "O"
                counter[tag] = counter.get(tag, 0) + 1
                position += 1
            votes[s_idx] = counter
        labels: List[str] = []
        previous = "O"
        for s_idx in range(len(document.sentences)):
            counter = votes[s_idx]
            tag = max(counter, key=counter.get) if counter else "O"
            if tag == "O":
                labels.append("O")
            elif previous in (f"B-{tag}", f"I-{tag}"):
                labels.append(f"I-{tag}")
            else:
                labels.append(f"B-{tag}")
            previous = labels[-1]
        return labels


class BertCrf(TokenBlockTagger):
    """Text-only token-level baseline (Table II's BERT+CRF)."""

    def __init__(self, config, tokenizer, scheme=BLOCK_SCHEME, rng=None):
        config.use_layout = False
        config.use_visual = False
        super().__init__(config, tokenizer, scheme, rng)


class LayoutXlmLike(TokenBlockTagger):
    """Multimodal token-level baseline (Table II's LayoutXLM).

    Adds 2-D layout and visual channels; with :meth:`pretrain_mlm` it plays
    the same "pre-trained multimodal" role as LayoutXLM (and serves as the
    knowledge-distillation teacher of Algorithm 1).
    """

    def __init__(self, config, tokenizer, scheme=BLOCK_SCHEME, rng=None):
        config.use_layout = True
        config.use_visual = True
        super().__init__(config, tokenizer, scheme, rng)


class TokenTaggerTrainer:
    """Supervised fine-tuning loop shared by the token-level baselines."""

    def __init__(
        self,
        model: TokenBlockTagger,
        learning_rate: float = 1e-3,
        weight_decay: float = 0.01,
        max_grad_norm: float = 5.0,
        seed: int = 0,
    ):
        self.model = model
        self.rng = np.random.default_rng(seed)
        self.optimizer = AdamW(
            [ParamGroup(model.parameters(), learning_rate)],
            weight_decay=weight_decay,
        )
        self.max_grad_norm = max_grad_norm

    def fit(
        self, documents: Sequence[ResumeDocument], epochs: int = 3
    ) -> List[float]:
        windows: List[TokenWindow] = []
        for document in documents:
            windows.extend(
                window_document(
                    document, self.model.tokenizer, self.model.config,
                    self.model.scheme, with_labels=True,
                )
            )
        losses: List[float] = []
        for _ in range(epochs):
            order = self.rng.permutation(len(windows))
            self.model.train()
            epoch_loss = 0.0
            for index in order:
                self.optimizer.zero_grad()
                loss = self.model.loss(windows[index])
                loss.backward()
                clip_grad_norm(self.model.parameters(), self.max_grad_norm)
                self.optimizer.step()
                epoch_loss += float(loss.data)
            losses.append(epoch_loss / max(len(windows), 1))
        return losses
