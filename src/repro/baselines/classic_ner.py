"""Classic resume entity extractor: Word2Vec + BiLSTM + CRF.

The pre-Transformer lineage the paper's related work describes (Sheng et
al., 2018; Chen et al., 2016): word-level embeddings initialised from
skip-gram word2vec, a BiLSTM context layer and a CRF decoder.  Unlike the
WordPiece models it has no sub-word fallback — out-of-vocabulary words
share one UNK vector, which is precisely the weakness that motivated
sub-word pre-trained encoders.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..corpus.datasets import NerExample
from ..docmodel.labels import ENTITY_SCHEME, IobScheme
from ..nn import (
    AdamW,
    BiLstm,
    Embedding,
    LinearChainCrf,
    Linear,
    Module,
    ParamGroup,
    Tensor,
    clip_grad_norm,
    no_grad,
)
from ..nn import init as nn_init
from ..text.vocab import Vocab
from ..text.word2vec import Word2VecModel

__all__ = ["Word2VecBiLstmCrf"]


class Word2VecBiLstmCrf(Module):
    """Word-level BiLSTM+CRF tagger over (optionally pretrained) embeddings."""

    def __init__(
        self,
        vocab: Vocab,
        embedding_dim: int = 64,
        lstm_hidden: int = 48,
        max_words: int = 96,
        scheme: IobScheme = ENTITY_SCHEME,
        pretrained: Optional[Word2VecModel] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or nn_init.default_rng()
        self.vocab = vocab
        self.scheme = scheme
        self.max_words = max_words
        self.embedding = Embedding(len(vocab), embedding_dim, rng=rng, padding_idx=0)
        if pretrained is not None:
            if pretrained.vectors.shape != self.embedding.weight.data.shape:
                raise ValueError("pretrained vectors do not match the vocabulary")
            self.embedding.weight.data = pretrained.vectors.copy()
        self.bilstm = BiLstm(embedding_dim, lstm_hidden, rng=rng)
        self.emitter = Linear(2 * lstm_hidden, scheme.num_labels, rng=rng)
        self.crf = LinearChainCrf(scheme.num_labels, rng=rng)

    # ------------------------------------------------------------------
    def encode_batch(self, examples: Sequence[NerExample]):
        """Pad a batch into word-id/label/mask arrays."""
        width = min(
            max(len(e.words) for e in examples), self.max_words
        )
        batch = len(examples)
        ids = np.zeros((batch, width), dtype=np.int64)
        labels = np.zeros((batch, width), dtype=np.int64)
        mask = np.zeros((batch, width))
        for row, example in enumerate(examples):
            for pos, (word, label) in enumerate(
                zip(example.words[:width], example.labels[:width])
            ):
                ids[row, pos] = self.vocab.token_to_id(word.lower())
                labels[row, pos] = (
                    self.scheme.label_id(label)
                    if label in self.scheme.labels
                    else self.scheme.outside_id
                )
                mask[row, pos] = 1.0
        return ids, labels, mask

    def emissions(self, ids: np.ndarray) -> Tensor:
        return self.emitter(self.bilstm(self.embedding(ids)))

    def loss(self, examples: Sequence[NerExample]) -> Tensor:
        ids, labels, mask = self.encode_batch(examples)
        mask[:, 0] = 1.0
        return self.crf.neg_log_likelihood(self.emissions(ids), labels, mask)

    def fit(
        self,
        train: Sequence[NerExample],
        epochs: int = 8,
        batch_size: int = 24,
        learning_rate: float = 2e-3,
        seed: int = 0,
    ) -> List[float]:
        """Supervised training on (distant) labels."""
        rng = np.random.default_rng(seed)
        optimizer = AdamW(
            [ParamGroup(self.parameters(), learning_rate)], weight_decay=0.01
        )
        losses: List[float] = []
        for _ in range(epochs):
            self.train()
            order = rng.permutation(len(train))
            epoch_loss, batches = 0.0, 0
            for start in range(0, len(order), batch_size):
                chunk = [train[i] for i in order[start : start + batch_size]]
                optimizer.zero_grad()
                loss = self.loss(chunk)
                loss.backward()
                clip_grad_norm(self.parameters(), 5.0)
                optimizer.step()
                epoch_loss += float(loss.data)
                batches += 1
            losses.append(epoch_loss / max(batches, 1))
        return losses

    def predict(self, examples: Sequence[NerExample]) -> List[List[str]]:
        self.eval()
        with no_grad():
            ids, _, mask = self.encode_batch(examples)
            mask[:, 0] = 1.0
            emissions = self.emissions(ids)
        paths = self.crf.decode(emissions, mask)
        out: List[List[str]] = []
        for example, path in zip(examples, paths):
            labels = self.scheme.decode(path)[: len(example.words)]
            labels += ["O"] * (len(example.words) - len(labels))
            out.append(labels)
        return out
