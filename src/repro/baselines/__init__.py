"""``repro.baselines`` — every comparator from Tables II and IV.

Block classification (Table II): BERT+CRF, HiBERT+CRF, RoBERTa+GCN, and a
LayoutXLM-like multimodal token tagger (also the KD teacher).  Intra-block
NER (Table IV): D&R Match, BERT+BiLSTM+CRF, BERT+BiLSTM+FuzzyCRF, AutoNER.
"""

from .classic_ner import Word2VecBiLstmCrf
from .hibert_crf import HiBertCrf
from .ner_baselines import (
    AutoNer,
    BertBiLstmCrf,
    BertBiLstmFuzzyCrf,
    DrMatch,
    NerBaselineTrainer,
)
from .roberta_gcn import RobertaGcn, build_spatial_graph, normalized_adjacency
from .token_level import (
    BertCrf,
    LayoutXlmLike,
    TokenBlockTagger,
    TokenTaggerConfig,
    TokenTaggerTrainer,
    TokenWindow,
    token_block_labels,
    window_document,
)

__all__ = [
    "BertCrf",
    "LayoutXlmLike",
    "TokenBlockTagger",
    "TokenTaggerConfig",
    "TokenTaggerTrainer",
    "TokenWindow",
    "token_block_labels",
    "window_document",
    "HiBertCrf",
    "RobertaGcn",
    "build_spatial_graph",
    "normalized_adjacency",
    "DrMatch",
    "BertBiLstmCrf",
    "BertBiLstmFuzzyCrf",
    "AutoNer",
    "NerBaselineTrainer",
    "Word2VecBiLstmCrf",
]
