"""Token-to-sentence segmentation (the PyMuPDF concatenation step).

Section III-A: adjacent tokens are concatenated into a "sentence" when they
are *closely spaced and in a row* on the same page.  This module implements
that rule over raw token streams: tokens are bucketed per page, grouped into
rows by vertical-centre proximity, sorted left-to-right, and split whenever
the horizontal gap between neighbours exceeds a threshold proportional to
the font size.
"""

from __future__ import annotations

from typing import Iterable, List

from .document import Sentence, Token

__all__ = ["segment_tokens", "SegmentationConfig"]


class SegmentationConfig:
    """Tunable thresholds for row grouping and gap splitting."""

    def __init__(
        self,
        row_tolerance_factor: float = 0.6,
        gap_factor: float = 2.5,
        max_sentence_tokens: int = 55,
    ):
        if row_tolerance_factor <= 0 or gap_factor <= 0:
            raise ValueError("segmentation factors must be positive")
        #: Two tokens share a row when their vertical centres differ by less
        #: than this fraction of the taller token's height.
        self.row_tolerance_factor = row_tolerance_factor
        #: A new sentence starts when the horizontal gap exceeds this
        #: multiple of the mean character width of the left token.
        self.gap_factor = gap_factor
        #: The paper truncates sentences to 55 tokens (Section V-A2).
        self.max_sentence_tokens = max_sentence_tokens


def segment_tokens(
    tokens: Iterable[Token], config: SegmentationConfig | None = None
) -> List[Sentence]:
    """Group raw tokens into reading-ordered sentences."""
    config = config or SegmentationConfig()
    tokens = list(tokens)
    if not tokens:
        return []

    sentences: List[Sentence] = []
    pages = sorted({token.page for token in tokens})
    for page in pages:
        page_tokens = [t for t in tokens if t.page == page]
        for row in _group_rows(page_tokens, config):
            sentences.extend(_split_row(row, config))
    return sentences


def _group_rows(tokens: List[Token], config: SegmentationConfig) -> List[List[Token]]:
    """Cluster one page's tokens into rows by vertical-centre proximity.

    Each row is anchored on its *seed* (first) token rather than the last
    appended one — anchoring on the tail lets one tall token (a large-font
    name) transitively chain two distinct body rows together.
    """
    ordered = sorted(tokens, key=lambda t: (t.center_y, t.bbox.x0))
    rows: List[List[Token]] = []
    for token in ordered:
        placed = False
        if rows:
            row = rows[-1]
            anchor = row[0]
            tolerance = config.row_tolerance_factor * max(
                token.bbox.height, anchor.bbox.height
            )
            if abs(token.center_y - anchor.center_y) <= tolerance:
                row.append(token)
                placed = True
        if not placed:
            rows.append([token])
    for row in rows:
        row.sort(key=lambda t: t.bbox.x0)
    return rows


def _split_row(row: List[Token], config: SegmentationConfig) -> List[Sentence]:
    """Split a row at large horizontal gaps and length overflow."""
    sentences: List[Sentence] = []
    current: List[Token] = [row[0]]
    for prev, token in zip(row, row[1:]):
        gap = token.bbox.x0 - prev.bbox.x1
        char_width = prev.bbox.width / max(len(prev.word), 1)
        threshold = config.gap_factor * max(char_width, 1.0)
        if gap > threshold or len(current) >= config.max_sentence_tokens:
            sentences.append(Sentence(current, page=current[0].page))
            current = [token]
        else:
            current.append(token)
    sentences.append(Sentence(current, page=current[0].page))
    return sentences
