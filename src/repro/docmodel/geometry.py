"""Bounding-box geometry for document layout.

Coordinates follow the PDF convention used by the paper: ``(x0, y0)`` is the
top-left corner, ``(x1, y1)`` the bottom-right, in page units (points).
Following LayoutLMv2 (and Section IV-A1 of the paper), boxes are normalised
and discretised to integers in ``[0, 1000]`` before embedding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

__all__ = ["BBox", "LAYOUT_SCALE", "normalize_coordinate", "merge_boxes"]

LAYOUT_SCALE = 1000


@dataclass(frozen=True)
class BBox:
    """An axis-aligned bounding box ``(x0, y0, x1, y1)``."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self):
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise ValueError(f"degenerate bbox: {self}")

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        return ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    def union(self, other: "BBox") -> "BBox":
        return BBox(
            min(self.x0, other.x0),
            min(self.y0, other.y0),
            max(self.x1, other.x1),
            max(self.y1, other.y1),
        )

    def intersection_area(self, other: "BBox") -> float:
        w = min(self.x1, other.x1) - max(self.x0, other.x0)
        h = min(self.y1, other.y1) - max(self.y0, other.y0)
        if w <= 0 or h <= 0:
            return 0.0
        return w * h

    def overlaps(self, other: "BBox") -> bool:
        return self.intersection_area(other) > 0

    def normalized(self, page_width: float, page_height: float) -> "BBox":
        """Scale into the ``[0, LAYOUT_SCALE]`` integer grid."""
        return BBox(
            normalize_coordinate(self.x0, page_width),
            normalize_coordinate(self.y0, page_height),
            normalize_coordinate(self.x1, page_width),
            normalize_coordinate(self.y1, page_height),
        )

    def to_tuple(self) -> Tuple[float, float, float, float]:
        return (self.x0, self.y0, self.x1, self.y1)

    def layout_tuple(self) -> Tuple[int, int, int, int, int, int]:
        """The paper's seven-tuple minus the page index:
        ``(x_min, y_min, x_max, y_max, width, height)`` as integers."""
        return (
            int(self.x0),
            int(self.y0),
            int(self.x1),
            int(self.y1),
            int(self.width),
            int(self.height),
        )


def normalize_coordinate(value: float, extent: float) -> int:
    """Discretise one coordinate into ``[0, LAYOUT_SCALE]``."""
    if extent <= 0:
        raise ValueError(f"page extent must be positive: {extent}")
    scaled = int(round(LAYOUT_SCALE * value / extent))
    return max(0, min(LAYOUT_SCALE, scaled))


def merge_boxes(boxes: Iterable[BBox]) -> BBox:
    """Union of a non-empty collection of boxes."""
    boxes = list(boxes)
    if not boxes:
        raise ValueError("cannot merge zero boxes")
    merged = boxes[0]
    for box in boxes[1:]:
        merged = merged.union(box)
    return merged
