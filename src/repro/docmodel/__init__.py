"""``repro.docmodel`` — document geometry, structure and label schemes."""

from .document import Page, ResumeDocument, Sentence, Token
from .geometry import LAYOUT_SCALE, BBox, merge_boxes, normalize_coordinate
from .labels import (
    BLOCK_ENTITIES,
    BLOCK_SCHEME,
    BLOCK_TAGS,
    ENTITY_SCHEME,
    ENTITY_TAGS,
    IobScheme,
    iob_to_spans,
    spans_to_iob,
)
from .segmentation import SegmentationConfig, segment_tokens

__all__ = [
    "BBox",
    "LAYOUT_SCALE",
    "merge_boxes",
    "normalize_coordinate",
    "Token",
    "Sentence",
    "Page",
    "ResumeDocument",
    "BLOCK_TAGS",
    "ENTITY_TAGS",
    "BLOCK_ENTITIES",
    "BLOCK_SCHEME",
    "ENTITY_SCHEME",
    "IobScheme",
    "spans_to_iob",
    "iob_to_spans",
    "SegmentationConfig",
    "segment_tokens",
]
