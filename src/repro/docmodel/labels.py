"""Label schemes: block tags, entity tags, and IOB utilities.

Block tags follow Section III-A of the paper (eight semantic categories);
entity tags follow Table IV (intra-block fine-grained entities).  Both tasks
are sequence labeling with the IOB scheme: ``B-X`` opens tag ``X``, ``I-X``
continues it, and ``O`` marks content outside any tag.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = [
    "BLOCK_TAGS",
    "ENTITY_TAGS",
    "BLOCK_ENTITIES",
    "IobScheme",
    "spans_to_iob",
    "iob_to_spans",
]

#: The eight semantic block categories of Section III-A.
BLOCK_TAGS = (
    "PInfo",
    "EduExp",
    "WorkExp",
    "ProjExp",
    "Summary",
    "Awards",
    "SkillDes",
    "Title",
)

#: The fine-grained entity types of Table IV.
ENTITY_TAGS = (
    "Name",
    "Gender",
    "PhoneNum",
    "Email",
    "Age",
    "College",
    "Major",
    "Degree",
    "Date",
    "Company",
    "Position",
    "ProjName",
)

#: Which entity types Table IV evaluates inside which block.
BLOCK_ENTITIES: Dict[str, Tuple[str, ...]] = {
    "PInfo": ("Name", "Gender", "PhoneNum", "Email", "Age"),
    "EduExp": ("College", "Major", "Degree", "Date"),
    "WorkExp": ("Company", "Position", "Date"),
    "ProjExp": ("ProjName", "Date"),
}


class IobScheme:
    """Bidirectional mapping between IOB label strings and integer ids."""

    def __init__(self, tags: Sequence[str]):
        self.tags = tuple(tags)
        self.labels: List[str] = ["O"]
        for tag in self.tags:
            self.labels.append(f"B-{tag}")
            self.labels.append(f"I-{tag}")
        self._label_to_id = {label: i for i, label in enumerate(self.labels)}

    @property
    def num_labels(self) -> int:
        return len(self.labels)

    @property
    def outside_id(self) -> int:
        return 0

    def label_id(self, label: str) -> int:
        if label not in self._label_to_id:
            raise KeyError(f"unknown IOB label: {label}")
        return self._label_to_id[label]

    def begin_id(self, tag: str) -> int:
        return self.label_id(f"B-{tag}")

    def inside_id(self, tag: str) -> int:
        return self.label_id(f"I-{tag}")

    def id_to_label(self, idx: int) -> str:
        return self.labels[idx]

    def tag_of(self, idx: int) -> str:
        """The bare tag name for a label id ('O' for outside)."""
        label = self.labels[idx]
        return label if label == "O" else label[2:]

    def encode(self, labels: Sequence[str]) -> List[int]:
        return [self.label_id(label) for label in labels]

    def decode(self, ids: Sequence[int]) -> List[str]:
        return [self.id_to_label(i) for i in ids]


#: The default schemes for the two tasks.
BLOCK_SCHEME = IobScheme(BLOCK_TAGS)
ENTITY_SCHEME = IobScheme(ENTITY_TAGS)
__all__ += ["BLOCK_SCHEME", "ENTITY_SCHEME"]


def spans_to_iob(
    length: int, spans: Sequence[Tuple[int, int, str]], scheme: IobScheme
) -> List[int]:
    """Convert half-open ``(start, stop, tag)`` spans to IOB label ids.

    Overlapping spans raise; untagged positions get ``O``.
    """
    labels = [scheme.outside_id] * length
    occupied = [False] * length
    for start, stop, tag in spans:
        if not 0 <= start < stop <= length:
            raise ValueError(f"span out of range: ({start}, {stop}) for {length}")
        if any(occupied[start:stop]):
            raise ValueError(f"overlapping span: ({start}, {stop}, {tag})")
        labels[start] = scheme.begin_id(tag)
        for i in range(start + 1, stop):
            labels[i] = scheme.inside_id(tag)
        for i in range(start, stop):
            occupied[i] = True
    return labels


def iob_to_spans(
    label_ids: Sequence[int], scheme: IobScheme
) -> List[Tuple[int, int, str]]:
    """Extract ``(start, stop, tag)`` spans from IOB label ids.

    Tolerant of ill-formed sequences: an ``I-X`` without a preceding ``B-X``
    or ``I-X`` starts a new span (the common "IOB repair" convention used
    when scoring model output).
    """
    spans: List[Tuple[int, int, str]] = []
    start = None
    current = None
    for i, idx in enumerate(label_ids):
        label = scheme.id_to_label(idx)
        if label == "O":
            if current is not None:
                spans.append((start, i, current))
                start, current = None, None
            continue
        prefix, tag = label[0], label[2:]
        if prefix == "B" or tag != current:
            if current is not None:
                spans.append((start, i, current))
            start, current = i, tag
    if current is not None:
        spans.append((start, len(label_ids), current))
    return spans
