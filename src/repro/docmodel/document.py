"""Document data model: tokens, sentences, pages, resumes.

Mirrors the paper's Section III: a parsed resume is a list of tokens
``(word, bbox, page)`` that get concatenated into "sentences" (rows of
adjacent tokens, not grammatical sentences), each carrying merged layout
coordinates, the page index, and — in the synthetic corpus — gold block and
entity annotations plus style attributes used for visual features.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .geometry import BBox, merge_boxes
from .labels import IobScheme

__all__ = ["Token", "Sentence", "Page", "ResumeDocument"]


@dataclass
class Token:
    """A word with its layout box, page and (optional) gold annotations."""

    word: str
    bbox: BBox
    page: int
    # Style attributes (from the synthetic renderer; a real pipeline would
    # read them from the PDF font dictionary).
    font_size: float = 10.0
    bold: bool = False
    color: int = 0
    # Gold annotations (None/"O" outside the synthetic corpus).
    block_tag: Optional[str] = None
    block_id: Optional[int] = None
    entity_label: str = "O"

    @property
    def center_y(self) -> float:
        return (self.bbox.y0 + self.bbox.y1) / 2.0


@dataclass
class Sentence:
    """A row of adjacent tokens with a merged bounding box (Section III-A)."""

    tokens: List[Token]
    page: int
    visual: Optional[Sequence[float]] = None

    def __post_init__(self):
        if not self.tokens:
            raise ValueError("a sentence needs at least one token")

    @property
    def bbox(self) -> BBox:
        return merge_boxes(token.bbox for token in self.tokens)

    @property
    def text(self) -> str:
        return " ".join(token.word for token in self.tokens)

    @property
    def words(self) -> List[str]:
        return [token.word for token in self.tokens]

    def majority_block(self) -> Tuple[Optional[str], Optional[int]]:
        """The dominant gold ``(block_tag, block_id)`` among the tokens."""
        votes = Counter(
            (t.block_tag, t.block_id) for t in self.tokens if t.block_tag
        )
        if not votes:
            return None, None
        return votes.most_common(1)[0][0]

    @property
    def mean_font_size(self) -> float:
        return sum(t.font_size for t in self.tokens) / len(self.tokens)

    @property
    def bold_fraction(self) -> float:
        return sum(1.0 for t in self.tokens if t.bold) / len(self.tokens)


@dataclass
class Page:
    """Physical page geometry."""

    number: int
    width: float = 612.0  # US Letter points, the generator default
    height: float = 792.0


@dataclass
class ResumeDocument:
    """A parsed resume: pages plus reading-ordered sentences."""

    doc_id: str
    pages: List[Page]
    sentences: List[Sentence] = field(default_factory=list)

    @property
    def num_pages(self) -> int:
        return len(self.pages)

    @property
    def num_sentences(self) -> int:
        return len(self.sentences)

    @property
    def num_tokens(self) -> int:
        return sum(len(s.tokens) for s in self.sentences)

    def tokens(self) -> List[Token]:
        """All tokens in reading order."""
        return [token for sentence in self.sentences for token in sentence.tokens]

    def page(self, number: int) -> Page:
        for page in self.pages:
            if page.number == number:
                return page
        raise KeyError(f"no page {number} in document {self.doc_id}")

    # ------------------------------------------------------------------
    # Gold label extraction (synthetic corpus only)
    # ------------------------------------------------------------------
    def block_iob_labels(self, scheme: IobScheme) -> List[int]:
        """Sentence-level gold IOB ids derived from token block annotations.

        The first sentence of each block instance gets ``B-tag``; subsequent
        sentences of the same instance get ``I-tag``; unannotated sentences
        get ``O``.
        """
        labels: List[int] = []
        previous_id: Optional[int] = None
        for sentence in self.sentences:
            tag, block_id = sentence.majority_block()
            if tag is None:
                labels.append(scheme.outside_id)
                previous_id = None
            elif block_id != previous_id:
                labels.append(scheme.begin_id(tag))
                previous_id = block_id
            else:
                labels.append(scheme.inside_id(tag))
        return labels

    def token_block_tags(self) -> List[Optional[str]]:
        """Token-level gold block tags (for area-metric evaluation)."""
        return [token.block_tag for token in self.tokens()]
