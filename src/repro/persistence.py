"""Persist trained models with their tokenizer and configuration.

Deployment-shaped save/load for the two trained components: the block
classifier (hierarchical encoder + BiLSTM/MLP/CRF head) and the NER tagger.
Each artifact directory holds the vocabulary, a JSON config and an npz
state dict, so a parser can be reconstructed without the training code
path.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import Optional

import numpy as np

from .core.block_classifier import BlockClassifier
from .core.config import ResuFormerConfig
from .core.featurize import Featurizer
from .core.hierarchical import HierarchicalEncoder
from .docmodel.labels import BLOCK_SCHEME, ENTITY_SCHEME
from .ner.model import NerConfig, NerTagger
from .nn.serialization import load_state, save_state
from .pipeline import ResumeParser
from .text.vocab import Vocab
from .text.wordpiece import WordPieceTokenizer

__all__ = [
    "save_block_classifier",
    "load_block_classifier",
    "save_ner_tagger",
    "load_ner_tagger",
    "save_parser",
    "load_parser",
]

_VOCAB_FILE = "vocab.json"
_CONFIG_FILE = "config.json"
_WEIGHTS_FILE = "weights.npz"


def _write_config(directory: str, payload: dict) -> None:
    with open(os.path.join(directory, _CONFIG_FILE), "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)


def _read_config(directory: str) -> dict:
    with open(os.path.join(directory, _CONFIG_FILE), encoding="utf-8") as fh:
        return json.load(fh)


def save_block_classifier(model: BlockClassifier, directory: str) -> None:
    """Persist a block classifier (config + vocab + weights)."""
    os.makedirs(directory, exist_ok=True)
    model.featurizer.tokenizer.vocab.save(os.path.join(directory, _VOCAB_FILE))
    _write_config(
        directory,
        {
            "kind": "block_classifier",
            "model_config": asdict(model.encoder.config),
            "lstm_hidden": model.bilstm.forward_lstm.hidden_dim,
        },
    )
    save_state(model.state_dict(), os.path.join(directory, _WEIGHTS_FILE))


def load_block_classifier(directory: str) -> BlockClassifier:
    """Reconstruct a block classifier saved by :func:`save_block_classifier`."""
    payload = _read_config(directory)
    if payload.get("kind") != "block_classifier":
        raise ValueError(f"{directory} does not hold a block classifier")
    vocab = Vocab.load(os.path.join(directory, _VOCAB_FILE))
    tokenizer = WordPieceTokenizer(vocab)
    config = ResuFormerConfig(**payload["model_config"])
    featurizer = Featurizer(tokenizer, config)
    encoder = HierarchicalEncoder(config, rng=np.random.default_rng(0))
    model = BlockClassifier(
        encoder,
        featurizer,
        scheme=BLOCK_SCHEME,
        lstm_hidden=payload["lstm_hidden"],
        rng=np.random.default_rng(0),
    )
    model.load_state_dict(load_state(os.path.join(directory, _WEIGHTS_FILE)))
    return model


def save_ner_tagger(model: NerTagger, directory: str) -> None:
    """Persist an NER tagger (config + vocab + weights)."""
    os.makedirs(directory, exist_ok=True)
    model.featurizer.tokenizer.vocab.save(os.path.join(directory, _VOCAB_FILE))
    config = model.config
    _write_config(
        directory,
        {
            "kind": "ner_tagger",
            "model_config": {
                "vocab_size": config.vocab_size,
                "hidden_dim": config.hidden_dim,
                "layers": config.layers,
                "heads": config.heads,
                "lstm_hidden": config.lstm_hidden,
                "dropout": config.dropout,
                "max_pieces": config.max_pieces,
                "max_words": config.max_words,
                "ffn_multiplier": config.ffn_multiplier,
            },
        },
    )
    save_state(model.state_dict(), os.path.join(directory, _WEIGHTS_FILE))


def load_ner_tagger(directory: str) -> NerTagger:
    """Reconstruct an NER tagger saved by :func:`save_ner_tagger`."""
    payload = _read_config(directory)
    if payload.get("kind") != "ner_tagger":
        raise ValueError(f"{directory} does not hold an NER tagger")
    vocab = Vocab.load(os.path.join(directory, _VOCAB_FILE))
    tokenizer = WordPieceTokenizer(vocab)
    config = NerConfig(**payload["model_config"])
    model = NerTagger(
        config, tokenizer, scheme=ENTITY_SCHEME, rng=np.random.default_rng(0)
    )
    model.load_state_dict(load_state(os.path.join(directory, _WEIGHTS_FILE)))
    return model


def save_parser(parser: ResumeParser, directory: str) -> None:
    """Persist a full two-stage parser under one directory."""
    save_block_classifier(
        parser.block_classifier, os.path.join(directory, "block_classifier")
    )
    if parser.ner_tagger is not None:
        save_ner_tagger(parser.ner_tagger, os.path.join(directory, "ner_tagger"))


def load_parser(directory: str) -> ResumeParser:
    """Reconstruct a parser saved by :func:`save_parser`."""
    classifier = load_block_classifier(os.path.join(directory, "block_classifier"))
    tagger: Optional[NerTagger] = None
    ner_dir = os.path.join(directory, "ner_tagger")
    if os.path.isdir(ner_dir):
        tagger = load_ner_tagger(ner_dir)
    return ResumeParser(classifier, tagger)
