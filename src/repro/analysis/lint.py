"""Framework-invariant linter for the ``repro.nn`` autograd substrate.

The hand-rolled autograd engine (:mod:`repro.nn.tensor`) makes a handful of
contracts that nothing in Python enforces: graph tensors must not be mutated
in place, backward closures of broadcastable ops must reduce gradients back
to operand shapes, randomness must be injected, inference must not record
graphs.  A violation does not raise — it silently corrupts gradients or
leaks memory.  This module checks those contracts statically.

Run it over the repo::

    python -m repro.analysis.lint src/ tests/ benchmarks/

Rules
-----
RN001  no in-place mutation of ``Tensor.data`` / ``Tensor.grad`` outside
       backward closures, accumulation internals or ``no_grad`` blocks
RN002  backward closures of broadcastable binary ops must route gradients
       through ``_unbroadcast`` (or an explicit reduction)
RN003  no unseeded / legacy / default-argument RNG inside ``src/repro``
RN004  ``predict*`` entry points must run graph-building calls under
       ``no_grad``
RN005  no ``os.environ`` writes outside ``_threads.py`` / ``conftest.py``
RN006  public ``nn`` ops must not wrap graph-derived arrays in raw
       ``Tensor(...)`` constructors (use ``Tensor._make``) unless guarded
       by ``is_grad_enabled``

The concurrency-aware tier (rules RN007–RN012, spawn safety / lock
discipline / queue payloads / telemetry cardinality) lives in
:mod:`repro.analysis.concurrency_lint` and runs by default through the
same driver.  Both tiers share the interprocedural call graph built by
:mod:`repro.analysis.callgraph`, which lets RN004 and the concurrency
rules see through one level of helper indirection instead of being
purely syntactic.

Suppression
-----------
Append ``# repro-lint: disable=RN001`` (comma-separated codes, or ``all``)
to the offending line, or place it alone on the line directly above.  A
trailing justification after the codes is encouraged and ignored by the
parser (``# repro-lint: disable=RN010 -- worker idle loop``).  Every
suppression is expected to carry such a justification.

Reporters: human-readable text (default) and ``--format json``.  Findings
can additionally be diffed against a committed baseline file
(``--baseline analysis/baseline.json``): baselined findings don't fail
the run, so the gate only bites on *new* findings.  Exit code is 0 when
no non-baselined findings survive suppression, 1 otherwise.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .callgraph import CallGraph, build_call_graph, module_name_for

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "default_rules",
    "lint_source",
    "lint_paths",
    "load_baseline",
    "apply_baseline",
    "main",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


# ----------------------------------------------------------------------
# Suppression comments
# ----------------------------------------------------------------------
#: Codes are comma-separated identifiers; anything after them (a trailing
#: justification comment, ``-- reason``, ``(reason)``) is ignored.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


def _suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the set of codes disabled there.

    A directive covers its own line; a directive on a line whose code part
    is blank (a standalone comment) also covers the line below it.
    """
    table: Dict[int, Set[str]] = {}
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        codes = {c.strip().upper() for c in match.group(1).split(",") if c.strip()}
        table.setdefault(number, set()).update(codes)
        if text[: match.start()].strip() == "":
            table.setdefault(number + 1, set()).update(codes)
    return table


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------
def _annotate_parents(tree: ast.AST) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._repro_parent = node  # type: ignore[attr-defined]


def _ancestors(node: ast.AST) -> Iterator[ast.AST]:
    current = getattr(node, "_repro_parent", None)
    while current is not None:
        yield current
        current = getattr(current, "_repro_parent", None)


def _call_name(func: ast.AST) -> Optional[str]:
    """Trailing name of a call target: ``no_grad`` for ``nn.no_grad``."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _under_no_grad(node: ast.AST) -> bool:
    """Whether ``node`` sits inside a ``with no_grad():`` block."""
    for ancestor in _ancestors(node):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call) and _call_name(expr.func) == "no_grad":
                    return True
    return False


def _enclosing_function_names(node: ast.AST) -> List[str]:
    return [
        ancestor.name
        for ancestor in _ancestors(node)
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def _enclosing_class_name(node: ast.AST) -> Optional[str]:
    for ancestor in _ancestors(node):
        if isinstance(ancestor, ast.ClassDef):
            return ancestor.name
    return None


def _subtree_has(node: ast.AST, predicate) -> bool:
    return any(predicate(child) for child in ast.walk(node))


def _mentions_data_attr(node: ast.AST) -> bool:
    return _subtree_has(
        node, lambda n: isinstance(n, ast.Attribute) and n.attr in ("data", "grad")
    )


def _is_data_or_grad_attribute(node: ast.AST) -> bool:
    return isinstance(node, ast.Attribute) and node.attr in ("data", "grad")


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted rendering of an attribute chain (else '')."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class FileContext:
    """Parsed file plus the lookup tables the rules share.

    ``callgraph`` is the interprocedural :class:`CallGraph` over the whole
    linted file set (a single-file graph under :func:`lint_source`); rules
    use it to see through one level of helper indirection.
    """

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        _annotate_parents(self.tree)
        self.suppressed = _suppressions(self.lines)
        normalized = Path(path).as_posix()
        self.in_library = "repro/" in normalized and "/tests/" not in normalized
        self.in_nn = "repro/nn/" in normalized
        self.filename = Path(path).name
        self.module_name = module_name_for(path)
        self.callgraph: Optional[CallGraph] = None

    def is_suppressed(self, line: int, code: str) -> bool:
        codes = self.suppressed.get(line, set())
        return code.upper() in codes or "ALL" in codes


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
class Rule:
    """A pluggable lint rule; subclasses yield findings from a context."""

    code = "RN000"
    title = ""
    rationale = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )


class InPlaceGraphMutation(Rule):
    code = "RN001"
    title = "in-place mutation of Tensor.data / Tensor.grad"
    rationale = (
        "Mutating a tensor that may be referenced by a live autograd graph "
        "silently corrupts the cached activations its backward closures "
        "read.  Mutations are only safe inside backward closures, the "
        "accumulation internals, or an explicit no_grad block."
    )

    #: numpy calls that mutate their first array argument in place.
    MUTATING_NP_CALLS = {
        "add.at",
        "subtract.at",
        "multiply.at",
        "copyto",
        "put",
        "put_along_axis",
        "place",
        "putmask",
        "fill_diagonal",
    }
    #: functions whose body is allowed to mutate (autograd internals and
    #: gradient bookkeeping that runs strictly outside graph recording).
    ALLOWED_FUNCTIONS = {"backward", "_backward", "_accumulate", "zero_grad"}

    def _allowed(self, node: ast.AST) -> bool:
        if _under_no_grad(node):
            return True
        return any(
            name in self.ALLOWED_FUNCTIONS
            for name in _enclosing_function_names(node)
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AugAssign):
                target = node.target
                hit = _is_data_or_grad_attribute(target) or (
                    isinstance(target, ast.Subscript)
                    and _is_data_or_grad_attribute(target.value)
                )
                if hit and not self._allowed(node):
                    yield self.finding(
                        ctx,
                        node,
                        "augmented assignment mutates a graph tensor's "
                        f"`{_dotted(target if not isinstance(target, ast.Subscript) else target.value) or 'data'}` "
                        "in place; wrap in no_grad() or move into a "
                        "backward closure",
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and _is_data_or_grad_attribute(
                        target.value
                    ):
                        if not self._allowed(node):
                            yield self.finding(
                                ctx,
                                node,
                                "fancy assignment writes into a graph "
                                "tensor's buffer in place; wrap in "
                                "no_grad() or copy first",
                            )
            elif isinstance(node, ast.Call):
                name = _dotted(node.func)
                tail = ".".join(name.split(".")[-2:]) if "." in name else name
                if (
                    tail in self.MUTATING_NP_CALLS
                    or name.split(".")[-1] in {"copyto", "fill_diagonal", "putmask", "place", "put"}
                ) and node.args:
                    if _mentions_data_attr(node.args[0]) and not self._allowed(node):
                        yield self.finding(
                            ctx,
                            node,
                            f"mutating numpy call `{name}` targets a graph "
                            "tensor's buffer outside a backward closure / "
                            "no_grad block",
                        )


class MissingUnbroadcast(Rule):
    code = "RN002"
    title = "backward closure bypasses _unbroadcast"
    rationale = (
        "A binary op's backward must reduce the incoming gradient back to "
        "each operand's shape; accumulating a raw or merely elementwise-"
        "scaled `grad` silently mis-shapes gradients whenever numpy "
        "broadcasting widened an operand."
    )

    REDUCTIONS = {"sum", "mean", "squeeze", "reshape", "einsum", "tensordot"}

    def _is_guarded(self, arg: ast.AST) -> bool:
        def guard(n: ast.AST) -> bool:
            if isinstance(n, ast.Call):
                name = _call_name(n.func)
                if name == "_unbroadcast" or name in self.REDUCTIONS:
                    return True
                if _dotted(n.func).endswith("add.at"):
                    return True
            return False

        return _subtree_has(arg, guard)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.FunctionDef) or node.name != "backward":
                continue
            calls = [
                call
                for call in ast.walk(node)
                if isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "_accumulate"
                and call.args
            ]
            receivers = {_dotted(call.func.value) for call in calls}
            if len(receivers) < 2:
                continue  # unary op: output shape equals operand shape
            for call in calls:
                arg = call.args[0]
                raw_passthrough = isinstance(arg, ast.Name) and arg.id == "grad"
                unguarded_binop = (
                    isinstance(arg, ast.BinOp)
                    and _subtree_has(
                        arg, lambda n: isinstance(n, ast.Name) and n.id == "grad"
                    )
                    and not self._is_guarded(arg)
                )
                if raw_passthrough or unguarded_binop:
                    yield self.finding(
                        ctx,
                        call,
                        "gradient accumulated in a multi-operand backward "
                        "closure without _unbroadcast or an explicit "
                        "shape-preserving reduction",
                    )


class UnseededRng(Rule):
    code = "RN003"
    title = "unseeded or legacy RNG in library code"
    rationale = (
        "The batched-training parity tests replay exact RNG streams; any "
        "np.random legacy-global call, unseeded default_rng(), or RNG "
        "constructed in a default argument breaks replay.  Library code "
        "must accept an injected numpy Generator."
    )

    LEGACY_OK = {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64"}
    RANDOM_MODULE_FNS = {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "seed",
        "betavariate",
        "expovariate",
    }

    def _rng_calls(self, root: ast.AST) -> Iterator[ast.Call]:
        for node in ast.walk(root):
            if isinstance(node, ast.Call):
                yield node

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_library:
            return
        for node in self._rng_calls(ctx.tree):
            name = _dotted(node.func)
            if name.startswith("np.random.") or name.startswith("numpy.random."):
                tail = name.split(".")[-1]
                if tail == "default_rng" and not node.args and not node.keywords:
                    yield self.finding(
                        ctx,
                        node,
                        "np.random.default_rng() without a seed is "
                        "irreproducible; pass an explicit seed or accept "
                        "an injected Generator",
                    )
                elif tail not in self.LEGACY_OK:
                    yield self.finding(
                        ctx,
                        node,
                        f"legacy global-state RNG `{name}` in library code; "
                        "use an injected np.random.Generator",
                    )
            elif (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "random"
                and node.func.attr in self.RANDOM_MODULE_FNS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"`random.{node.func.attr}` uses the process-global "
                    "RNG; use an injected np.random.Generator",
                )
        # RNGs in default arguments are evaluated once at def time and
        # shared by every call — seeded or not, they alias state.
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _subtree_has(
                    default,
                    lambda n: isinstance(n, ast.Call)
                    and _call_name(n.func) == "default_rng",
                ):
                    yield self.finding(
                        ctx,
                        default,
                        "RNG constructed in a default argument is shared "
                        "across calls; default to None and construct in "
                        "the body",
                    )


class PredictWithoutNoGrad(Rule):
    code = "RN004"
    title = "predict path builds a graph"
    rationale = (
        "Inference entry points that run forward passes outside no_grad "
        "record autograd history for every batch: memory grows with "
        "traffic and a stray .backward() corrupts parameters mid-serving."
    )

    #: methods that run a graph-building forward pass.
    GRAPH_CALLS = {
        "emissions",
        "emissions_batch",
        "logits",
        "word_states",
        "_states",
        "boundary_logits",
        "encode_batch",
        "encode_batch_pretrain",
        "forward",
    }

    def _is_graph_call(self, call: ast.Call) -> bool:
        return (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in self.GRAPH_CALLS
        )

    def _helper_builds_graph(self, ctx: FileContext, call: ast.Call) -> bool:
        """Whether ``call`` resolves to a helper that runs an unguarded
        graph-building call in its own body (one indirection level)."""
        if ctx.callgraph is None:
            return False
        target = ctx.callgraph.resolve(
            call, ctx.module_name, _enclosing_class_name(call)
        )
        if target is None or target.node is call:
            return False
        # Helpers that guard internally (e.g. predict_batch) are safe to
        # call from anywhere; only unguarded graph calls propagate.
        hit = ctx.callgraph.calls_matching(
            target,
            lambda inner, _graph: self._is_graph_call(inner)
            and not _under_no_grad(inner),
            max_depth=0,
        )
        return hit is not None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if not node.name.startswith("predict"):
                continue
            for call in ast.walk(node):
                if not isinstance(call, ast.Call) or _under_no_grad(call):
                    continue
                if self._is_graph_call(call):
                    yield self.finding(
                        ctx,
                        call,
                        f"`{node.name}` calls graph-building "
                        f"`{call.func.attr}` outside a no_grad() block",
                    )
                elif self._helper_builds_graph(ctx, call):
                    name = _call_name(call.func) or "<helper>"
                    yield self.finding(
                        ctx,
                        call,
                        f"`{node.name}` calls `{name}`, which runs a "
                        "graph-building call without no_grad(); guard the "
                        "call site or the helper",
                    )


class EnvWriteOutsideThreads(Rule):
    code = "RN005"
    title = "os.environ write outside _threads.py"
    rationale = (
        "Thread-count environment variables only act before numpy loads; "
        "scattered os.environ writes race the import order and silently "
        "do nothing.  All environment policy lives in repro._threads "
        "(with conftest.py as the documented test-session fallback)."
    )

    ALLOWED_FILES = {"_threads.py", "conftest.py"}
    WRITE_METHODS = {"setdefault", "update", "pop", "clear", "popitem"}

    def _is_environ(self, node: ast.AST) -> bool:
        return _dotted(node) in ("os.environ", "environ")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.filename in self.ALLOWED_FILES:
            return
        for node in ast.walk(ctx.tree):
            flagged = False
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                flagged = any(
                    isinstance(t, ast.Subscript) and self._is_environ(t.value)
                    for t in targets
                )
            elif isinstance(node, ast.Delete):
                flagged = any(
                    isinstance(t, ast.Subscript) and self._is_environ(t.value)
                    for t in node.targets
                )
            elif isinstance(node, ast.Call):
                func = node.func
                flagged = (
                    isinstance(func, ast.Attribute)
                    and func.attr in self.WRITE_METHODS
                    and self._is_environ(func.value)
                ) or _dotted(func) in ("os.putenv", "os.unsetenv")
            if flagged:
                yield self.finding(
                    ctx,
                    node,
                    "environment mutated outside repro._threads / "
                    "conftest.py; route thread policy through "
                    "limit_blas_threads",
                )


class RawTensorInNnOp(Rule):
    code = "RN006"
    title = "raw Tensor() wraps graph-derived data in an nn op"
    rationale = (
        "Constructing `Tensor(x.data ...)` inside a public nn op severs "
        "the result from the graph and drops requires_grad propagation; "
        "children must be created through `Tensor._make` (or guarded by "
        "`is_grad_enabled` on a dedicated inference path)."
    )

    def _grad_guarded(self, node: ast.AST) -> bool:
        for ancestor in _ancestors(node):
            if isinstance(ancestor, ast.If) and _subtree_has(
                ancestor.test,
                lambda n: (isinstance(n, ast.Name) and n.id == "is_grad_enabled")
                or (isinstance(n, ast.Attribute) and n.attr == "is_grad_enabled"),
            ):
                return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_nn:
            return
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "Tensor"
                and node.args
            ):
                continue
            names = _enclosing_function_names(node)
            if not names or names[0].startswith("_") or names[0] == "backward":
                continue
            if not _mentions_data_attr(node.args[0]):
                continue
            if self._grad_guarded(node) or _under_no_grad(node):
                continue
            yield self.finding(
                ctx,
                node,
                f"public op `{names[0]}` wraps graph-derived data in a raw "
                "Tensor(); route through Tensor._make or guard with "
                "is_grad_enabled",
            )


RULES: List[Rule] = [
    InPlaceGraphMutation(),
    MissingUnbroadcast(),
    UnseededRng(),
    PredictWithoutNoGrad(),
    EnvWriteOutsideThreads(),
    RawTensorInNnOp(),
]


def default_rules() -> List[Rule]:
    """The full default rule set: RN001–RN006 plus the concurrency tier.

    Imported lazily so :mod:`repro.analysis.lint` and
    :mod:`repro.analysis.concurrency_lint` stay importable in either
    order (the concurrency rules subclass :class:`Rule`).
    """
    from .concurrency_lint import CONCURRENCY_RULES

    return [*RULES, *CONCURRENCY_RULES]


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def _check_context(
    ctx: FileContext, rules: Sequence[Rule]
) -> List[Finding]:
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check(ctx):
            if not ctx.is_suppressed(finding.line, finding.code):
                findings.append(finding)
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code))


def lint_source(
    source: str, path: str = "<string>", rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Lint one source string; returns surviving (unsuppressed) findings."""
    ctx = FileContext(path, source)
    ctx.callgraph = build_call_graph([(path, ctx.tree)])
    return _check_context(ctx, rules if rules is not None else default_rules())


def _iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        candidates = (
            sorted(path.rglob("*.py")) if path.is_dir() else [path]
        )
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen and candidate.suffix == ".py":
                seen.add(resolved)
                yield candidate


def lint_paths(
    paths: Iterable[str], rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Lint every ``*.py`` file under ``paths`` (files or directories).

    All parseable files are indexed into one interprocedural call graph
    before any rule runs, so cross-file helper resolution covers the
    whole linted set.
    """
    findings: List[Finding] = []
    contexts: List[FileContext] = []
    for file_path in _iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            findings.append(
                Finding(str(file_path), 1, 1, "RN000", f"unreadable file: {error}")
            )
            continue
        try:
            contexts.append(FileContext(str(file_path), source))
        except SyntaxError as error:
            findings.append(
                Finding(
                    str(file_path),
                    error.lineno or 1,
                    (error.offset or 0) + 1,
                    "RN000",
                    f"syntax error: {error.msg}",
                )
            )
    graph = build_call_graph([(ctx.path, ctx.tree) for ctx in contexts])
    active = rules if rules is not None else default_rules()
    for ctx in contexts:
        ctx.callgraph = graph
        findings.extend(_check_context(ctx, active))
    return findings


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def _fingerprint(finding: Finding) -> Tuple[str, str, str]:
    """Line-number-free identity of a finding (stable across edits)."""
    return (Path(finding.path).as_posix(), finding.code, finding.message)


def load_baseline(path: str) -> List[Tuple[str, str, str]]:
    """Parse a baseline file into finding fingerprints.

    The file is the JSON written by ``--write-baseline``:
    ``{"version": 1, "findings": [{"path", "code", "message"}, ...]}``.
    A missing file is an empty baseline (the gate runs at full strength).
    """
    baseline_path = Path(path)
    if not baseline_path.exists():
        return []
    payload = json.loads(baseline_path.read_text(encoding="utf-8"))
    return [
        (Path(entry["path"]).as_posix(), entry["code"], entry["message"])
        for entry in payload.get("findings", [])
    ]


def apply_baseline(
    findings: Sequence[Finding], baseline: Sequence[Tuple[str, str, str]]
) -> Tuple[List[Finding], int]:
    """Split findings into (new, baselined-count).

    Each baseline entry absorbs at most as many findings as it occurs in
    the baseline — a *new* duplicate of a baselined finding still fails.
    """
    budget: Dict[Tuple[str, str, str], int] = {}
    for fingerprint in baseline:
        budget[fingerprint] = budget.get(fingerprint, 0) + 1
    fresh: List[Finding] = []
    matched = 0
    for finding in findings:
        fingerprint = _fingerprint(finding)
        if budget.get(fingerprint, 0) > 0:
            budget[fingerprint] -= 1
            matched += 1
        else:
            fresh.append(finding)
    return fresh, matched


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Write ``findings`` as the committed suppression baseline."""
    payload = {
        "version": 1,
        "findings": [
            {"path": Path(f.path).as_posix(), "code": f.code, "message": f.message}
            for f in sorted(findings, key=_fingerprint)
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def _render_text(findings: Sequence[Finding]) -> str:
    lines = [finding.render() for finding in findings]
    lines.append(
        f"{len(findings)} finding(s)" if findings else "clean: no findings"
    )
    return "\n".join(lines)


def _render_json(findings: Sequence[Finding], baselined: Optional[int] = None) -> str:
    payload: Dict[str, object] = {
        "findings": [asdict(finding) for finding in findings],
        "count": len(findings),
    }
    if baselined is not None:
        payload["baselined"] = baselined
    return json.dumps(payload, indent=2)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Framework-invariant linter for the repro.nn substrate.",
    )
    parser.add_argument("paths", nargs="*", default=["src/"], help="files or dirs")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="JSON baseline of accepted findings; only new findings fail",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write current findings to FILE as the new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.code}  {rule.title}")
            print(f"       {rule.rationale}")
        return 0

    findings = lint_paths(args.paths)
    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        print(f"baseline written: {len(findings)} finding(s) -> {args.write_baseline}")
        return 0
    baselined: Optional[int] = None
    if args.baseline:
        findings, baselined = apply_baseline(findings, load_baseline(args.baseline))
    if args.format == "json":
        print(_render_json(findings, baselined))
    else:
        print(_render_text(findings))
        if baselined:
            print(f"({baselined} baselined finding(s) not counted)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
