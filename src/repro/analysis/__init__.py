"""Correctness tooling for the hand-rolled autograd substrate.

Three layers of defence against silent invariant violations in
:mod:`repro.nn` and its clients:

* :mod:`repro.analysis.lint` — an AST-based, repo-specific linter
  (``python -m repro.analysis.lint src/ tests/ benchmarks/``) enforcing
  the framework's static contracts: single-process autograd idioms
  (RN001–RN006) and the concurrency tier of
  :mod:`repro.analysis.concurrency_lint` (RN007–RN012, spawn safety,
  lock discipline, queue payloads, label cardinality), sharpened by the
  interprocedural call graph of :mod:`repro.analysis.callgraph`.
* :mod:`repro.analysis.lock_audit` — a runtime lock-order sanitizer
  ("tsan-lite"): instrumented lock factories, per-thread acquisition
  stacks, lock-order-cycle / long-hold / critical-hold reports
  (``python -m repro.analysis.lock_audit tests/obs tests/parallel``).
* :mod:`repro.analysis.gradcheck` — central-difference numerical gradient
  checking plus a sweep harness that auto-discovers every differentiable
  op in the substrate and checks it at broadcasting, zero-size and
  length-masked shapes (``python -m repro.analysis.gradcheck``).
* :mod:`repro.analysis.graph_audit` — dynamic graph-integrity checks
  (dead parameters, stale gradients, NaN/Inf anomaly mode, cross-step
  leak detection) usable as a context manager around a training step.

Submodules are loaded lazily: the linter is pure-stdlib and must stay
importable (and fast) without pulling numpy in, e.g. in the CI lint job.
"""

from __future__ import annotations

import importlib

_EXPORTS = {
    "Finding": "lint",
    "lint_paths": "lint",
    "lint_source": "lint",
    "default_rules": "lint",
    "load_baseline": "lint",
    "apply_baseline": "lint",
    "CallGraph": "callgraph",
    "build_call_graph": "callgraph",
    "CONCURRENCY_RULES": "concurrency_lint",
    "LockAudit": "lock_audit",
    "InstrumentedLock": "lock_audit",
    "audit_locks": "lock_audit",
    "GradcheckFailure": "gradcheck",
    "GradcheckResult": "gradcheck",
    "gradcheck": "gradcheck",
    "run_sweep": "gradcheck",
    "GraphAudit": "graph_audit",
    "GraphAuditError": "graph_audit",
    "graph_audit": "graph_audit",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module = importlib.import_module(f".{module_name}", __name__)
    return getattr(module, name)
