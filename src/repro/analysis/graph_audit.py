"""Dynamic graph-integrity auditing for training steps.

Wrap a training step to catch the silent failure modes of the autograd
substrate at runtime:

* **dead parameters** — parameters with ``requires_grad`` that are not
  reachable from the loss (a detached path, a forgotten module);
* **stale gradients** — ``.grad`` already accumulated on *non-leaf*
  graph nodes before backward, the signature of a reused subgraph or a
  double backward;
* **anomaly mode** — NaN/Inf gradients after backward, attributed to the
  op whose backward closure produced them;
* **leak detection** — graph nodes from a previous step still alive when
  the next step starts, observed through weak references (the same
  weakref-guard idiom as the featurization caches), i.e. a reference
  cycle or a stray strong reference retaining whole graphs.

Usage, persistent across steps (enables leak detection)::

    audit = GraphAudit(model)
    for batch in batches:
        with audit.step():
            loss = compute_loss(model, batch)
            audit.watch(loss)
            loss.backward()
            optimizer.step(); optimizer.zero_grad()

or one-shot around a single step::

    with graph_audit(model) as audit:
        loss = compute_loss(model, batch)
        audit.watch(loss)
        loss.backward()
"""

from __future__ import annotations

import contextlib
import weakref
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from .. import obs
from ..nn.tensor import Tensor

__all__ = ["GraphAudit", "GraphAuditError", "graph_audit"]


def _count_finding(kind: str, amount: int = 1) -> None:
    """Publish one audit finding to the active telemetry session.

    Findings are counted *before* the corresponding :class:`GraphAuditError`
    is raised, so run logs record what the auditor saw even when the step
    aborts.
    """
    telemetry = obs.get_telemetry()
    if telemetry is not None:
        telemetry.metrics.counter("graph_audit.findings").inc(amount, kind=kind)


class GraphAuditError(RuntimeError):
    """A graph-integrity invariant was violated during a training step."""


def _op_name(node: Tensor) -> str:
    """Human-readable op name from a node's backward closure."""
    backward = node._backward
    if backward is None:
        return "leaf"
    qualname = getattr(backward, "__qualname__", "")
    parts = qualname.split(".")
    # Closures are named like ``Tensor.__mul__.<locals>.backward`` or
    # ``_fused_log_partition.<locals>.backward`` — the op is the segment
    # before ``<locals>``.
    if len(parts) >= 3 and parts[-2] == "<locals>":
        return parts[-3]
    return qualname or "<unknown op>"


def _reachable(loss: Tensor) -> Dict[int, Tensor]:
    """All graph nodes reachable from ``loss`` through parent edges."""
    nodes: Dict[int, Tensor] = {}
    stack: List[Tensor] = [loss]
    while stack:
        node = stack.pop()
        if id(node) in nodes:
            continue
        nodes[id(node)] = node
        stack.extend(node._parents)
    return nodes


ParameterSource = Union[None, Iterable, object]


def _named_parameters(parameters: ParameterSource) -> List[Tuple[str, Tensor]]:
    if parameters is None:
        return []
    named = getattr(parameters, "named_parameters", None)
    if callable(named):
        return list(named())
    result: List[Tuple[str, Tensor]] = []
    for i, entry in enumerate(parameters):
        if isinstance(entry, Tensor):
            result.append((f"param[{i}]", entry))
        else:
            name, tensor = entry
            result.append((str(name), tensor))
    return result


class GraphAudit:
    """Audits training steps for graph-integrity violations.

    ``parameters`` may be a module (anything with ``named_parameters()``),
    an iterable of ``(name, Tensor)`` pairs, an iterable of tensors, or
    None (disables the dead-parameter check).  Keep one instance across
    steps: leak detection compares each step's graph against weak
    references recorded at the end of the previous one.
    """

    def __init__(
        self,
        parameters: ParameterSource = None,
        *,
        check_dead_params: bool = True,
        check_stale_grads: bool = True,
        check_leaks: bool = True,
        anomaly: bool = True,
    ):
        self._parameters = _named_parameters(parameters)
        self.check_dead_params = check_dead_params and bool(self._parameters)
        self.check_stale_grads = check_stale_grads
        self.check_leaks = check_leaks
        self.anomaly = anomaly
        self._watched: Dict[int, Tensor] = {}
        self._previous: List[Tuple[weakref.ref, str]] = []

    # ------------------------------------------------------------------
    def watch(self, loss: Tensor) -> Tensor:
        """Inspect the graph under ``loss`` before backward.

        Raises :class:`GraphAuditError` on dead parameters, stale
        non-leaf gradients, or nodes leaked from the previous step.
        Returns ``loss`` unchanged so it can wrap the loss expression.
        """
        nodes = _reachable(loss)
        telemetry = obs.get_telemetry()
        if telemetry is not None:
            telemetry.metrics.counter("graph_audit.watches").inc()
            telemetry.metrics.gauge("graph_audit.graph_nodes").set(len(nodes))

        if self.check_leaks and self._previous:
            leaked = sorted(
                {
                    name
                    for ref, name in self._previous
                    if ref() is not None and id(ref()) not in nodes
                }
            )
            self._previous = []
            if leaked:
                _count_finding("leaked_nodes", len(leaked))
                raise GraphAuditError(
                    "graph nodes from the previous step are still alive "
                    f"(ops: {', '.join(leaked)}); a stray reference or "
                    "cycle is retaining old computation graphs"
                )
        else:
            self._previous = []

        if self.check_dead_params:
            dead = [
                name
                for name, parameter in self._parameters
                if parameter.requires_grad and id(parameter) not in nodes
            ]
            if dead:
                _count_finding("dead_params", len(dead))
                raise GraphAuditError(
                    f"parameter(s) unreachable from the loss: {', '.join(dead)}; "
                    "they will receive no gradient this step"
                )

        if self.check_stale_grads:
            stale = sorted(
                {
                    _op_name(node)
                    for node in nodes.values()
                    if node._backward is not None and node.grad is not None
                }
            )
            if stale:
                _count_finding("stale_grads", len(stale))
                raise GraphAuditError(
                    "non-leaf node(s) already carry .grad before backward "
                    f"(ops: {', '.join(stale)}); the graph was reused or "
                    "backward ran twice"
                )

        self._watched = nodes
        return loss

    def finish(self) -> None:
        """Post-backward checks; called automatically by :meth:`step`."""
        nodes, self._watched = self._watched, {}

        refs: List[Tuple[weakref.ref, str]] = []
        if self.check_leaks:
            for node in nodes.values():
                if node._backward is not None:
                    refs.append((weakref.ref(node), _op_name(node)))
        self._previous = refs

        if self.anomaly:
            # Blame the backward closure that *wrote* the bad value: the
            # ops of the children that accumulated into the node (falling
            # back to the node's own op for the seed of the backward pass).
            children: Dict[int, List[Tensor]] = {}
            for node in nodes.values():
                for parent in node._parents:
                    children.setdefault(id(parent), []).append(node)
            bad = set()
            for node in nodes.values():
                if node.grad is None or np.all(np.isfinite(node.grad)):
                    continue
                writers = children.get(id(node))
                if writers:
                    bad.update(_op_name(writer) for writer in writers)
                else:
                    bad.add(_op_name(node))
            if bad:
                _count_finding("anomalies", len(bad))
                raise GraphAuditError(
                    f"non-finite gradient(s) produced by: {', '.join(sorted(bad))}"
                )

    def assert_released(self) -> None:
        """Fail if any node recorded at the last :meth:`finish` survives."""
        leaked = sorted(
            {name for ref, name in self._previous if ref() is not None}
        )
        if leaked:
            _count_finding("leaked_nodes", len(leaked))
            raise GraphAuditError(
                f"graph nodes still alive after the step (ops: {', '.join(leaked)})"
            )

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def step(self):
        """Context manager around one training step.

        Call :meth:`watch` on the loss inside the block; the post-backward
        anomaly scan and leak bookkeeping run on exit.
        """
        try:
            yield self
        except BaseException:
            self._watched = {}
            raise
        else:
            self.finish()


@contextlib.contextmanager
def graph_audit(parameters: ParameterSource = None, **options):
    """One-shot :class:`GraphAudit` around a single training step."""
    audit = GraphAudit(parameters, **options)
    with audit.step():
        yield audit
