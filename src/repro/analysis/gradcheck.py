"""Central-difference numerical gradient checking for the nn substrate.

:func:`gradcheck` verifies the analytic gradients of any callable mapping
:class:`~repro.nn.tensor.Tensor` inputs (plus module parameters) to a
tensor output against float64 central differences, ``(f(x+eps) -
f(x-eps)) / 2 eps``.  Non-scalar outputs are scalarised through a fixed
seeded random projection so every output element constrains the check.

:func:`run_sweep` auto-discovers every differentiable op exported by
``nn/functional.py``, ``nn/layers.py``, ``nn/attention.py``,
``nn/recurrent.py`` and ``nn/crf.py`` and checks each against the
registered spec — broadcasting, zero-size and length-masked shapes
included.  An exported op *without* a spec fails the sweep, so new ops
cannot silently skip gradient verification.

Run it::

    python -m repro.analysis.gradcheck            # full sweep
    python -m repro.analysis.gradcheck --ops softmax Lstm
"""

from __future__ import annotations

import argparse
import importlib
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.tensor import Tensor, no_grad

__all__ = [
    "GradcheckFailure",
    "GradcheckResult",
    "gradcheck",
    "discover_ops",
    "run_sweep",
    "SPECS",
    "main",
]

#: Hard ceiling on tolerances — the CI gate requires every op to pass at
#: tolerance <= 1e-4 in float64, so no spec may loosen beyond this.
MAX_TOLERANCE = 1e-4

#: Seed for the scalarising projection; fixed so analytic and numeric
#: passes weight output elements identically.
_PROJECTION_SEED = 20230417

#: The modules whose public exports the sweep must cover.
SWEPT_MODULES = (
    "repro.nn.functional",
    "repro.nn.layers",
    "repro.nn.attention",
    "repro.nn.recurrent",
    "repro.nn.crf",
    "repro.nn.quantize",
)


@dataclass(frozen=True)
class GradcheckFailure:
    """One element whose analytic and numeric gradients disagree."""

    tensor: str
    index: Tuple[int, ...]
    analytic: float
    numeric: float
    abs_err: float


@dataclass
class GradcheckResult:
    """Outcome of checking one callable (or one sweep case)."""

    name: str
    ok: bool
    checked: int = 0
    max_abs_err: float = 0.0
    failures: List[GradcheckFailure] = field(default_factory=list)
    error: Optional[str] = None

    def render(self) -> str:
        if self.error is not None:
            return f"FAIL {self.name}: {self.error}"
        status = "ok  " if self.ok else "FAIL"
        line = (
            f"{status} {self.name}: {self.checked} element(s), "
            f"max |analytic - numeric| = {self.max_abs_err:.3e}"
        )
        for failure in self.failures[:5]:
            line += (
                f"\n     {failure.tensor}{list(failure.index)}: "
                f"analytic={failure.analytic:.6e} "
                f"numeric={failure.numeric:.6e} "
                f"abs_err={failure.abs_err:.3e}"
            )
        if len(self.failures) > 5:
            line += f"\n     ... and {len(self.failures) - 5} more"
        return line


def _projection(shape: Tuple[int, ...]) -> np.ndarray:
    return np.random.default_rng(_PROJECTION_SEED).standard_normal(shape)


def _forward_scalar(
    fn: Callable[..., Tensor], inputs: Sequence[Tensor], proj: np.ndarray
) -> float:
    out = fn(*inputs)
    return float((np.asarray(out.data, dtype=np.float64) * proj).sum())


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    params: Sequence[Tensor] = (),
    *,
    eps: float = 1e-6,
    atol: float = 1e-6,
    rtol: float = 1e-4,
    name: str = "fn",
) -> GradcheckResult:
    """Check ``fn``'s analytic gradients against central differences.

    ``inputs`` are differentiable positional arguments (``requires_grad``
    is forced on); ``params`` are additional leaves ``fn`` closes over
    (module parameters).  Each element of every leaf is perturbed by
    ``+/- eps`` in place under ``no_grad`` (and restored), so ``fn`` must
    be deterministic — inject fixed RNGs for stochastic modules.

    An element fails when ``|analytic - numeric| > atol + rtol *
    max(|analytic|, |numeric|)``.  Tolerances are capped at
    ``MAX_TOLERANCE`` (1e-4); asking for looser is an error.
    """
    if atol > MAX_TOLERANCE or rtol > MAX_TOLERANCE:
        raise ValueError(
            f"tolerances capped at {MAX_TOLERANCE}: atol={atol}, rtol={rtol}"
        )
    inputs = tuple(inputs)
    params = tuple(params)
    leaves: List[Tuple[str, Tensor]] = [
        (f"input[{i}]", tensor) for i, tensor in enumerate(inputs)
    ] + [(f"param[{i}]", tensor) for i, tensor in enumerate(params)]

    for _, leaf in leaves:
        leaf.requires_grad = True
        leaf.zero_grad()

    out = fn(*inputs)
    proj = _projection(out.data.shape)
    loss = (out * Tensor(proj)).sum()
    loss.backward()
    analytic = [
        np.array(leaf.grad) if leaf.grad is not None else np.zeros_like(leaf.data)
        for _, leaf in leaves
    ]

    result = GradcheckResult(name=name, ok=True)
    for (label, leaf), grad in zip(leaves, analytic):
        numeric = np.zeros_like(leaf.data)
        for index in np.ndindex(leaf.data.shape):
            original = leaf.data[index]
            with no_grad():
                leaf.data[index] = original + eps
                f_plus = _forward_scalar(fn, inputs, proj)
                leaf.data[index] = original - eps
                f_minus = _forward_scalar(fn, inputs, proj)
                leaf.data[index] = original
            numeric[index] = (f_plus - f_minus) / (2.0 * eps)
        for index in np.ndindex(leaf.data.shape):
            a = float(grad[index])
            n = float(numeric[index])
            abs_err = abs(a - n)
            result.checked += 1
            result.max_abs_err = max(result.max_abs_err, abs_err)
            if abs_err > atol + rtol * max(abs(a), abs(n)):
                result.ok = False
                result.failures.append(
                    GradcheckFailure(
                        tensor=label,
                        index=index,
                        analytic=a,
                        numeric=n,
                        abs_err=abs_err,
                    )
                )
    return result


# ----------------------------------------------------------------------
# Sweep harness
# ----------------------------------------------------------------------
#: Exports that are intentionally not gradchecked, with the justification
#: printed by ``--list``.  Only forward-only inference machinery belongs
#: here — every differentiable op must carry a spec.
NON_DIFFERENTIABLE: Dict[str, str] = {
    "softmax_ndarray": "forward-only ndarray kernel (no autograd surface)",
    "gelu_ndarray": "forward-only ndarray kernel (no autograd surface)",
    "QuantizedLinear": "inference-only int8 layer; raises under grad",
    "quantize_model": "structural transform, not an op",
    "dequantize": "structural transform, not an op",
    "calibration": "context manager toggling calibration state",
    "set_fused_inference": "flag toggle on encoder modules",
    "quantization_report": "telemetry summary, not an op",
}

CaseBuilder = Callable[[], dict]
#: op name -> list of (case label, builder).  A builder returns a dict
#: with keys ``fn``, ``inputs`` and optionally ``params``, ``eps``,
#: ``atol``, ``rtol``.
SPECS: Dict[str, List[Tuple[str, CaseBuilder]]] = {}


def spec(name: str, label: str):
    def register(builder: CaseBuilder) -> CaseBuilder:
        SPECS.setdefault(name, []).append((label, builder))
        return builder

    return register


def _rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


def _tensor(rng: np.random.Generator, *shape: int) -> Tensor:
    return Tensor(rng.standard_normal(shape), requires_grad=True)


def _params(module) -> List[Tensor]:
    return [parameter for _, parameter in module.named_parameters()]


class _ConstantRng:
    """Deterministic stand-in for ``np.random.Generator.random``.

    Dropout draws a fresh mask per forward call; central differences need
    the *same* mask on every evaluation, so this replays one fixed draw.
    """

    def __init__(self, shape: Tuple[int, ...], seed: int = 7):
        self._values = np.random.default_rng(seed).random(shape)

    def random(self, shape: Tuple[int, ...]) -> np.ndarray:
        if tuple(shape) != self._values.shape:
            raise ValueError(f"fixed rng built for {self._values.shape}, got {shape}")
        return self._values


# -- functional --------------------------------------------------------
def _register_functional() -> None:
    from ..nn import functional as F

    @spec("softmax", "basic (2,3)")
    def _():
        return {"fn": F.softmax, "inputs": [_tensor(_rng(1), 2, 3)]}

    @spec("softmax", "zero-size batch (0,3)")
    def _():
        return {"fn": F.softmax, "inputs": [_tensor(_rng(2), 0, 3)]}

    @spec("softmax", "axis=0 (3,2)")
    def _():
        return {
            "fn": lambda x: F.softmax(x, axis=0),
            "inputs": [_tensor(_rng(3), 3, 2)],
        }

    @spec("log_softmax", "basic (2,4)")
    def _():
        return {"fn": F.log_softmax, "inputs": [_tensor(_rng(4), 2, 4)]}

    @spec("log_softmax", "zero-size batch (0,4)")
    def _():
        return {"fn": F.log_softmax, "inputs": [_tensor(_rng(5), 0, 4)]}

    @spec("logsumexp", "basic (2,3)")
    def _():
        return {"fn": F.logsumexp, "inputs": [_tensor(_rng(6), 2, 3)]}

    @spec("logsumexp", "keepdims (2,3)")
    def _():
        return {
            "fn": lambda x: F.logsumexp(x, keepdims=True),
            "inputs": [_tensor(_rng(7), 2, 3)],
        }

    @spec("logsumexp", "axis=0 (3,2)")
    def _():
        return {
            "fn": lambda x: F.logsumexp(x, axis=0),
            "inputs": [_tensor(_rng(8), 3, 2)],
        }

    @spec("nll_loss", "basic (3,4)")
    def _():
        targets = np.array([0, 3, 1])
        return {
            "fn": lambda lp: F.nll_loss(lp, targets),
            "inputs": [_tensor(_rng(9), 3, 4)],
        }

    @spec("nll_loss", "length-masked (2,3,4)")
    def _():
        targets = np.array([[0, 1, 2], [3, 0, 1]])
        mask = np.array([[1, 1, 1], [1, 0, 0]], dtype=np.float64)
        return {
            "fn": lambda lp: F.nll_loss(lp, targets, mask=mask),
            "inputs": [_tensor(_rng(10), 2, 3, 4)],
        }

    @spec("cross_entropy", "basic (3,4)")
    def _():
        targets = np.array([2, 0, 3])
        return {
            "fn": lambda logits: F.cross_entropy(logits, targets),
            "inputs": [_tensor(_rng(11), 3, 4)],
        }

    @spec("cross_entropy", "length-masked (2,3,5)")
    def _():
        targets = np.array([[1, 2, 4], [0, 3, 0]])
        mask = np.array([[1, 1, 1], [1, 1, 0]], dtype=np.float64)
        return {
            "fn": lambda logits: F.cross_entropy(logits, targets, mask=mask),
            "inputs": [_tensor(_rng(12), 2, 3, 5)],
        }

    @spec("kl_div_loss", "basic (2,4)")
    def _():
        rng = _rng(13)
        soft = rng.random((2, 4))
        soft /= soft.sum(axis=-1, keepdims=True)
        return {
            "fn": lambda logits: F.kl_div_loss(logits, soft),
            "inputs": [_tensor(rng, 2, 4)],
        }

    @spec("kl_div_loss", "length-masked (2,3,4)")
    def _():
        rng = _rng(14)
        soft = rng.random((2, 3, 4))
        soft /= soft.sum(axis=-1, keepdims=True)
        mask = np.array([[1, 1, 0], [1, 0, 0]], dtype=np.float64)
        return {
            "fn": lambda logits: F.kl_div_loss(logits, soft, mask=mask),
            "inputs": [_tensor(rng, 2, 3, 4)],
        }

    @spec("mse_loss", "basic (2,3)")
    def _():
        rng = _rng(15)
        target = rng.standard_normal((2, 3))
        return {
            "fn": lambda p: F.mse_loss(p, target),
            "inputs": [_tensor(rng, 2, 3)],
        }

    @spec("mse_loss", "broadcast (3,) vs (2,3)")
    def _():
        rng = _rng(16)
        target = rng.standard_normal((2, 3))
        return {
            "fn": lambda p: F.mse_loss(p, target),
            "inputs": [_tensor(rng, 3)],
        }

    @spec("gelu", "basic (2,3)")
    def _():
        return {"fn": F.gelu, "inputs": [_tensor(_rng(17), 2, 3)]}

    @spec("gelu", "zero-size (0,)")
    def _():
        return {"fn": F.gelu, "inputs": [_tensor(_rng(18), 0)]}

    @spec("l2_normalize", "basic (2,3)")
    def _():
        return {"fn": F.l2_normalize, "inputs": [_tensor(_rng(19), 2, 3)]}

    @spec("l2_normalize", "axis=0 (3,2)")
    def _():
        return {
            "fn": lambda x: F.l2_normalize(x, axis=0),
            "inputs": [_tensor(_rng(20), 3, 2)],
        }

    @spec("masked_fill", "finite fill value (2,3)")
    def _():
        mask = np.array([[True, False, True], [False, False, True]])
        return {
            "fn": lambda x: F.masked_fill(x, mask, value=-2.0),
            "inputs": [_tensor(_rng(21), 2, 3)],
        }


# -- layers ------------------------------------------------------------
def _register_layers() -> None:
    from ..nn.layers import Dropout, Embedding, LayerNorm, Linear, Mlp

    @spec("Linear", "with bias (2,3)->(2,2)")
    def _():
        layer = Linear(3, 2, rng=_rng(30))
        return {"fn": layer, "inputs": [_tensor(_rng(31), 2, 3)], "params": _params(layer)}

    @spec("Linear", "no bias")
    def _():
        layer = Linear(3, 2, bias=False, rng=_rng(32))
        return {"fn": layer, "inputs": [_tensor(_rng(33), 2, 3)], "params": _params(layer)}

    @spec("Linear", "zero-size batch (0,3)")
    def _():
        layer = Linear(3, 2, rng=_rng(34))
        return {"fn": layer, "inputs": [_tensor(_rng(35), 0, 3)], "params": _params(layer)}

    @spec("Embedding", "repeated ids (scatter-add path)")
    def _():
        layer = Embedding(5, 3, rng=_rng(36))
        ids = np.array([[0, 2, 2], [4, 0, 1]])
        return {"fn": lambda: layer(ids), "inputs": [], "params": _params(layer)}

    @spec("Embedding", "unique ids (fast scatter path)")
    def _():
        layer = Embedding(6, 3, rng=_rng(37))
        ids = np.array([3, 0, 5, 1])
        return {"fn": lambda: layer(ids), "inputs": [], "params": _params(layer)}

    @spec("Embedding", "zero-size ids (0,)")
    def _():
        layer = Embedding(4, 3, rng=_rng(38))
        ids = np.zeros((0,), dtype=np.int64)
        return {"fn": lambda: layer(ids), "inputs": [], "params": _params(layer)}

    @spec("LayerNorm", "basic (2,4)")
    def _():
        layer = LayerNorm(4)
        return {"fn": layer, "inputs": [_tensor(_rng(39), 2, 4)], "params": _params(layer)}

    @spec("Dropout", "p=0 identity")
    def _():
        layer = Dropout(0.0)
        return {"fn": layer, "inputs": [_tensor(_rng(40), 2, 3)]}

    @spec("Dropout", "p=0.4 fixed mask")
    def _():
        layer = Dropout(0.4)
        layer._rng = _ConstantRng((2, 3))
        return {"fn": layer, "inputs": [_tensor(_rng(41), 2, 3)]}

    @spec("Mlp", "gelu (3,4,2)")
    def _():
        mlp = Mlp([3, 4, 2], rng=_rng(42))
        return {"fn": mlp, "inputs": [_tensor(_rng(43), 2, 3)], "params": _params(mlp)}

    @spec("Mlp", "tanh (3,4,2)")
    def _():
        mlp = Mlp([3, 4, 2], rng=_rng(44), activation="tanh")
        return {"fn": mlp, "inputs": [_tensor(_rng(45), 2, 3)], "params": _params(mlp)}

    @spec("Mlp", "relu (3,4,2)")
    def _():
        mlp = Mlp([3, 4, 2], rng=_rng(46), activation="relu")
        return {"fn": mlp, "inputs": [_tensor(_rng(47), 2, 3)], "params": _params(mlp)}


# -- attention ---------------------------------------------------------
def _register_attention() -> None:
    from ..nn.attention import (
        MultiHeadSelfAttention,
        TransformerEncoder,
        TransformerEncoderLayer,
        fused_self_attention,
    )

    def _fused_attention_case(seed: int, mask) -> dict:
        layer = MultiHeadSelfAttention(4, 2, dropout=0.0, rng=_rng(seed))
        return {
            "fn": lambda x: fused_self_attention(
                x,
                layer.query.weight,
                layer.query.bias,
                layer.key.weight,
                layer.key.bias,
                layer.value.weight,
                layer.value.bias,
                layer.out.weight,
                layer.out.bias,
                layer.num_heads,
                attention_mask=mask,
            ),
            "inputs": [_tensor(_rng(seed + 1), 2, 3, 4)],
            "params": _params(layer),
        }

    @spec("fused_self_attention", "full attention (2,3,4)")
    def _():
        return _fused_attention_case(48, None)

    @spec("fused_self_attention", "length-masked keys")
    def _():
        return _fused_attention_case(49, np.array([[1, 1, 1], [1, 1, 0]]))

    @spec("MultiHeadSelfAttention", "full attention (2,3,4)")
    def _():
        layer = MultiHeadSelfAttention(4, 2, dropout=0.0, rng=_rng(50))
        return {"fn": layer, "inputs": [_tensor(_rng(51), 2, 3, 4)], "params": _params(layer)}

    @spec("MultiHeadSelfAttention", "length-masked keys")
    def _():
        layer = MultiHeadSelfAttention(4, 2, dropout=0.0, rng=_rng(52))
        mask = np.array([[1, 1, 1], [1, 1, 0]])
        return {
            "fn": lambda x: layer(x, attention_mask=mask),
            "inputs": [_tensor(_rng(53), 2, 3, 4)],
            "params": _params(layer),
        }

    @spec("TransformerEncoderLayer", "full attention (2,3,4)")
    def _():
        layer = TransformerEncoderLayer(4, 2, ffn_dim=8, dropout=0.0, rng=_rng(54))
        return {"fn": layer, "inputs": [_tensor(_rng(55), 2, 3, 4)], "params": _params(layer)}

    @spec("TransformerEncoderLayer", "length-masked")
    def _():
        layer = TransformerEncoderLayer(4, 2, ffn_dim=8, dropout=0.0, rng=_rng(56))
        mask = np.array([[1, 1, 1], [1, 0, 0]])
        return {
            "fn": lambda x: layer(x, attention_mask=mask),
            "inputs": [_tensor(_rng(57), 2, 3, 4)],
            "params": _params(layer),
        }

    @spec("TransformerEncoder", "2 layers, length-masked")
    def _():
        encoder = TransformerEncoder(2, 4, 2, ffn_dim=4, dropout=0.0, rng=_rng(58))
        mask = np.array([[1, 1, 0]])
        return {
            "fn": lambda x: encoder(x, attention_mask=mask),
            "inputs": [_tensor(_rng(59), 1, 3, 4)],
            "params": _params(encoder),
        }


# -- recurrent ---------------------------------------------------------
def _register_recurrent() -> None:
    from ..nn.recurrent import BiLstm, Lstm, LstmCell, fused_lstm_step
    from ..nn.tensor import concat

    @spec("fused_lstm_step", "one step (2,3)->(2,2), both outputs")
    def _():
        cell = LstmCell(3, 2, rng=_rng(72))

        def fn(x, h, c):
            h_next, c_next = fused_lstm_step(x, h, c, cell.weight, cell.bias)
            return concat([h_next, c_next], axis=-1)

        return {
            "fn": fn,
            "inputs": [
                _tensor(_rng(73), 2, 3),
                _tensor(_rng(74), 2, 2),
                _tensor(_rng(75), 2, 2),
            ],
            "params": _params(cell),
        }

    @spec("fused_lstm_step", "h-only objective (c gradient path idle)")
    def _():
        cell = LstmCell(2, 2, rng=_rng(76))

        def fn(x, h, c):
            h_next, _ = fused_lstm_step(x, h, c, cell.weight, cell.bias)
            return h_next

        return {
            "fn": fn,
            "inputs": [
                _tensor(_rng(77), 2, 2),
                _tensor(_rng(78), 2, 2),
                _tensor(_rng(79), 2, 2),
            ],
            "params": _params(cell),
        }

    @spec("LstmCell", "one step (2,3)->(2,2)")
    def _():
        cell = LstmCell(3, 2, rng=_rng(60))

        def fn(x, h, c):
            h_next, c_next = cell(x, (h, c))
            return concat([h_next, c_next], axis=-1)

        return {
            "fn": fn,
            "inputs": [_tensor(_rng(61), 2, 3), _tensor(_rng(62), 2, 2), _tensor(_rng(63), 2, 2)],
            "params": _params(cell),
        }

    @spec("Lstm", "forward, no mask (2,4,2)")
    def _():
        lstm = Lstm(2, 2, rng=_rng(64))
        return {"fn": lstm, "inputs": [_tensor(_rng(65), 2, 4, 2)], "params": _params(lstm)}

    @spec("Lstm", "forward, ragged mask")
    def _():
        lstm = Lstm(2, 2, rng=_rng(66))
        mask = np.array([[1, 1, 1, 1], [1, 1, 0, 0]], dtype=np.float64)
        return {
            "fn": lambda x: lstm(x, mask=mask),
            "inputs": [_tensor(_rng(67), 2, 4, 2)],
            "params": _params(lstm),
        }

    @spec("Lstm", "reverse, ragged mask")
    def _():
        lstm = Lstm(2, 2, reverse=True, rng=_rng(68))
        mask = np.array([[1, 1, 1], [1, 0, 0]], dtype=np.float64)
        return {
            "fn": lambda x: lstm(x, mask=mask),
            "inputs": [_tensor(_rng(69), 2, 3, 2)],
            "params": _params(lstm),
        }

    @spec("BiLstm", "ragged mask (2,3,2)")
    def _():
        bilstm = BiLstm(2, 2, rng=_rng(70))
        mask = np.array([[1, 1, 1], [1, 1, 0]], dtype=np.float64)
        return {
            "fn": lambda x: bilstm(x, mask=mask),
            "inputs": [_tensor(_rng(71), 2, 3, 2)],
            "params": _params(bilstm),
        }


# -- crf ---------------------------------------------------------------
def _register_crf() -> None:
    from ..nn.crf import FuzzyCrf, LinearChainCrf

    @spec("LinearChainCrf", "full mask, fused path")
    def _():
        crf = LinearChainCrf(3, rng=_rng(80))
        tags = np.array([[0, 2, 1, 0], [2, 1, 1, 2]])
        return {
            "fn": lambda e: crf.neg_log_likelihood(e, tags),
            "inputs": [_tensor(_rng(81), 2, 4, 3)],
            "params": _params(crf),
        }

    @spec("LinearChainCrf", "ragged prefix mask, fused path")
    def _():
        crf = LinearChainCrf(3, rng=_rng(82))
        tags = np.array([[1, 0, 2, 1], [0, 1, 0, 0]])
        mask = np.array([[1, 1, 1, 1], [1, 1, 0, 0]], dtype=np.float64)
        return {
            "fn": lambda e: crf.neg_log_likelihood(e, tags, mask=mask),
            "inputs": [_tensor(_rng(83), 2, 4, 3)],
            "params": _params(crf),
        }

    @spec("LinearChainCrf", "non-prefix mask, reference path")
    def _():
        crf = LinearChainCrf(3, rng=_rng(84))
        tags = np.array([[0, 1, 2, 0], [2, 0, 1, 1]])
        mask = np.array([[1, 1, 1, 1], [1, 0, 1, 0]], dtype=np.float64)
        return {
            "fn": lambda e: crf.neg_log_likelihood(e, tags, mask=mask),
            "inputs": [_tensor(_rng(85), 2, 4, 3)],
            "params": _params(crf),
        }

    @spec("FuzzyCrf", "constrained nll, ragged mask")
    def _():
        crf = FuzzyCrf(3, rng=_rng(86))
        allowed = np.ones((2, 4, 3), dtype=bool)
        allowed[0, 1] = [True, False, False]
        allowed[0, 2] = [False, True, True]
        allowed[1, 0] = [False, True, False]
        mask = np.array([[1, 1, 1, 1], [1, 1, 1, 0]], dtype=np.float64)
        return {
            "fn": lambda e: crf.constrained_nll(e, allowed, mask=mask),
            "inputs": [_tensor(_rng(87), 2, 4, 3)],
            "params": _params(crf),
        }


def _register_all_specs() -> None:
    if SPECS:
        return
    _register_functional()
    _register_layers()
    _register_attention()
    _register_recurrent()
    _register_crf()


def discover_ops() -> Dict[str, str]:
    """Map every public export of the swept nn modules to its module."""
    ops: Dict[str, str] = {}
    for module_name in SWEPT_MODULES:
        module = importlib.import_module(module_name)
        for name in module.__all__:
            ops[name] = module_name
    return ops


def run_sweep(only: Optional[Sequence[str]] = None) -> List[GradcheckResult]:
    """Gradcheck every discovered op against its registered spec cases.

    A discovered op with neither a spec nor a ``NON_DIFFERENTIABLE``
    justification produces a failing result — coverage is enforced, not
    assumed.
    """
    _register_all_specs()
    ops = discover_ops()
    results: List[GradcheckResult] = []
    selected = set(only) if only else None
    if selected is not None:
        for unknown in sorted(selected - set(ops)):
            results.append(
                GradcheckResult(
                    name=unknown,
                    ok=False,
                    error=(
                        "not a discovered op; see --list for the swept names"
                    ),
                )
            )
    for op_name, module_name in sorted(ops.items()):
        if selected is not None and op_name not in selected:
            continue
        if op_name in NON_DIFFERENTIABLE:
            continue
        cases = SPECS.get(op_name)
        if not cases:
            results.append(
                GradcheckResult(
                    name=op_name,
                    ok=False,
                    error=(
                        f"exported by {module_name} but has no gradcheck "
                        "spec; register one in repro.analysis.gradcheck "
                        "or justify it in NON_DIFFERENTIABLE"
                    ),
                )
            )
            continue
        for label, builder in cases:
            case = builder()
            tolerances = {
                key: case[key] for key in ("eps", "atol", "rtol") if key in case
            }
            results.append(
                gradcheck(
                    case["fn"],
                    case["inputs"],
                    case.get("params", ()),
                    name=f"{op_name} [{label}]",
                    **tolerances,
                )
            )
    return results


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.gradcheck",
        description="Numerical-gradient sweep over the nn substrate.",
    )
    parser.add_argument("--ops", nargs="*", default=None, help="subset of op names")
    parser.add_argument(
        "--list", action="store_true", help="list discovered ops and case counts"
    )
    args = parser.parse_args(argv)

    _register_all_specs()
    if args.list:
        for op_name, module_name in sorted(discover_ops().items()):
            cases = SPECS.get(op_name, [])
            note = NON_DIFFERENTIABLE.get(op_name)
            suffix = f"skipped: {note}" if note else f"{len(cases)} case(s)"
            print(f"{op_name:28s} {module_name:24s} {suffix}")
        return 0

    results = run_sweep(args.ops)
    failed = [result for result in results if not result.ok]
    for result in results:
        print(result.render())
    print(
        f"{len(results) - len(failed)}/{len(results)} case(s) passed"
        + (f", {len(failed)} FAILED" if failed else "")
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
