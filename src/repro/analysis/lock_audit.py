"""Runtime lock-order sanitizer ("tsan-lite") for the repro substrate.

The static rules in :mod:`repro.analysis.concurrency_lint` see lock
*discipline* (mutations outside ``with self._lock``); they cannot see
lock *order*.  A deadlock needs two locks taken in opposite orders on
two threads — a property of the dynamic acquisition graph, not of any
single statement.  This module observes that graph cheaply at test time:

* :func:`audit_locks` monkeypatches the ``threading.Lock`` /
  ``threading.RLock`` factories so every lock subsequently created by
  audited modules is wrapped in an :class:`InstrumentedLock`;
* each wrapper reports acquisitions/releases to a shared
  :class:`LockAudit`, which keeps a per-thread stack of held lock
  *sites* (``module:lineno`` of the lock's creation) and adds one
  ordered edge ``held_site -> new_site`` per nested acquisition;
* after the audited workload, :meth:`LockAudit.cycles` runs Tarjan's
  SCC over the site graph — any multi-node component is a potential
  deadlock (two sites acquired in both orders), reported with the
  first-seen stack of every participating edge.

On top of ordering it also flags operational hazards: holds longer than
``long_hold_seconds`` (lock-hold hygiene — nothing slow belongs under a
lock) and any acquisition made while holding a *pool-critical* lock
(sites matching ``critical_patterns``): the pool's collector loop must
never block on telemetry locks.

Sites, not lock objects, are the graph nodes: every ``Counter`` creates
its own ``self._lock`` at the same line, and it is the per-*class*
ordering discipline that must be consistent.  Same-site nestings
(holding two locks born at one line) are excluded from cycle detection
— with per-instance locks that order is data-dependent, not a class
invariant — but recorded separately for review.

Known blind spots (documented in ``docs/API.md``): locks created at
*import* time predate the patch and are invisible; ``from threading
import Lock`` binds the real factory before the patch; child processes
are not audited (the patch is per-process state); and C-level locks
(queue internals) are out of scope.  The repo's runtime locks are all
created call-time via ``threading.Lock()`` attribute lookups, which is
exactly what the patch intercepts.

Usage::

    from repro.analysis.lock_audit import audit_locks

    with audit_locks() as audit:
        run_workload()
    report = audit.report()
    assert not report["cycles"], report

CLI (the ``analysis-concurrency`` CI job)::

    python -m repro.analysis.lock_audit tests/obs tests/parallel \
        --json-out lock_audit_report.json

runs pytest over the given paths under the audit and exits 1 on any
lock-order cycle or test failure.
"""

from __future__ import annotations

import sys
import threading
import time
import traceback
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["InstrumentedLock", "LockAudit", "audit_locks", "main"]

#: Module-name filters audited by default: the package, its tests.
DEFAULT_MODULES = ("repro", "tests", "test_")

#: Sites matching any of these substrings are pool-critical: acquiring
#: anything else while holding one is flagged.
DEFAULT_CRITICAL_PATTERNS = ("parallel.pool",)

#: Holding any lock longer than this is flagged (seconds).
DEFAULT_LONG_HOLD_SECONDS = 0.25

#: Cap per report section so a pathological run cannot eat memory.
_MAX_EVENTS = 200


class _HeldEntry:
    """One lock a thread currently holds."""

    __slots__ = ("lock_id", "site", "since", "count")

    def __init__(self, lock_id: int, site: str, since: float):
        self.lock_id = lock_id
        self.site = site
        self.since = since
        self.count = 1  # reentrant RLock depth


def _short_stack(skip: int = 3, limit: int = 8) -> List[str]:
    """A compact formatted stack of the audited code (wrapper frames cut)."""
    frames = traceback.extract_stack()[:-skip][-limit:]
    return [f"{f.filename}:{f.lineno} in {f.name}" for f in frames]


class LockAudit:
    """Collects acquisition order, hold times, and hazard events.

    One instance is shared by every :class:`InstrumentedLock` of an
    :func:`audit_locks` session.  All collection state is guarded by an
    internal meta-lock (a *real* lock, never instrumented, so the audit
    cannot observe itself).
    """

    def __init__(
        self,
        long_hold_seconds: float = DEFAULT_LONG_HOLD_SECONDS,
        critical_patterns: Sequence[str] = DEFAULT_CRITICAL_PATTERNS,
    ):
        self.long_hold_seconds = long_hold_seconds
        self.critical_patterns = tuple(critical_patterns)
        self._meta = threading.Lock()
        self._held = threading.local()
        #: (from_site, to_site) -> {"count", "stack" (first seen), "threads"}
        self.edges: Dict[Tuple[str, str], Dict[str, object]] = {}
        self.sites: Dict[str, int] = {}  # site -> locks created there
        self.acquisitions = 0
        self.long_holds: List[Dict[str, object]] = []
        self.critical_violations: List[Dict[str, object]] = []
        self.same_site_nestings: List[Dict[str, object]] = []

    # -- wiring ---------------------------------------------------------
    def _register_site(self, site: str) -> None:
        with self._meta:
            self.sites[site] = self.sites.get(site, 0) + 1

    def _stack_of(self) -> List[_HeldEntry]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def _is_critical(self, site: str) -> bool:
        return any(pattern in site for pattern in self.critical_patterns)

    # -- events (called by InstrumentedLock with the lock just taken) ---
    def note_acquire(self, lock_id: int, site: str) -> None:
        stack = self._stack_of()
        for entry in stack:
            if entry.lock_id == lock_id:
                entry.count += 1  # RLock re-entry: no new edge
                return
        now = time.perf_counter()
        thread = threading.current_thread().name
        if stack:
            with self._meta:
                self.acquisitions += 1
                for prior in stack:
                    if prior.site == site:
                        if len(self.same_site_nestings) < _MAX_EVENTS:
                            self.same_site_nestings.append({
                                "site": site,
                                "thread": thread,
                                "stack": _short_stack(),
                            })
                        continue
                    edge = self.edges.get((prior.site, site))
                    if edge is None:
                        self.edges[(prior.site, site)] = {
                            "count": 1,
                            "stack": _short_stack(),
                            "threads": {thread},
                        }
                    else:
                        edge["count"] += 1
                        edge["threads"].add(thread)
                    if self._is_critical(prior.site) and not self._is_critical(site):
                        if len(self.critical_violations) < _MAX_EVENTS:
                            self.critical_violations.append({
                                "held": prior.site,
                                "acquired": site,
                                "thread": thread,
                                "stack": _short_stack(),
                            })
        else:
            with self._meta:
                self.acquisitions += 1
        stack.append(_HeldEntry(lock_id, site, now))

    def note_release(self, lock_id: int, site: str) -> None:
        stack = self._stack_of()
        for index in range(len(stack) - 1, -1, -1):
            entry = stack[index]
            if entry.lock_id != lock_id:
                continue
            entry.count -= 1
            if entry.count > 0:
                return
            held_for = time.perf_counter() - entry.since
            del stack[index]
            if held_for > self.long_hold_seconds:
                with self._meta:
                    if len(self.long_holds) < _MAX_EVENTS:
                        self.long_holds.append({
                            "site": site,
                            "seconds": round(held_for, 6),
                            "thread": threading.current_thread().name,
                        })
            return
        # Release of a lock acquired before the audit started (or handed
        # across threads) — nothing to unwind.

    # -- analysis -------------------------------------------------------
    def cycles(self) -> List[Dict[str, object]]:
        """Potential deadlocks: SCCs of ≥ 2 sites in the order graph."""
        graph: Dict[str, List[str]] = {}
        for src, dst in self.edges:
            graph.setdefault(src, []).append(dst)
            graph.setdefault(dst, [])
        index_counter = [0]
        indices: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Dict[str, bool] = {}
        stack: List[str] = []
        components: List[List[str]] = []

        def strongconnect(root: str) -> None:
            # Iterative Tarjan: (node, iterator position) work stack.
            work = [(root, 0)]
            while work:
                node, child_index = work.pop()
                if child_index == 0:
                    indices[node] = low[node] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(node)
                    on_stack[node] = True
                recursed = False
                children = graph[node]
                for position in range(child_index, len(children)):
                    child = children[position]
                    if child not in indices:
                        work.append((node, position + 1))
                        work.append((child, 0))
                        recursed = True
                        break
                    if on_stack.get(child):
                        low[node] = min(low[node], indices[child])
                if recursed:
                    continue
                if low[node] == indices[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        components.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])

        for node in graph:
            if node not in indices:
                strongconnect(node)

        reports = []
        for component in components:
            members = set(component)
            involved = {
                f"{src} -> {dst}": {
                    "count": info["count"],
                    "threads": sorted(info["threads"]),
                    "stack": info["stack"],
                }
                for (src, dst), info in self.edges.items()
                if src in members and dst in members
            }
            reports.append({"sites": component, "edges": involved})
        return reports

    def report(self) -> Dict[str, object]:
        """JSON-ready summary of everything observed."""
        cycles = self.cycles()
        return {
            "locks_created": sum(self.sites.values()),
            "sites": dict(sorted(self.sites.items())),
            "acquisitions": self.acquisitions,
            "edges": {
                f"{src} -> {dst}": {
                    "count": info["count"],
                    "threads": sorted(info["threads"]),
                    "stack": info["stack"],
                }
                for (src, dst), info in sorted(self.edges.items())
            },
            "cycles": cycles,
            "long_holds": list(self.long_holds),
            "critical_violations": list(self.critical_violations),
            "same_site_nestings": [
                {"site": event["site"], "thread": event["thread"]}
                for event in self.same_site_nestings
            ],
            "ok": not cycles,
        }


class InstrumentedLock:
    """Drop-in ``threading.Lock``/``RLock`` stand-in that reports to an audit.

    Wraps the real primitive; every successful ``acquire`` / ``release``
    is mirrored into the shared :class:`LockAudit`.  The wrapper adds two
    attribute loads and (for nested acquisitions) one dict update per
    operation — cheap enough to run whole test suites under.
    """

    __slots__ = ("_inner", "_site", "_audit", "_depth")

    def __init__(self, inner, site: str, audit: LockAudit):
        self._inner = inner
        self._site = site
        self._audit = audit
        # Total acquisition depth across threads; only ever mutated while
        # the underlying lock is held, so updates are serialized.
        self._depth = 0
        audit._register_site(site)

    @property
    def site(self) -> str:
        return self._site

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._depth += 1
            self._audit.note_acquire(id(self), self._site)
        return acquired

    def release(self) -> None:
        self._audit.note_release(id(self), self._site)
        self._depth -= 1
        self._inner.release()

    def locked(self) -> bool:
        locked = getattr(self._inner, "locked", None)
        if locked is not None:
            return locked()
        # RLock before 3.12 has no locked(); a try-acquire probe would
        # succeed reentrantly for the owner, so use the tracked depth.
        return self._depth > 0

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> bool:
        self.release()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<InstrumentedLock site={self._site!r} of {self._inner!r}>"


def _module_matches(module: str, filters: Sequence[str]) -> bool:
    for prefix in filters:
        if module == prefix or module.startswith(prefix + "."):
            return True
        if module.rsplit(".", 1)[-1].startswith(prefix):
            return True
    return False


@contextmanager
def audit_locks(
    audit: Optional[LockAudit] = None,
    modules: Sequence[str] = DEFAULT_MODULES,
    long_hold_seconds: float = DEFAULT_LONG_HOLD_SECONDS,
    critical_patterns: Sequence[str] = DEFAULT_CRITICAL_PATTERNS,
):
    """Patch the ``threading`` lock factories for the duration of the block.

    Locks created by modules matching ``modules`` (prefix match on the
    dotted name, or on its last segment — so both ``repro.obs.metrics``
    and a pytest-imported ``test_alerts`` qualify) are instrumented; all
    other creations get the real primitive untouched.  The caller is
    identified by the factory's calling frame, which also naturally
    leaves stdlib-internal lock creation (queues, multiprocessing)
    uninstrumented.  Yields the shared :class:`LockAudit`.
    """
    if audit is None:
        audit = LockAudit(
            long_hold_seconds=long_hold_seconds,
            critical_patterns=critical_patterns,
        )
    real_lock = threading.Lock
    real_rlock = threading.RLock

    def _factory(real):
        def make_lock():
            inner = real()
            frame = sys._getframe(1)
            module = frame.f_globals.get("__name__", "")
            if not _module_matches(module, modules):
                return inner
            site = f"{module}:{frame.f_lineno}"
            return InstrumentedLock(inner, site, audit)

        return make_lock

    threading.Lock = _factory(real_lock)
    threading.RLock = _factory(real_rlock)
    try:
        yield audit
    finally:
        threading.Lock = real_lock
        threading.RLock = real_rlock


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run pytest over the given paths under the lock audit.

    Exit status: 0 when the tests pass and the acquisition graph is
    acyclic, 1 otherwise.  Long holds and critical-lock violations are
    reported but advisory (they do not fail the run on their own).
    """
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lock_audit",
        description="Run test suites under the lock-order sanitizer.",
    )
    parser.add_argument("paths", nargs="+", help="test files or directories")
    parser.add_argument(
        "--json-out", help="write the full JSON report to this file"
    )
    parser.add_argument(
        "--modules",
        default=",".join(DEFAULT_MODULES),
        help="comma-separated module-name prefixes to instrument",
    )
    parser.add_argument(
        "--long-hold-seconds",
        type=float,
        default=DEFAULT_LONG_HOLD_SECONDS,
        help="advisory threshold for long lock holds",
    )
    parser.add_argument(
        "--critical",
        default=",".join(DEFAULT_CRITICAL_PATTERNS),
        help="comma-separated site substrings marking pool-critical locks",
    )
    parser.add_argument(
        "--pytest-arg",
        action="append",
        default=[],
        help="extra argument forwarded to pytest (repeatable)",
    )
    options = parser.parse_args(argv)

    import pytest

    modules = tuple(m.strip() for m in options.modules.split(",") if m.strip())
    critical = tuple(c.strip() for c in options.critical.split(",") if c.strip())
    with audit_locks(
        modules=modules,
        long_hold_seconds=options.long_hold_seconds,
        critical_patterns=critical,
    ) as audit:
        status = pytest.main(list(options.paths) + ["-q"] + options.pytest_arg)

    report = audit.report()
    report["pytest_exit_status"] = int(status)
    if options.json_out:
        with open(options.json_out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)

    print(
        f"lock audit: {report['locks_created']} locks at "
        f"{len(report['sites'])} sites, {report['acquisitions']} "
        f"acquisitions, {len(report['edges'])} order edges"
    )
    for cycle in report["cycles"]:
        print(f"  CYCLE between sites: {', '.join(cycle['sites'])}")
        for edge, info in cycle["edges"].items():
            print(f"    {edge} (count {info['count']})")
    if report["long_holds"]:
        worst = max(report["long_holds"], key=lambda e: e["seconds"])
        print(
            f"  {len(report['long_holds'])} long hold(s); worst "
            f"{worst['seconds']}s at {worst['site']}"
        )
    for violation in report["critical_violations"]:
        print(
            f"  CRITICAL-HOLD: {violation['acquired']} acquired while "
            f"holding {violation['held']}"
        )
    if not report["cycles"]:
        print("lock audit: no lock-order cycles")
    return 1 if (report["cycles"] or int(status) != 0) else 0


if __name__ == "__main__":
    raise SystemExit(main())
