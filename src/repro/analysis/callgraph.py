"""Interprocedural call-graph resolution for the ``repro.analysis`` linter.

The AST rules in :mod:`repro.analysis.lint` were originally purely
syntactic: RN004 only saw a graph-building call when it appeared
*textually* inside a ``predict*`` function, so one level of helper
indirection (``predict`` → ``self._score`` → ``self.emissions``) was a
known false-negative shape.  This module closes that hole with a small,
deliberately conservative call graph over the linted file set:

* every top-level function and class method of every linted module is
  indexed under a stable qualified name (``module::Class.method``);
* calls are resolved **statically and unambiguously or not at all** —
  bare names to same-module functions, ``self.m()`` / ``cls.m()`` to
  methods of the lexically enclosing class (following single-name base
  classes within the same module), and imported names through
  ``import`` / ``from ... import`` bindings between linted modules
  (relative imports included);
* rules query one level of indirection at a time
  (:meth:`CallGraph.calls_matching`), which is exactly the contract the
  concurrency rules and RN004 need: a helper that itself hides the
  pattern another level down is out of scope by design.

Limitations (documented in ``docs/API.md``): no dynamic dispatch, no
aliasing (``f = self.emissions; f()`` is invisible), no decorators that
replace functions, no cross-package resolution beyond the linted file
set, and resolution never follows more than ``max_depth`` helper hops.
Everything here is stdlib-only, like the rest of the linter.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["FunctionInfo", "CallGraph", "build_call_graph", "module_name_for"]


def module_name_for(path: str) -> str:
    """Best-effort dotted module name for a source path.

    ``src/repro/parallel/pool.py`` → ``repro.parallel.pool``; package
    ``__init__`` files name the package itself.  Paths outside a
    recognisable package root fall back to their stem, which keeps
    single-file :func:`~repro.analysis.lint.lint_source` calls working.
    """
    parts = list(Path(path).with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    elif "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    return ".".join(parts) if parts else "<unknown>"


class FunctionInfo:
    """One indexed function or method: location plus its AST."""

    __slots__ = ("module", "cls", "name", "node", "path")

    def __init__(
        self,
        module: str,
        cls: Optional[str],
        name: str,
        node: ast.AST,
        path: str,
    ):
        self.module = module
        self.cls = cls
        self.name = name
        self.node = node
        self.path = path

    @property
    def qualname(self) -> str:
        local = f"{self.cls}.{self.name}" if self.cls else self.name
        return f"{self.module}::{local}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionInfo({self.qualname})"


class _ModuleIndex:
    """Per-module lookup tables: functions, classes, import bindings."""

    def __init__(self, module: str, tree: ast.Module, path: str):
        self.module = module
        self.path = path
        self.functions: Dict[str, FunctionInfo] = {}
        self.methods: Dict[Tuple[str, str], FunctionInfo] = {}
        self.bases: Dict[str, List[str]] = {}
        #: local name -> (module, attribute-or-None).  ``attribute`` None
        #: means the binding is the module itself (``import x as y``).
        self.imports: Dict[str, Tuple[str, Optional[str]]] = {}
        self._index(tree)

    def _index(self, tree: ast.Module) -> None:
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = FunctionInfo(
                    self.module, None, node.name, node, self.path
                )
            elif isinstance(node, ast.ClassDef):
                self.bases[node.name] = [
                    base.id for base in node.bases if isinstance(base, ast.Name)
                ]
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self.methods[(node.name, item.name)] = FunctionInfo(
                            self.module, node.name, item.name, item, self.path
                        )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name,
                        None,
                    )
            elif isinstance(node, ast.ImportFrom):
                target = self._resolve_from(node)
                if target is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.imports[alias.asname or alias.name] = (target, alias.name)

    def _resolve_from(self, node: ast.ImportFrom) -> Optional[str]:
        """Absolute module a ``from ... import`` pulls names out of."""
        if node.level == 0:
            return node.module
        # Relative: strip ``level`` trailing components off this module's
        # dotted name (the module itself counts as one).
        parts = self.module.split(".")
        if node.level > len(parts):
            return None
        base = parts[: len(parts) - node.level]
        if node.module:
            base += node.module.split(".")
        return ".".join(base) if base else None


class CallGraph:
    """Static call resolution across a linted file set.

    Build with :func:`build_call_graph`; query with :meth:`resolve` (one
    call expression → one :class:`FunctionInfo` or None) and
    :meth:`calls_matching` (does this function, within ``max_depth``
    resolved hops, make a call the predicate accepts?).
    """

    def __init__(self) -> None:
        self._modules: Dict[str, _ModuleIndex] = {}
        #: def-node id -> FunctionInfo, for locating the enclosing function.
        self._by_node: Dict[int, FunctionInfo] = {}

    # -- construction ---------------------------------------------------
    def add_module(self, module: str, tree: ast.Module, path: str) -> None:
        index = _ModuleIndex(module, tree, path)
        self._modules[module] = index
        for info in index.functions.values():
            self._by_node[id(info.node)] = info
        for info in index.methods.values():
            self._by_node[id(info.node)] = info

    def modules(self) -> List[str]:
        return sorted(self._modules)

    def function_for_node(self, node: ast.AST) -> Optional[FunctionInfo]:
        """The indexed function a ``FunctionDef`` node belongs to."""
        return self._by_node.get(id(node))

    # -- resolution -----------------------------------------------------
    def _method(self, module: str, cls: str, name: str) -> Optional[FunctionInfo]:
        """Method lookup following same-module single-name bases."""
        index = self._modules.get(module)
        seen = set()
        queue = [cls]
        while queue and index is not None:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = index.methods.get((current, name))
            if info is not None:
                return info
            queue.extend(index.bases.get(current, []))
        return None

    def resolve(
        self,
        call: ast.Call,
        module: str,
        cls: Optional[str] = None,
    ) -> Optional[FunctionInfo]:
        """Resolve one call expression, or None when ambiguous/external.

        ``module`` is the dotted module the call appears in and ``cls``
        the lexically enclosing class (for ``self.m()`` / ``cls.m()``).
        """
        index = self._modules.get(module)
        if index is None:
            return None
        func = call.func
        if isinstance(func, ast.Name):
            info = index.functions.get(func.id)
            if info is not None:
                return info
            bound = index.imports.get(func.id)
            if bound is not None and bound[1] is not None:
                other = self._modules.get(bound[0])
                if other is not None:
                    return other.functions.get(bound[1])
            return None
        if isinstance(func, ast.Attribute):
            owner = func.value
            if isinstance(owner, ast.Name):
                if owner.id in ("self", "cls") and cls is not None:
                    return self._method(module, cls, func.attr)
                bound = index.imports.get(owner.id)
                if bound is not None and bound[1] is None:
                    other = self._modules.get(bound[0])
                    if other is not None:
                        return other.functions.get(func.attr)
        return None

    # -- interprocedural queries ----------------------------------------
    def calls_matching(
        self,
        info: FunctionInfo,
        predicate: Callable[[ast.Call, "CallGraph"], bool],
        max_depth: int = 1,
        _seen: Optional[set] = None,
    ) -> Optional[ast.Call]:
        """First call in ``info`` (or its resolved helpers, up to
        ``max_depth`` hops further) that satisfies ``predicate``.

        Depth 0 inspects only the function body; depth 1 additionally
        inspects the bodies of helpers the body resolvably calls, and so
        on.  Recursion through cycles is cut by the visited set.
        """
        seen = _seen if _seen is not None else set()
        if info.qualname in seen:
            return None
        seen.add(info.qualname)
        for call in walk_calls(info.node):
            if predicate(call, self):
                return call
            if max_depth > 0:
                target = self.resolve(call, info.module, info.cls)
                if target is not None:
                    hit = self.calls_matching(
                        target, predicate, max_depth - 1, seen
                    )
                    if hit is not None:
                        # Report the *call site* in the asking function,
                        # not the buried line inside the helper.
                        return call
        return None


def walk_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Every call expression lexically inside ``node``, nested defs included."""
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


def build_call_graph(
    sources: Sequence[Tuple[str, ast.Module]],
) -> CallGraph:
    """Index ``(path, parsed tree)`` pairs into a :class:`CallGraph`."""
    graph = CallGraph()
    for path, tree in sources:
        graph.add_module(module_name_for(path), tree, path)
    return graph
