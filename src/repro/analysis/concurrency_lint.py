"""Concurrency-aware lint rules (RN007–RN012) for the repro substrate.

PR 7 made training multi-process (spawn-safe pools over shared-memory
slabs) and the obs layer made instrumentation multi-thread-safe
(per-metric locks); the ROADMAP's serving tier will add thread pools on
top.  None of those contracts is enforced by Python — a fork-unsafe
module global, an ndarray smuggled through a control queue, or a
mutation that slips outside a class's own lock does not raise, it
corrupts state under load.  These rules check the contracts statically,
through the same driver (and with the same suppression discipline) as
RN001–RN006.

Rules
-----
RN007  module-level mutable state (a container that the module itself
       mutates) read inside a worker-executed function, in a module
       without an ``os.register_at_fork`` guard or an in-function
       re-initialisation — the ``FeatureCache`` pattern, enforced
       everywhere
RN008  mutation of shared structures (``self.*`` containers / counters)
       outside a ``with self._lock:`` block, in classes that own a lock
RN009  queue ``put`` of graph/ndarray payloads — queues carry control
       messages; arrays cross process boundaries through shared-memory
       slabs
RN010  blocking ``Queue.get()`` / bare ``join()`` without a timeout or
       liveness loop (the dead-worker hang class PR 7 fixed by hand)
RN011  ``threading.Thread`` / ``multiprocessing.Process`` creation
       outside the sanctioned pool/runner modules
RN012  unbounded telemetry label cardinality: metric label values
       derived from per-item loop variables or document identifiers

Like the rest of :mod:`repro.analysis.lint`, the rules use the
interprocedural call graph where one level of helper indirection would
otherwise hide the pattern (RN007), and are pure stdlib.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .lint import (
    FileContext,
    Finding,
    Rule,
    _ancestors,
    _call_name,
    _dotted,
    _enclosing_class_name,
    _enclosing_function_names,
    _subtree_has,
)

__all__ = [
    "CONCURRENCY_RULES",
    "ModuleStateInWorker",
    "UnlockedSharedMutation",
    "ArrayThroughQueue",
    "BlockingQueueCall",
    "UnsanctionedThreadCreation",
    "UnboundedLabelCardinality",
]

#: Constructors whose result is a mutable container.
_CONTAINER_CALLS = {
    "dict",
    "list",
    "set",
    "OrderedDict",
    "defaultdict",
    "deque",
    "Counter",
    "WeakSet",
    "WeakValueDictionary",
    "WeakKeyDictionary",
}

#: Methods that mutate the container they are called on.
_MUTATING_METHODS = {
    "append",
    "appendleft",
    "extend",
    "extendleft",
    "insert",
    "remove",
    "discard",
    "pop",
    "popleft",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "add",
    "move_to_end",
    "sort",
    "reverse",
}


def _is_worker_function(node: ast.AST) -> bool:
    """Functions whose body runs inside a pool worker process.

    The repo's convention (see :mod:`repro.parallel.workers`): spawn
    entry points are ``_worker_main`` / ``init_*`` factories, dispatch
    targets are ``task_*`` methods, and the contexts that hold them are
    ``*WorkerContext`` classes.
    """
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    name = node.name
    if name == "_worker_main" or name.startswith(("task_", "init_")):
        return True
    cls = _enclosing_class_name(node)
    return cls is not None and cls.endswith("WorkerContext")


class ModuleStateInWorker(Rule):
    code = "RN007"
    title = "fork-unsafe module-level state read in a worker function"
    rationale = (
        "A module-level cache or registry inherited by a worker process "
        "carries parent-process state (identity keys, file handles, "
        "half-warm caches) that is silently wrong in the child.  Worker "
        "code may only touch such state when the module registers an "
        "os.register_at_fork re-init guard (the FeatureCache pattern) or "
        "the function rebuilds the global itself."
    )

    def _mutable_globals(self, ctx: FileContext) -> Set[str]:
        """Top-level container bindings that the module actually mutates.

        Read-only constant tables (header lists, rule tables) are not
        state; a global only counts when some code in the module mutates
        it in place — that is what makes inheriting it across a process
        boundary dangerous.
        """
        candidates: Set[str] = set()
        for node in ctx.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            is_container = isinstance(value, (ast.Dict, ast.List, ast.Set)) or (
                isinstance(value, ast.Call)
                and (_call_name(value.func) or "") in _CONTAINER_CALLS
            )
            if not is_container:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id != "__all__":
                    candidates.add(target.id)
        if not candidates:
            return set()
        mutated: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                owner = node.func.value
                if (
                    isinstance(owner, ast.Name)
                    and owner.id in candidates
                    and node.func.attr in _MUTATING_METHODS
                ):
                    mutated.add(owner.id)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (
                    node.targets
                    if isinstance(node, (ast.Assign, ast.Delete))
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in candidates
                    ):
                        mutated.add(target.value.id)
        return mutated

    @staticmethod
    def _has_fork_guard(ctx: FileContext) -> bool:
        return _subtree_has(
            ctx.tree,
            lambda n: isinstance(n, ast.Call)
            and _call_name(n.func) == "register_at_fork",
        )

    @staticmethod
    def _reinitialises(fn: ast.AST, name: str) -> bool:
        """The function rebinds the global itself before using it."""
        declares_global = _subtree_has(
            fn, lambda n: isinstance(n, ast.Global) and name in n.names
        )
        if not declares_global:
            return False
        return _subtree_has(
            fn,
            lambda n: isinstance(n, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == name for t in n.targets
            ),
        )

    def _reads_in(
        self, fn: ast.AST, mutable: Set[str]
    ) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in mutable
            ):
                yield node, node.id

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_library:
            return
        mutable = self._mutable_globals(ctx)
        if not mutable or self._has_fork_guard(ctx):
            return
        worker_fns = [
            node for node in ast.walk(ctx.tree) if _is_worker_function(node)
        ]
        for fn in worker_fns:
            live = {
                name for name in mutable if not self._reinitialises(fn, name)
            }
            if not live:
                continue
            for node, name in self._reads_in(fn, live):
                yield self.finding(
                    ctx,
                    node,
                    f"worker function `{fn.name}` reads module-level mutable "
                    f"state `{name}` without an os.register_at_fork guard or "
                    "in-function re-initialisation",
                )
            # One level of helper indirection: a same-module helper that
            # reads the state is just as fork-unsafe when called from here.
            if ctx.callgraph is None:
                continue
            info = ctx.callgraph.function_for_node(fn)
            if info is None:
                continue

            def reads_mutable(call: ast.Call, graph) -> bool:
                target = graph.resolve(call, info.module, info.cls)
                if target is None or target.module != ctx.module_name:
                    return False
                if _is_worker_function(target.node):
                    return False  # flagged on its own
                return any(True for _ in self._reads_in(target.node, live))

            hit = ctx.callgraph.calls_matching(info, reads_mutable, max_depth=0)
            if hit is not None:
                yield self.finding(
                    ctx,
                    hit,
                    f"worker function `{fn.name}` calls a helper that reads "
                    "module-level mutable state without a fork guard",
                )


class UnlockedSharedMutation(Rule):
    code = "RN008"
    title = "shared-structure mutation outside the owning lock"
    rationale = (
        "A class that owns a threading.Lock has declared its state "
        "shared; mutating a container or counter attribute outside a "
        "`with self._lock:` block reintroduces the torn updates the lock "
        "exists to prevent.  Construction (__init__) and helpers named "
        "*_unlocked (documented as called-with-lock-held) are exempt."
    )

    EXEMPT_FUNCTIONS = {"__init__", "__new__", "__del__", "__reduce__"}

    @staticmethod
    def _lock_attrs(cls_node: ast.ClassDef) -> Set[str]:
        """Attributes assigned a Lock()/RLock() anywhere in the class."""
        attrs: Set[str] = set()
        for node in ast.walk(cls_node):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if not (
                isinstance(value, ast.Call)
                and (_call_name(value.func) or "") in ("Lock", "RLock")
            ):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attrs.add(target.attr)
        return attrs

    @staticmethod
    def _under_lock(node: ast.AST, lock_attrs: Set[str]) -> bool:
        for ancestor in _ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    expr = item.context_expr
                    if (
                        isinstance(expr, ast.Attribute)
                        and isinstance(expr.value, ast.Name)
                        and expr.value.id == "self"
                        and (expr.attr in lock_attrs or "lock" in expr.attr)
                    ):
                        return True
        return False

    @staticmethod
    def _self_attr(node: ast.AST) -> Optional[str]:
        """``self.<attr>`` (possibly under a subscript) → attr name."""
        if isinstance(node, ast.Subscript):
            node = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def _exempt(self, node: ast.AST, lock_attrs: Set[str]) -> bool:
        names = _enclosing_function_names(node)
        if not names:
            return True  # class-body level: construction
        if names[-1] in self.EXEMPT_FUNCTIONS or any(
            name.endswith("_unlocked") for name in names
        ):
            return True
        return self._under_lock(node, lock_attrs)

    def _mutations(
        self, method: ast.AST
    ) -> Iterator[Tuple[ast.AST, str, str]]:
        """(node, attr, description) for every shared-state mutation."""
        for node in ast.walk(method):
            if isinstance(node, ast.AugAssign):
                attr = self._self_attr(node.target)
                if attr is not None:
                    yield node, attr, f"augmented assignment to `self.{attr}`"
            elif isinstance(node, (ast.Assign, ast.Delete)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else node.targets
                )
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        attr = self._self_attr(target)
                        if attr is not None:
                            yield (
                                node,
                                attr,
                                f"item assignment into `self.{attr}`",
                            )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr not in _MUTATING_METHODS:
                    continue
                attr = self._self_attr(node.func.value)
                if attr is not None:
                    yield (
                        node,
                        attr,
                        f"`self.{attr}.{node.func.attr}(...)`",
                    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_library:
            return
        for cls_node in ast.walk(ctx.tree):
            if not isinstance(cls_node, ast.ClassDef):
                continue
            lock_attrs = self._lock_attrs(cls_node)
            if not lock_attrs:
                continue
            for node, attr, what in self._mutations(cls_node):
                if attr in lock_attrs:
                    continue  # rebinding the lock itself (fork re-init)
                if self._exempt(node, lock_attrs):
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"{what} in lock-owning class `{cls_node.name}` outside "
                    f"a `with self.{sorted(lock_attrs)[0]}:` block",
                )


class ArrayThroughQueue(Rule):
    code = "RN009"
    title = "graph/ndarray payload sent through a control queue"
    rationale = (
        "Pool queues carry small control payloads; pickling gradient or "
        "parameter arrays through them silently reintroduces the "
        "serialisation cost the shared-memory slabs exist to avoid, and "
        "a Tensor payload drags its autograd graph across the process "
        "boundary.  Arrays move through slabs, queues move indices and "
        "scalars."
    )

    ARRAY_NAMES = {
        "params",
        "parameters",
        "tensor",
        "tensors",
        "array",
        "arrays",
        "slab",
        "slabs",
        "weights",
    }

    @staticmethod
    def _queueish(receiver: str) -> bool:
        tail = receiver.split(".")[-1]
        return "queue" in receiver.lower() or tail in ("q", "results")

    def _array_like(self, node: ast.AST) -> bool:
        def predicate(n: ast.AST) -> bool:
            if isinstance(n, ast.Attribute) and n.attr in ("data", "grad"):
                return True
            if isinstance(n, ast.Call):
                name = _dotted(n.func)
                if name.startswith(("np.", "numpy.")):
                    return True
                if (_call_name(n.func) or "") == "Tensor":
                    return True
            if isinstance(n, ast.Name):
                lowered = n.id.lower()
                return lowered in self.ARRAY_NAMES or "grad" in lowered
            return False

        return _subtree_has(node, predicate)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_library:
            return
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("put", "put_nowait")
            ):
                continue
            receiver = _dotted(node.func.value)
            if not receiver or not self._queueish(receiver):
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if self._array_like(arg):
                    yield self.finding(
                        ctx,
                        node,
                        f"`{receiver}.put(...)` ships an array/graph payload "
                        "through a control queue; route arrays through "
                        "shared-memory slabs",
                    )
                    break


class BlockingQueueCall(Rule):
    code = "RN010"
    title = "blocking queue get / join without timeout or liveness loop"
    rationale = (
        "A bare Queue.get() or join() blocks forever when the peer "
        "process died without reporting (OOM kill, spawn bootstrap "
        "failure) — the hang class PR 7's _collect fixed with a poll "
        "loop.  Every blocking wait on another process or thread needs a "
        "timeout plus a liveness check."
    )

    JOIN_RECEIVER_HINTS = ("process", "thread", "worker", "queue", "pool")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_library:
            return
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            if node.args or node.keywords:
                continue  # any argument (timeout, block=...) opts out here
            receiver = _dotted(node.func.value)
            if not receiver:
                continue
            lowered = receiver.lower()
            if node.func.attr == "get" and ArrayThroughQueue._queueish(receiver):
                yield self.finding(
                    ctx,
                    node,
                    f"blocking `{receiver}.get()` without a timeout; poll "
                    "with a timeout and check peer liveness between polls",
                )
            elif node.func.attr == "join" and any(
                hint in lowered for hint in self.JOIN_RECEIVER_HINTS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"`{receiver}.join()` without a timeout can hang on a "
                    "dead peer; join with a timeout and handle stragglers",
                )


class UnsanctionedThreadCreation(Rule):
    code = "RN011"
    title = "thread/process creation outside the sanctioned runner modules"
    rationale = (
        "All concurrency primitives live in the pool/runner modules so "
        "BLAS pinning, teardown (no orphaned workers), telemetry and the "
        "lock-order sanitizer see every execution lane.  A stray "
        "threading.Thread in library code escapes all four."
    )

    #: Modules allowed to create execution lanes.  ``profiler.py`` owns the
    #: obs sampling daemon thread — it must observe every other lane, so it
    #: cannot itself run inside the pool.  ``server.py`` owns the telemetry
    #: HTTP listener: its serve thread and semaphore-bounded handler
    #: threads only *read* session state through the per-metric/engine
    #: locks, so they cannot deadlock the lanes they observe.
    SANCTIONED_FILES = {"pool.py", "profiler.py", "server.py"}
    SPAWN_CALLS = {
        "Thread",
        "Process",
        "ThreadPoolExecutor",
        "ProcessPoolExecutor",
    }

    #: Modules whose spawn classes count when imported bare.
    PROVIDER_MODULES = ("threading", "multiprocessing", "concurrent.futures")

    def _bare_spawn_names(self, ctx: FileContext) -> Set[str]:
        """Spawn-class names this module imported from a real provider.

        A bare ``Process(...)`` call is only evidence when the module did
        ``from multiprocessing import Process`` (or similar) — otherwise
        it may be an unrelated local class that happens to share the name.
        """
        names: Set[str] = set()
        for node in ctx.tree.body:
            if not isinstance(node, ast.ImportFrom):
                continue
            if node.module not in self.PROVIDER_MODULES:
                continue
            for alias in node.names:
                if alias.name in self.SPAWN_CALLS:
                    names.add(alias.asname or alias.name)
        return names

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_library or ctx.filename in self.SANCTIONED_FILES:
            return
        bare_names = self._bare_spawn_names(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node.func)
            if name not in self.SPAWN_CALLS:
                continue
            dotted = _dotted(node.func)
            if "." in dotted:
                # Dotted calls need a threading/multiprocessing-ish
                # module alias as their head.
                head = dotted.split(".")[0]
                if head not in (
                    "threading",
                    "multiprocessing",
                    "mp",
                    "ctx",
                    "concurrent",
                    "futures",
                ):
                    continue
            elif name not in bare_names:
                continue
            yield self.finding(
                ctx,
                node,
                f"`{dotted or name}(...)` creates an execution lane outside "
                "the sanctioned pool/runner modules (repro.parallel.pool)",
            )


class UnboundedLabelCardinality(Rule):
    code = "RN012"
    title = "unbounded telemetry label cardinality"
    rationale = (
        "A label value derived from a per-item loop variable, document id, "
        "or stack-frame identity mints a fresh metric series per item: the "
        "registry (one lock + dict entry per series) grows with traffic "
        "until memory and snapshot time blow up.  Label values must come "
        "from small fixed sets (worker ids, thread names, stages, "
        "severities); stack identity belongs in event payloads "
        "(``profile`` events), never in metric labels."
    )

    METRIC_METHODS = {"inc", "set", "observe", "time"}
    METRIC_RECEIVER_HINTS = (
        "gauge",
        "counter",
        "timer",
        "histogram",
        "metric",
    )
    ID_ATTRS = {"doc_id", "document_id", "example_id", "resume_id", "run_id",
                "uid", "guid", "path"}
    #: Frame/code-object attributes: a label minted from one carries stack
    #: identity — one series per call site (or worse, per line).
    STACK_ATTRS = {"co_name", "co_filename", "co_qualname", "f_lineno",
                   "f_code", "f_back", "tb_lineno"}
    #: Label *keys* that declare stack identity by name.  Profiler output
    #: must route stacks through ``profile`` event payloads instead.
    STACK_LABEL_KEYS = {"stack", "frame", "frames", "function", "func",
                        "callsite", "lineno", "filename", "caller"}
    #: Loop sources whose length is bounded by the worker/shard/thread count.
    BOUNDED_ITER_HINTS = (
        "worker",
        "shard",
        "thread",
        "result",
        "duration",
        "severit",
        "stage",
        "phase",
    )

    def _is_metric_call(self, node: ast.Call) -> bool:
        if not isinstance(node.func, ast.Attribute):
            return False
        if node.func.attr not in self.METRIC_METHODS:
            return False
        receiver = node.func.value
        if isinstance(receiver, ast.Call):
            name = _call_name(receiver.func) or ""
        else:
            name = _dotted(receiver).split(".")[-1]
        lowered = name.lower()
        return any(hint in lowered for hint in self.METRIC_RECEIVER_HINTS)

    @staticmethod
    def _unwrap(value: ast.AST) -> List[ast.AST]:
        """Peel str()/int()/format conversions down to the payload exprs."""
        if isinstance(value, ast.Call) and (_call_name(value.func) or "") in (
            "str",
            "int",
            "repr",
            "format",
        ):
            return [arg for a in value.args for arg in
                    UnboundedLabelCardinality._unwrap(a)]
        if isinstance(value, ast.JoinedStr):
            out: List[ast.AST] = []
            for part in value.values:
                if isinstance(part, ast.FormattedValue):
                    out.extend(UnboundedLabelCardinality._unwrap(part.value))
            return out
        return [value]

    def _bounded_iter(self, iterable: ast.AST) -> bool:
        if isinstance(iterable, ast.Call):
            name = _call_name(iterable.func) or ""
            if name == "range":
                return True
            if name == "enumerate" and iterable.args:
                return self._bounded_iter(iterable.args[0])
            if name == "zip":
                return any(self._bounded_iter(a) for a in iterable.args)
            if (
                isinstance(iterable.func, ast.Attribute)
                and iterable.func.attr in ("items", "keys", "values")
            ):
                # dict.items() et al. inherit the receiver's boundedness.
                return self._bounded_iter(iterable.func.value)
        tail = _dotted(iterable).split(".")[-1].lower()
        if not tail and isinstance(iterable, ast.Name):
            tail = iterable.id.lower()
        return any(hint in tail for hint in self.BOUNDED_ITER_HINTS)

    @staticmethod
    def _loop_targets(node: ast.AST) -> Dict[str, ast.AST]:
        """Loop-variable name → the loop's iterable, for enclosing fors."""
        targets: Dict[str, ast.AST] = {}
        for ancestor in _ancestors(node):
            if isinstance(ancestor, (ast.For, ast.AsyncFor)):
                for name_node in ast.walk(ancestor.target):
                    if isinstance(name_node, ast.Name):
                        targets.setdefault(name_node.id, ancestor.iter)
            elif isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break  # loops outside the enclosing function don't bind here
        return targets

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_library:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.keywords:
                continue
            if not self._is_metric_call(node):
                continue
            loop_targets = self._loop_targets(node)
            for keyword in node.keywords:
                if keyword.arg is None:
                    continue
                if keyword.arg.lower() in self.STACK_LABEL_KEYS:
                    yield self.finding(
                        ctx,
                        node,
                        f"label `{keyword.arg}` names stack identity: one "
                        "series per call site is unbounded cardinality — "
                        "put stacks in `profile` event payloads, not "
                        "metric labels",
                    )
                    continue
                for value in self._unwrap(keyword.value):
                    if (
                        isinstance(value, ast.Attribute)
                        and value.attr in self.STACK_ATTRS
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"label `{keyword.arg}` derives from frame "
                            f"attribute `.{value.attr}`: stack identity "
                            "mints one series per call site — route it "
                            "through `profile` event payloads instead",
                        )
                        break
                    if (
                        isinstance(value, ast.Attribute)
                        and value.attr in self.ID_ATTRS
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"label `{keyword.arg}` derives from identifier "
                            f"attribute `.{value.attr}`: one metric series "
                            "per document is unbounded cardinality",
                        )
                        break
                    if (
                        isinstance(value, ast.Name)
                        and value.id in loop_targets
                        and not self._bounded_iter(loop_targets[value.id])
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"label `{keyword.arg}` takes the per-item loop "
                            f"variable `{value.id}`: series count grows with "
                            "the iterated collection",
                        )
                        break


CONCURRENCY_RULES: List[Rule] = [
    ModuleStateInWorker(),
    UnlockedSharedMutation(),
    ArrayThroughQueue(),
    BlockingQueueCall(),
    UnsanctionedThreadCreation(),
    UnboundedLabelCardinality(),
]
