"""Input/prediction drift detection against committed reference profiles.

A serving path that quietly starts seeing different resumes — longer
sentences, unfamiliar vocabulary, a new layout — degrades long before
anyone re-runs an evaluation.  This module captures a
:class:`ReferenceProfile` (a set of named distributions) from a trusted
corpus or run, then scores fresh batches against it with PSI and KL
divergence.

Profiles hold two kinds of feature distribution:

* **histogram** — fixed bin edges with an overflow bin (sentence lengths,
  normalised bbox geometry, per-sentence OOV rates, CRF/softmax
  confidences).  Candidates are binned with the *reference's* edges so
  the two distributions stay comparable.
* **categorical** — label frequencies (predicted block tags, NER tags).

Scores follow the standard PSI reading: under ``0.1`` stable, ``0.1`` to
``0.25`` moderate shift, above ``0.25`` drifted.  Empty references score
as ``no-reference`` and empty candidates as ``no-data`` — never a
division by zero; disjoint distributions produce a large finite PSI via
proportion smoothing.  Features where either side holds fewer than
``min_samples`` observations score ``low-data`` (PSI still reported but
never flagged) — a four-document histogram is noise, not evidence.

Live monitoring::

    reference = profile_documents(train_docs, featurizer=featurizer)
    monitor = DriftMonitor(reference, check_every=64)
    with obs.telemetry(run_log="serve.jsonl", drift=monitor):
        classifier.predict_batch(incoming)   # feeds the monitor

Both ``predict_batch`` paths feed an installed monitor automatically;
every ``check_every`` observations the monitor scores its rolling window,
emits a ``drift`` event into the run log, and updates the
``drift.psi{feature=...}`` gauges so alert rules can watch them.

One-shot checking::

    report = check(reference, {"sentence_length": lengths})
    if not report.ok:
        ...
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "DEFAULT_EDGES",
    "DEFAULT_MIN_SAMPLES",
    "DriftMonitor",
    "DriftReport",
    "FeatureProfile",
    "ReferenceProfile",
    "check",
    "document_observations",
    "ner_observations",
    "profile_documents",
    "profile_ner_examples",
    "psi",
    "kl_divergence",
]

#: Smallest proportion a bin may take when scoring — keeps PSI/KL finite
#: on disjoint distributions.
_EPSILON = 1e-4

#: PSI thresholds: ``(moderate, drifted)``.
DEFAULT_THRESHOLDS = (0.1, 0.25)

#: Below this many observations on either side a feature scores
#: ``low-data`` instead of being judged — PSI over a handful of points
#: flags noise as drift.
DEFAULT_MIN_SAMPLES = 20

#: Default bin edges per histogram feature (values beyond the last edge
#: land in the overflow bin).
DEFAULT_EDGES: Dict[str, Tuple[float, ...]] = {
    "sentence_length": (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48),
    "sentences_per_doc": (2, 4, 8, 12, 16, 24, 32, 48, 64),
    "word_count": (4, 8, 16, 32, 64, 96, 128, 192),
    "bbox_height": tuple(i / 20 for i in range(1, 11)),
    "bbox_y_center": tuple(i / 10 for i in range(1, 11)),
    "token_oov_rate": tuple(i / 10 for i in range(1, 11)),
    "crf_confidence": tuple(i / 10 for i in range(1, 11)),
    "ner_confidence": tuple(i / 10 for i in range(1, 11)),
}


@dataclass
class FeatureProfile:
    """One feature's distribution: histogram bins or categorical counts."""

    kind: str  # "histogram" | "categorical"
    edges: Tuple[float, ...] = ()
    counts: List[float] = field(default_factory=list)
    categories: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        if self.kind == "histogram":
            return float(sum(self.counts))
        return float(sum(self.categories.values()))

    def to_dict(self) -> Dict[str, object]:
        if self.kind == "histogram":
            return {
                "kind": self.kind,
                "edges": list(self.edges),
                "counts": list(self.counts),
            }
        return {"kind": self.kind, "categories": dict(self.categories)}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FeatureProfile":
        kind = str(payload.get("kind", "histogram"))
        if kind == "histogram":
            return cls(
                kind="histogram",
                edges=tuple(float(e) for e in payload.get("edges", ())),
                counts=[float(c) for c in payload.get("counts", [])],
            )
        return cls(
            kind="categorical",
            categories={
                str(k): float(v)
                for k, v in dict(payload.get("categories", {})).items()
            },
        )

    # -- building -------------------------------------------------------
    @classmethod
    def histogram(
        cls, edges: Sequence[float], values: Sequence[float] = ()
    ) -> "FeatureProfile":
        profile = cls(
            kind="histogram",
            edges=tuple(float(e) for e in edges),
            counts=[0.0] * (len(edges) + 1),
        )
        profile.extend(values)
        return profile

    @classmethod
    def categorical(cls, labels: Sequence[str] = ()) -> "FeatureProfile":
        profile = cls(kind="categorical")
        profile.extend(labels)
        return profile

    def extend(self, values: Sequence) -> None:
        """Accumulate observations (numbers or labels, matching ``kind``)."""
        if self.kind == "histogram":
            for value in values:
                value = float(value)
                if not math.isfinite(value):
                    continue
                index = len(self.edges)
                for i, edge in enumerate(self.edges):
                    if value <= edge:
                        index = i
                        break
                self.counts[index] += 1.0
        else:
            for label in values:
                label = str(label)
                self.categories[label] = self.categories.get(label, 0.0) + 1.0

    def proportions(
        self, align_with: Optional["FeatureProfile"] = None
    ) -> Tuple[List[float], List[str]]:
        """Smoothed proportion vector (and its bin names).

        For categoricals ``align_with`` fixes the category order so two
        profiles produce comparable vectors (union of both key sets).
        """
        if self.kind == "histogram":
            names = [str(e) for e in self.edges] + ["+Inf"]
            raw = list(self.counts)
        else:
            keys = set(self.categories)
            if align_with is not None:
                keys |= set(align_with.categories)
            names = sorted(keys)
            raw = [self.categories.get(k, 0.0) for k in names]
        total = sum(raw)
        if total <= 0:
            return [], names
        floored = [max(c / total, _EPSILON) for c in raw]
        norm = sum(floored)
        return [p / norm for p in floored], names


class ReferenceProfile:
    """A named set of :class:`FeatureProfile` distributions.

    Serializable (:meth:`to_dict`/:meth:`save`) so a trusted profile can
    live in the repository next to the baseline run log.
    """

    def __init__(
        self,
        features: Optional[Dict[str, FeatureProfile]] = None,
        meta: Optional[Dict[str, object]] = None,
    ):
        self.features: Dict[str, FeatureProfile] = dict(features or {})
        self.meta: Dict[str, object] = dict(meta or {})

    def __contains__(self, feature: str) -> bool:
        return feature in self.features

    def __len__(self) -> int:
        return len(self.features)

    def names(self) -> List[str]:
        return sorted(self.features)

    # -- persistence ----------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "meta": dict(self.meta),
            "features": {
                name: profile.to_dict()
                for name, profile in sorted(self.features.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ReferenceProfile":
        features = {
            str(name): FeatureProfile.from_dict(spec)
            for name, spec in dict(payload.get("features", {})).items()
        }
        return cls(features, meta=dict(payload.get("meta", {})))

    @classmethod
    def template(
        cls,
        features: Sequence[str],
        categorical: Sequence[str] = ("block_label", "ner_label"),
    ) -> "ReferenceProfile":
        """An empty profile tracking ``features`` — the capture template.

        Attach a :class:`DriftMonitor` over a template to a session, run
        trusted traffic through the instrumented predict paths (which
        only feed features the monitor :meth:`~DriftMonitor.wants`), and
        harvest :meth:`DriftMonitor.current_profile` as the real
        reference.
        """
        profiles: Dict[str, FeatureProfile] = {}
        for name in features:
            if name in categorical:
                profiles[name] = FeatureProfile.categorical()
            else:
                edges = DEFAULT_EDGES.get(name, DEFAULT_EDGES["sentence_length"])
                profiles[name] = FeatureProfile.histogram(edges)
        return cls(profiles, meta={"source": "template"})

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "ReferenceProfile":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


# ----------------------------------------------------------------------
# Scores
# ----------------------------------------------------------------------
def psi(reference: FeatureProfile, candidate: FeatureProfile) -> Optional[float]:
    """Population stability index between two aligned distributions.

    ``None`` when either side holds no observations (callers report the
    missing side instead of pretending stability)."""
    p, _ = reference.proportions(align_with=candidate)
    q, _ = candidate.proportions(align_with=reference)
    if not p or not q or len(p) != len(q):
        return None
    return float(sum((a - b) * math.log(a / b) for a, b in zip(p, q)))


def kl_divergence(
    reference: FeatureProfile, candidate: FeatureProfile
) -> Optional[float]:
    """``KL(candidate || reference)`` over the aligned, smoothed bins."""
    p, _ = reference.proportions(align_with=candidate)
    q, _ = candidate.proportions(align_with=reference)
    if not p or not q or len(p) != len(q):
        return None
    return float(sum(b * math.log(b / a) for a, b in zip(p, q)))


@dataclass
class DriftReport:
    """Per-feature drift scores plus the overall verdict."""

    scores: Dict[str, Dict[str, object]]
    thresholds: Tuple[float, float] = DEFAULT_THRESHOLDS

    @property
    def drifted(self) -> List[str]:
        return sorted(
            name for name, entry in self.scores.items()
            if entry.get("status") == "drifted"
        )

    @property
    def ok(self) -> bool:
        return not self.drifted

    def to_fields(self) -> Dict[str, object]:
        """Event payload for the run log."""
        return {
            "ok": self.ok,
            "drifted": self.drifted,
            "thresholds": list(self.thresholds),
            "scores": self.scores,
        }


def check(
    reference: ReferenceProfile,
    observations: Union[Dict[str, Sequence], ReferenceProfile],
    thresholds: Tuple[float, float] = DEFAULT_THRESHOLDS,
    min_samples: int = DEFAULT_MIN_SAMPLES,
) -> DriftReport:
    """Score a batch of observations against a reference profile.

    ``observations`` maps feature names to raw values (binned with the
    reference's edges), or is itself a profile.  Features absent from the
    reference are ignored; reference features with no fresh observations
    score ``no-data``; features where either side has fewer than
    ``min_samples`` observations score ``low-data``.
    """
    if isinstance(observations, ReferenceProfile):
        candidates = observations.features
    else:
        candidates = {}
        for name, values in observations.items():
            spec = reference.features.get(name)
            if spec is None:
                continue
            if spec.kind == "histogram":
                candidates[name] = FeatureProfile.histogram(spec.edges, values)
            else:
                candidates[name] = FeatureProfile.categorical(
                    [str(v) for v in values]
                )
    moderate, drifted = thresholds
    scores: Dict[str, Dict[str, object]] = {}
    for name, spec in reference.features.items():
        candidate = candidates.get(name)
        entry: Dict[str, object] = {
            "n_reference": spec.total,
            "n_candidate": candidate.total if candidate is not None else 0.0,
        }
        if spec.total <= 0:
            entry["status"] = "no-reference"
        elif candidate is None or candidate.total <= 0:
            entry["status"] = "no-data"
        else:
            score = psi(spec, candidate)
            entry["psi"] = score
            entry["kl"] = kl_divergence(spec, candidate)
            if score is None:
                entry["status"] = "no-data"
            elif spec.total < min_samples or candidate.total < min_samples:
                entry["status"] = "low-data"
            elif score > drifted:
                entry["status"] = "drifted"
            elif score > moderate:
                entry["status"] = "moderate"
            else:
                entry["status"] = "ok"
        scores[name] = entry
    return DriftReport(scores=scores, thresholds=thresholds)


# ----------------------------------------------------------------------
# Observation extraction (shared by profile builders and live hooks)
# ----------------------------------------------------------------------
def document_observations(
    documents: Sequence,
    features: Optional[Sequence] = None,
    unk_id: Optional[int] = None,
    predictions: Optional[Sequence[Sequence[str]]] = None,
    confidences: Optional[Sequence[float]] = None,
) -> Dict[str, List]:
    """Raw drift observations from resume documents (+ optional extras).

    ``features`` are the aligned :class:`~repro.core.DocumentFeatures`
    (enables ``token_oov_rate`` when ``unk_id`` is given); ``predictions``
    are sentence-level IOB labels (their bare tags feed ``block_label``);
    ``confidences`` is a flat sequence of per-position CRF confidences.
    """
    observations: Dict[str, List] = {
        "sentence_length": [],
        "sentences_per_doc": [],
        "bbox_height": [],
        "bbox_y_center": [],
    }
    for document in documents:
        observations["sentences_per_doc"].append(document.num_sentences)
        for sentence in document.sentences:
            observations["sentence_length"].append(len(sentence.tokens))
            page = document.page(sentence.page)
            box = sentence.bbox.normalized(page.width, page.height)
            x0, y0, x1, y1 = box.to_tuple()
            observations["bbox_height"].append((y1 - y0) / 1000.0)
            observations["bbox_y_center"].append((y0 + y1) / 2000.0)
    if features is not None and unk_id is not None:
        rates: List[float] = []
        for bundle in features:
            mask = bundle.token_mask > 0
            for row in range(bundle.token_ids.shape[0]):
                valid = mask[row]
                count = int(valid.sum())
                if count:
                    unk = int((bundle.token_ids[row][valid] == unk_id).sum())
                    rates.append(unk / count)
        observations["token_oov_rate"] = rates
    if predictions is not None:
        observations["block_label"] = [
            label if label == "O" else label[2:]
            for labels in predictions
            for label in labels
        ]
    if confidences is not None:
        observations["crf_confidence"] = [float(c) for c in confidences]
    return observations


def ner_observations(
    examples: Sequence,
    predictions: Optional[Sequence[Sequence[str]]] = None,
    confidences: Optional[Sequence[float]] = None,
) -> Dict[str, List]:
    """Raw drift observations from NER examples (word counts, labels)."""
    observations: Dict[str, List] = {
        "word_count": [len(example.words) for example in examples],
    }
    if predictions is not None:
        observations["ner_label"] = [
            label if label == "O" else label[2:]
            for labels in predictions
            for label in labels
        ]
    if confidences is not None:
        observations["ner_confidence"] = [float(c) for c in confidences]
    return observations


def _build_profile(
    observations: Dict[str, Sequence],
    meta: Dict[str, object],
    categorical: Sequence[str] = ("block_label", "ner_label"),
) -> ReferenceProfile:
    features: Dict[str, FeatureProfile] = {}
    for name, values in observations.items():
        if name in categorical:
            features[name] = FeatureProfile.categorical([str(v) for v in values])
        else:
            edges = DEFAULT_EDGES.get(name, DEFAULT_EDGES["sentence_length"])
            features[name] = FeatureProfile.histogram(edges, values)
    return ReferenceProfile(features, meta=meta)


def profile_documents(
    documents: Sequence,
    featurizer=None,
    predictions: Optional[Sequence[Sequence[str]]] = None,
    confidences: Optional[Sequence[float]] = None,
) -> ReferenceProfile:
    """Capture a reference profile from a trusted document corpus.

    ``featurizer`` (a :class:`repro.core.Featurizer`) enables the
    ``token_oov_rate`` feature; ``predictions``/``confidences`` fold the
    model's own output distributions in, so serving-time prediction drift
    is detectable too.
    """
    features = None
    unk_id = None
    if featurizer is not None:
        features = [featurizer.featurize(d) for d in documents]
        unk_id = featurizer.tokenizer.vocab.unk_id
    observations = document_observations(
        documents,
        features=features,
        unk_id=unk_id,
        predictions=predictions,
        confidences=confidences,
    )
    return _build_profile(
        observations, meta={"source": "documents", "count": len(documents)}
    )


def profile_ner_examples(
    examples: Sequence,
    predictions: Optional[Sequence[Sequence[str]]] = None,
    confidences: Optional[Sequence[float]] = None,
) -> ReferenceProfile:
    """Capture a reference profile from trusted NER examples."""
    observations = ner_observations(
        examples, predictions=predictions, confidences=confidences
    )
    return _build_profile(
        observations, meta={"source": "ner_examples", "count": len(examples)}
    )


# ----------------------------------------------------------------------
# Live monitor
# ----------------------------------------------------------------------
class DriftMonitor:
    """Rolling-window drift watcher attached to a telemetry session.

    Instrumented predict paths call :meth:`observe` with fresh raw
    observations; every ``check_every`` observations the monitor scores
    its window against the reference, emits a ``drift`` event through the
    active session, and updates the ``drift.psi{feature=...}`` gauges.
    Only features present in the reference are tracked — instrumentation
    can probe :meth:`wants` before paying for an expensive signal (e.g.
    CRF marginals).
    """

    def __init__(
        self,
        reference: ReferenceProfile,
        window: int = 512,
        check_every: int = 64,
        thresholds: Tuple[float, float] = DEFAULT_THRESHOLDS,
        min_samples: int = DEFAULT_MIN_SAMPLES,
    ):
        if window <= 0 or check_every <= 0:
            raise ValueError("window and check_every must be positive")
        self.reference = reference
        self.window = window
        self.check_every = check_every
        self.thresholds = thresholds
        self.min_samples = min_samples
        self.last_report: Optional[DriftReport] = None
        self.checks = 0
        self._values: Dict[str, Deque] = {
            name: deque(maxlen=window) for name in reference.features
        }
        self._since_check = 0

    def wants(self, feature: str) -> bool:
        """Whether the reference tracks ``feature`` (skip costly signals)."""
        return feature in self._values

    # -- feeding --------------------------------------------------------
    def observe(self, observations: Dict[str, Sequence]) -> Optional[DriftReport]:
        """Fold fresh observations in; returns a report when a check ran."""
        added = 0
        for name, values in observations.items():
            buffer = self._values.get(name)
            if buffer is None:
                continue
            for value in values:
                buffer.append(value)
                added += 1
        if not added:
            return None
        self._since_check += added
        if self._since_check >= self.check_every:
            self._since_check = 0
            return self.run_check()
        return None

    # -- checking -------------------------------------------------------
    def current_observations(self) -> Dict[str, List]:
        """The rolling window's raw values per feature."""
        return {name: list(buffer) for name, buffer in self._values.items()}

    def current_profile(self) -> ReferenceProfile:
        """The rolling window as a profile (capture-from-a-run path)."""
        report = _build_profile(
            self.current_observations(), meta={"source": "monitor"}
        )
        return report

    def run_check(self) -> DriftReport:
        """Score the rolling window now; publishes to the active session."""
        report = check(
            self.reference,
            self.current_observations(),
            self.thresholds,
            min_samples=self.min_samples,
        )
        self.checks += 1
        self.last_report = report
        self._publish(report)
        return report

    def _publish(self, report: DriftReport) -> None:
        from . import get_telemetry  # local import: obs.__init__ imports us

        telemetry = get_telemetry()
        if telemetry is None:
            return
        telemetry.event("drift", **report.to_fields())
        telemetry.metrics.counter("drift.checks").inc()
        if not report.ok:
            telemetry.metrics.counter("drift.flags").inc(
                amount=len(report.drifted)
            )
        for name, entry in report.scores.items():
            score = entry.get("psi")
            if isinstance(score, (int, float)):
                # Feature names are bounded by the drift profile's fixed
                # schema, not per-document data — bounded cardinality.
                # repro-lint: disable=RN012
                telemetry.metrics.gauge("drift.psi").set(score, feature=name)
