"""Structured JSONL run logging.

A :class:`RunLogger` streams one JSON object per line to a file as a run
progresses — crash-safe (each line is flushed), append-friendly, and
readable with nothing but ``json.loads``.  Event kinds:

``run_start``
    Opens the run; carries the explicit ``config`` and ``seeds`` so a log
    is self-describing and the run is reproducible from its first line.
``step`` / ``epoch`` / ``eval``
    Training progress: per-step losses and gradient norms, per-epoch
    aggregates, held-out evaluations.
``span``
    A finished :class:`repro.obs.tracing.Span` (streamed by the telemetry
    session's tracer).
``metric_snapshot``
    A full :meth:`repro.obs.MetricsRegistry.snapshot` dump.
``profile``
    A flush of the sampling profiler: collapsed stacks, hot functions,
    span self-time and memory watermarks (see :mod:`repro.obs.profiler`).
``worker_step``
    One task executed by a :mod:`repro.parallel` worker, timed and
    timestamped *in the worker* and relayed into the parent log.
``run_end``
    Closes the run with a status and total wall time.

Every record carries ``event``, ``ts`` (wall-clock epoch seconds) and
``elapsed`` (monotonic seconds since the logger was opened) — except
records forwarded through :meth:`RunLogger.relay`, which keep the
``ts``/``elapsed`` their originating process stamped.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, IO, List, Optional, Tuple, Union

__all__ = ["RunLogger", "read_run_log", "tail_events", "write_json"]


def _json_default(value):
    """Serialize numpy scalars/arrays (and other oddballs) sanely."""
    for attr in ("item",):  # numpy scalar -> python scalar
        if hasattr(value, attr) and not hasattr(value, "__len__"):
            return value.item()
    if hasattr(value, "tolist"):  # numpy array -> list
        return value.tolist()
    return str(value)


def write_json(path: str, payload: Dict[str, object], indent: int = 2) -> None:
    """Write one JSON document with the run-log serializer.

    The benchmark suites emit their ``BENCH_*.json`` reports through this
    exporter so numpy scalars in metric snapshots and span attributes never
    poison the dump.
    """
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=indent, default=_json_default)
        handle.write("\n")


def read_run_log(path: str) -> List[Dict[str, object]]:
    """Parse a run-log JSONL file back into a list of event dicts."""
    events: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def tail_events(
    path: str, offset: int = 0
) -> Tuple[List[Dict[str, object]], int]:
    """Events appended past byte ``offset``; returns ``(events, offset')``.

    The incremental half of :func:`read_run_log`, for polling a *live*
    log (``repro.obs.report --follow``, like the relay's spool reader):
    only byte ranges terminated by a newline are consumed, so a writer
    caught mid-line keeps its partial record for the next poll instead
    of poisoning this one.  A missing file reads as "no new events yet".
    """
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            data = handle.read()
    except OSError:
        return [], offset
    end = data.rfind(b"\n")
    if end < 0:
        return [], offset
    chunk = data[: end + 1]
    events: List[Dict[str, object]] = []
    for line in chunk.splitlines():
        line = line.strip()
        if line:
            events.append(json.loads(line.decode("utf-8")))
    return events, offset + len(chunk)


class RunLogger:
    """Streams structured run events to a JSONL file (thread-safe).

    Use as a context manager for automatic ``run_start``/``run_end``::

        with RunLogger("run.jsonl", config={...}, seeds={"trainer": 0}) as log:
            log.step(1, losses={"crf": 1.7}, grad_norm=3.2)

    or drive :meth:`run_start` / :meth:`run_end` manually.  ``config`` and
    ``seeds`` are captured verbatim on ``run_start`` so the log's first
    line fully describes the run.
    """

    def __init__(
        self,
        path: Union[str, IO[str]],
        config: Optional[Dict[str, object]] = None,
        seeds: Optional[Dict[str, object]] = None,
        run_id: Optional[str] = None,
    ):
        self._lock = threading.Lock()
        self._owns_handle = isinstance(path, str)
        self.path = path if self._owns_handle else getattr(path, "name", None)
        self._handle: IO[str] = (
            open(path, "w", encoding="utf-8") if self._owns_handle else path
        )
        self._opened = time.perf_counter()
        self.run_id = run_id or f"run-{int(time.time() * 1000):x}"
        self.config = dict(config or {})
        self.seeds = dict(seeds or {})
        self._started = False
        self._ended = False
        self.events_written = 0

    # ------------------------------------------------------------------
    def event(self, kind: str, **fields) -> Dict[str, object]:
        """Write one event line; returns the record that was written."""
        record: Dict[str, object] = {
            "event": kind,
            "ts": time.time(),
            "elapsed": time.perf_counter() - self._opened,
        }
        record.update(fields)
        line = json.dumps(record, default=_json_default)
        with self._lock:
            if self._handle.closed:
                return record
            self._handle.write(line + "\n")
            self._handle.flush()
            self.events_written += 1
        return record

    def relay(self, record: Dict[str, object]) -> Dict[str, object]:
        """Write an already-stamped record from another process verbatim.

        The cross-process fan-in path (:mod:`repro.obs.relay`): worker
        events keep their original ``ts``/``elapsed`` so the merged log
        preserves true wall-clock ordering instead of collapsing every
        worker event onto the merge instant.
        """
        line = json.dumps(record, default=_json_default)
        with self._lock:
            if self._handle.closed:
                return record
            self._handle.write(line + "\n")
            self._handle.flush()
            self.events_written += 1
        return record

    # -- lifecycle ------------------------------------------------------
    def run_start(self, **fields) -> Dict[str, object]:
        """Open the run: records run id, config and seeds."""
        self._started = True
        return self.event(
            "run_start",
            run_id=self.run_id,
            config=self.config,
            seeds=self.seeds,
            **fields,
        )

    def run_end(self, status: str = "ok", **fields) -> Dict[str, object]:
        """Close the run (idempotent); records status and total seconds."""
        if self._ended:
            return {}
        self._ended = True
        return self.event(
            "run_end",
            run_id=self.run_id,
            status=status,
            total_seconds=time.perf_counter() - self._opened,
            **fields,
        )

    def close(self) -> None:
        """Write ``run_end`` if pending and close the owned file handle."""
        if self._started and not self._ended:
            self.run_end()
        if self._owns_handle and not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "RunLogger":
        self.run_start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._started and not self._ended:
            self.run_end(
                status="ok" if exc_type is None else "error",
                **({} if exc_type is None else {"error": exc_type.__name__}),
            )
        self.close()

    # -- typed events ---------------------------------------------------
    def step(self, step: int, losses: Optional[Dict[str, float]] = None,
             **fields) -> Dict[str, object]:
        """One optimizer step: losses and whatever else the trainer knows."""
        return self.event("step", step=int(step), losses=losses or {}, **fields)

    def epoch(self, epoch: int, **fields) -> Dict[str, object]:
        """End-of-epoch aggregate."""
        return self.event("epoch", epoch=int(epoch), **fields)

    def eval(self, **fields) -> Dict[str, object]:
        """A held-out evaluation result."""
        return self.event("eval", **fields)

    def span(self, span) -> Dict[str, object]:
        """A finished :class:`repro.obs.tracing.Span`."""
        return self.event("span", **span.to_dict())

    def metric_snapshot(self, registry) -> Dict[str, object]:
        """A full metrics-registry dump."""
        return self.event("metric_snapshot", metrics=registry.snapshot())
