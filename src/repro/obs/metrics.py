"""Metrics registry: counters, gauges, histograms and timers.

The registry is the numeric half of :mod:`repro.obs` (spans are the other
half).  Every metric supports *labeled series*: ``counter.inc(path="hit")``
and ``counter.inc(path="miss")`` write to two independent series under one
metric name, the Prometheus data model scaled down to a single process.

Concurrency follows the same discipline as :func:`repro.nn.no_grad`: shared
mutable state is guarded explicitly (here a per-metric ``threading.Lock``;
there a ``contextvars.ContextVar``), so trainer threads and inference
threads can write the same registry without torn updates.

Snapshot semantics: :meth:`MetricsRegistry.snapshot` returns plain dicts
(JSON-ready), :meth:`MetricsRegistry.reset` zeroes every series in place,
and :meth:`MetricsRegistry.to_jsonl` streams one line per series for
offline aggregation.
"""

from __future__ import annotations

import json
import re
import threading
import time
from typing import Dict, IO, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "validate_exposition",
]

#: Fixed bucket boundaries for latency histograms (seconds) — roughly
#: geometric from 100µs to 30s, the range a numpy-substrate model step or
#: batched predict call can plausibly land in.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    """Canonical hashable key for a label set (sorted, stringified)."""
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Metric:
    """Base class: a named family of labeled series behind one lock."""

    kind = "metric"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._series: Dict[LabelKey, object] = {}

    # -- internals ------------------------------------------------------
    def _zero(self):
        raise NotImplementedError

    def _series_value(self, state) -> object:
        """JSON-ready value for one series state."""
        return state

    # -- shared API -----------------------------------------------------
    def labels(self) -> List[Dict[str, str]]:
        """Label sets of every live series."""
        with self._lock:
            return [dict(key) for key in self._series]

    def reset(self) -> None:
        """Drop every series (counts restart from zero)."""
        with self._lock:
            self._series.clear()

    def snapshot(self) -> Dict[str, object]:
        """``{"name", "kind", "help", "series": [{"labels", "value"}]}``."""
        with self._lock:
            series = [
                {"labels": dict(key), "value": self._series_value(state)}
                for key, state in sorted(self._series.items())
            ]
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "series": series,
        }


class Counter(_Metric):
    """Monotonically increasing count, one float per label set."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (must be >= 0) to the labeled series."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        """Current total of the labeled series (0.0 if never written)."""
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))


class Gauge(_Metric):
    """Last-write-wins instantaneous value, one float per label set."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        """Record the current value of the labeled series."""
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Adjust the labeled series by ``amount`` (may be negative)."""
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        """Latest value of the labeled series (0.0 if never written)."""
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))


class _HistogramState:
    __slots__ = ("counts", "count", "total", "minimum", "maximum")

    def __init__(self, num_buckets: int):
        self.counts = [0] * (num_buckets + 1)  # +1 for the overflow bucket
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")


class Histogram(_Metric):
    """Fixed-boundary histogram with count/sum/min/max per label set.

    ``buckets`` are upper bounds (inclusive); observations beyond the last
    boundary land in an implicit overflow bucket.  Boundaries are fixed at
    construction — cumulative counts stay comparable across snapshots.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted non-empty list")
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)

    def observe(self, value: float, **labels) -> None:
        """Record one observation into the labeled series."""
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        key = _label_key(labels)
        with self._lock:
            state = self._series.get(key)
            if state is None:
                state = self._series[key] = _HistogramState(len(self.buckets))
            state.counts[index] += 1
            state.count += 1
            state.total += value
            state.minimum = min(state.minimum, value)
            state.maximum = max(state.maximum, value)

    def value(self, **labels) -> Dict[str, object]:
        """Snapshot of one labeled series (zeros if never written)."""
        with self._lock:
            state = self._series.get(_label_key(labels))
            if state is None:
                state = _HistogramState(len(self.buckets))
            return self._series_value(state)

    def percentile(self, q: float, **labels) -> float:
        """Bucket-interpolated percentile estimate (``q`` in [0, 100]).

        Linear interpolation inside the bucket holding the target rank;
        the first bucket's lower bound is the observed minimum and the
        overflow bucket's upper bound the observed maximum, so estimates
        never leave the observed range.  Empty series estimate 0.0.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile q must be in [0, 100]")
        with self._lock:
            state = self._series.get(_label_key(labels))
            if state is None:
                return 0.0
            return self._estimate_percentile(state, q)

    def _estimate_percentile(self, state: _HistogramState, q: float) -> float:
        if state.count == 0:
            return 0.0
        target = (q / 100.0) * state.count
        cumulative = 0
        for index, bucket_count in enumerate(state.counts):
            if bucket_count and cumulative + bucket_count >= target:
                lower = state.minimum if index == 0 else self.buckets[index - 1]
                upper = (
                    state.maximum
                    if index == len(self.buckets)
                    else self.buckets[index]
                )
                fraction = max(target - cumulative, 0.0) / bucket_count
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, state.minimum), state.maximum)
            cumulative += bucket_count
        return state.maximum

    def _series_value(self, state: _HistogramState) -> Dict[str, object]:
        return {
            "count": state.count,
            "sum": state.total,
            "mean": state.total / state.count if state.count else 0.0,
            "min": state.minimum if state.count else 0.0,
            "max": state.maximum if state.count else 0.0,
            "p50": self._estimate_percentile(state, 50.0),
            "p95": self._estimate_percentile(state, 95.0),
            "p99": self._estimate_percentile(state, 99.0),
            "buckets": {
                **{str(b): c for b, c in zip(self.buckets, state.counts)},
                "+Inf": state.counts[-1],
            },
        }

    def merge_value(self, value: Dict[str, object], **labels) -> None:
        """Fold one snapshot series (another process's state) into this one.

        The relay's histogram path: a child registry's snapshot carries
        per-bucket counts, sum, min and max — adding them bucket-by-bucket
        is exact as long as the boundaries match (checked; boundaries are
        construction-fixed on both sides).
        """
        buckets = dict(value.get("buckets") or {})
        expected = {str(b) for b in self.buckets} | {"+Inf"}
        if set(buckets) != expected:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: snapshot buckets "
                f"{sorted(buckets)} do not match {sorted(expected)}"
            )
        count = int(value.get("count", 0))
        key = _label_key(labels)
        with self._lock:
            state = self._series.get(key)
            if state is None:
                state = self._series[key] = _HistogramState(len(self.buckets))
            for index, bound in enumerate(self.buckets):
                state.counts[index] += int(buckets[str(bound)])
            state.counts[-1] += int(buckets["+Inf"])
            state.count += count
            state.total += float(value.get("sum", 0.0))
            if count:
                state.minimum = min(state.minimum, float(value.get("min", 0.0)))
                state.maximum = max(state.maximum, float(value.get("max", 0.0)))


class Timer(Histogram):
    """A latency histogram with a ``time()`` context manager.

    ``with timer.time(stage="encode"): ...`` observes the block's
    monotonic-clock duration in seconds into the underlying histogram.
    """

    kind = "timer"

    def time(self, **labels) -> "_TimerContext":
        """Context manager observing the wrapped block's wall time."""
        return _TimerContext(self, labels)


class _TimerContext:
    __slots__ = ("_timer", "_labels", "_started")

    def __init__(self, timer: Timer, labels: Dict[str, object]):
        self._timer = timer
        self._labels = labels
        self._started = 0.0

    def __enter__(self) -> "_TimerContext":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._timer.observe(time.perf_counter() - self._started, **self._labels)


def _prometheus_name(name: str) -> str:
    """Sanitise a metric name for the Prometheus exposition grammar."""
    sanitised = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if sanitised and sanitised[0].isdigit():
        sanitised = "_" + sanitised
    return sanitised


def _escape_label_value(value: object) -> str:
    """Label-value escaping per the exposition format: ``\\`` first (so
    the escapes it introduces are never re-escaped), then ``"`` and
    literal newlines."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """``# HELP`` escaping: only ``\\`` and newlines are special there
    (quotes pass through verbatim, unlike label values)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _prometheus_labels(labels: Dict[str, str]) -> str:
    """``{key="value",...}`` with sorted keys and escaped values."""
    if not labels:
        return ""
    parts = []
    for key in sorted(labels):
        parts.append(f'{_prometheus_name(key)}="{_escape_label_value(labels[key])}"')
    return "{" + ",".join(parts) + "}"


def _format_float(value: float) -> str:
    """Float rendering for exposition samples (``repr``-exact, no padding)."""
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return f"{value:.1f}"
    return repr(value)


class MetricsRegistry:
    """Get-or-create home for every metric of one telemetry session.

    ``registry.counter("cache.hits")`` returns the same :class:`Counter`
    on every call; asking for an existing name with a different kind (or a
    histogram with different buckets) raises — silent shadowing would
    corrupt series.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    # -- get-or-create --------------------------------------------------
    def _get(self, cls, name: str, help: str, **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, help, **kwargs)
            elif type(metric) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"not {cls.kind}"
                )
            elif help and not metric.help:
                # Backfill: the first caller often creates the series on a
                # hot path without docs; a later declaration site (an SLO,
                # a server) may supply the # HELP text.
                metric.help = help
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the named :class:`Counter`."""
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the named :class:`Gauge`."""
        return self._get(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Get or create the named :class:`Histogram` (fixed boundaries)."""
        metric = self._get(Histogram, name, help, buckets=buckets)
        if metric.buckets != tuple(float(b) for b in buckets):
            raise ValueError(f"metric {name!r} exists with different buckets")
        return metric

    def timer(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Timer:
        """Get or create the named :class:`Timer`."""
        metric = self._get(Timer, name, help, buckets=buckets)
        if metric.buckets != tuple(float(b) for b in buckets):
            raise ValueError(f"metric {name!r} exists with different buckets")
        return metric

    # -- introspection / export -----------------------------------------
    def __iter__(self) -> Iterator[_Metric]:
        with self._lock:
            metrics = list(self._metrics.values())
        return iter(metrics)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def names(self) -> List[str]:
        """Sorted names of every registered metric."""
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready dump: ``{name: metric.snapshot()}``."""
        return {metric.name: metric.snapshot() for metric in self}

    def reset(self) -> None:
        """Zero every series of every metric (names stay registered)."""
        for metric in self:
            metric.reset()

    def merge_snapshot(
        self,
        snapshot: Dict[str, Dict[str, object]],
        extra_labels: Optional[Dict[str, object]] = None,
    ) -> int:
        """Fold another registry's :meth:`snapshot` into this one.

        The relay's fan-in primitive: a worker process snapshots its child
        registry into its spool and the parent merges it here, usually
        with ``extra_labels={"worker": "0"}`` so every relayed series is
        distinguishable.  Counters add, gauges last-write-win, histograms
        and timers merge bucket-exactly (matching boundaries required).
        Returns the number of series merged.
        """
        extra = dict(extra_labels or {})
        merged = 0
        for name, dump in snapshot.items():
            kind = dump.get("kind")
            help_text = str(dump.get("help", ""))
            for series in dump.get("series", []):
                labels = dict(series.get("labels") or {})
                labels.update(extra)
                value = series.get("value")
                if kind == "counter":
                    self.counter(name, help_text).inc(float(value), **labels)
                elif kind == "gauge":
                    self.gauge(name, help_text).set(float(value), **labels)
                elif kind in ("histogram", "timer"):
                    bounds = sorted(
                        float(b) for b in (value.get("buckets") or {})
                        if b != "+Inf"
                    )
                    factory = self.timer if kind == "timer" else self.histogram
                    factory(name, help_text, buckets=bounds).merge_value(
                        value, **labels
                    )
                else:
                    continue
                merged += 1
        return merged

    def to_prometheus(self) -> str:
        """Prometheus text-exposition dump of every series (version 0.0.4).

        Stdlib-only so a serving tier's ``/metrics`` endpoint is a
        one-liner.  Conventions: metric names sanitised to
        ``[a-zA-Z0-9_:]`` (dots become underscores), counters gain the
        ``_total`` suffix, timers export as histograms, histogram buckets
        are *cumulative* with a closing ``+Inf``, label keys sorted, and
        metrics emitted in name order — byte-stable output for a given
        registry state (the golden-file test pins it).
        """
        lines: List[str] = []
        for metric in sorted(self, key=lambda m: m.name):
            dump = metric.snapshot()
            kind = dump["kind"]
            name = _prometheus_name(dump["name"])
            prom_kind = "histogram" if kind == "timer" else kind
            if dump["help"]:
                lines.append(f"# HELP {name} {_escape_help(dump['help'])}")
            lines.append(f"# TYPE {name} {prom_kind}")
            for series in dump["series"]:
                labels = series["labels"]
                value = series["value"]
                if prom_kind == "histogram":
                    cumulative = 0
                    for bound in metric.buckets:
                        cumulative += value["buckets"][str(bound)]
                        bucket_labels = dict(labels, le=_format_float(bound))
                        lines.append(
                            f"{name}_bucket{_prometheus_labels(bucket_labels)}"
                            f" {cumulative}"
                        )
                    lines.append(
                        f"{name}_bucket{_prometheus_labels(dict(labels, le='+Inf'))}"
                        f" {value['count']}"
                    )
                    lines.append(
                        f"{name}_sum{_prometheus_labels(labels)}"
                        f" {_format_float(value['sum'])}"
                    )
                    lines.append(
                        f"{name}_count{_prometheus_labels(labels)}"
                        f" {value['count']}"
                    )
                else:
                    sample = name + ("_total" if prom_kind == "counter" else "")
                    lines.append(
                        f"{sample}{_prometheus_labels(labels)}"
                        f" {_format_float(value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def validate_exposition(self) -> List[str]:
        """Format-check this registry's own exposition (empty = valid)."""
        return validate_exposition(self.to_prometheus())

    def to_jsonl(self, destination: Union[str, IO[str]]) -> int:
        """Write one JSON line per labeled series; returns lines written.

        ``destination`` is a path (created/truncated) or an open handle.
        """
        lines = 0
        handle: IO[str]
        close = isinstance(destination, str)
        handle = open(destination, "w", encoding="utf-8") if close else destination
        try:
            for metric in self:
                dump = metric.snapshot()
                for series in dump["series"]:
                    record = {
                        "name": dump["name"],
                        "kind": dump["kind"],
                        "labels": series["labels"],
                        "value": series["value"],
                    }
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
                    lines += 1
        finally:
            if close:
                handle.close()
        return lines


# ----------------------------------------------------------------------
# Exposition format checker
# ----------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\.)*",?)*)\})?'
    r' (?P<value>[^ ]+)(?: (?P<timestamp>-?[0-9]+))?$'
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\.)*)"')
_TYPE_KINDS = ("counter", "gauge", "histogram", "summary", "untyped")


def _unescape_label_value(value: str) -> str:
    return (
        value.replace("\\\\", "\x00")
        .replace('\\"', '"')
        .replace("\\n", "\n")
        .replace("\x00", "\\")
    )


def validate_exposition(text: str) -> List[str]:
    """Check a Prometheus text-exposition document; returns found errors.

    A pure-stdlib subset of ``promtool check metrics`` covering what a
    torn or malformed scrape would violate:

    * every non-comment line parses as ``name{labels} value`` with legal
      metric/label names, properly quoted+escaped label values, and a
      float-parseable value;
    * ``# TYPE`` lines name a known kind and appear at most once per
      metric, before that metric's first sample;
    * histogram ``_bucket`` series are cumulative — counts never decrease
      as ``le`` grows, a ``+Inf`` bucket exists, and it equals the
      family's ``_count`` sample for the same label set.

    An empty list means the document is valid.  Concurrent-scrape tests
    run every response through this, so a half-written series or an
    unescaped label value fails loudly.
    """
    errors: List[str] = []
    typed: Dict[str, str] = {}
    sampled: set = set()
    # (family, frozen non-le labels) -> [(le, value)]
    buckets: Dict[Tuple[str, LabelKey], List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[str, LabelKey], float] = {}

    for number, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3:
                    errors.append(f"line {number}: bare # {parts[1]} line")
                    continue
                name = parts[2]
                if not re.fullmatch(r"[a-zA-Z_:][a-zA-Z0-9_:]*", name):
                    errors.append(
                        f"line {number}: invalid metric name {name!r}"
                    )
                if parts[1] == "TYPE":
                    kind = parts[3].strip() if len(parts) > 3 else ""
                    if kind not in _TYPE_KINDS:
                        errors.append(
                            f"line {number}: unknown TYPE {kind!r} for {name}"
                        )
                    if name in typed:
                        errors.append(
                            f"line {number}: duplicate TYPE for {name}"
                        )
                    if name in sampled:
                        errors.append(
                            f"line {number}: TYPE for {name} after its samples"
                        )
                    typed[name] = kind
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            errors.append(f"line {number}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        sampled.add(name)
        raw_value = match.group("value")
        try:
            value = float(raw_value)
        except ValueError:
            if raw_value not in ("+Inf", "-Inf", "NaN"):
                errors.append(
                    f"line {number}: unparseable value {raw_value!r}"
                )
            value = float("nan")
        labels: Dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            consumed = sum(
                len(m.group(0)) for m in _LABEL_RE.finditer(raw_labels)
            )
            pairs = _LABEL_RE.findall(raw_labels)
            if consumed + max(len(pairs) - 1, 0) < len(raw_labels.rstrip(",")):
                errors.append(
                    f"line {number}: malformed label block {{{raw_labels}}}"
                )
            labels = {
                key: _unescape_label_value(val) for key, val in pairs
            }
        if name.endswith("_bucket") and "le" in labels:
            family = name[: -len("_bucket")]
            le_raw = labels.pop("le")
            le = float("inf") if le_raw == "+Inf" else float(le_raw)
            buckets.setdefault((family, _label_key(labels)), []).append(
                (le, value)
            )
        elif name.endswith("_count"):
            family = name[: -len("_count")]
            counts[(family, _label_key(labels))] = value

    for (family, key), series in buckets.items():
        where = f"{family}{{{dict(key)}}}" if key else family
        ordered = sorted(series)
        values = [count for _, count in ordered]
        if values != sorted(values):
            errors.append(f"{where}: bucket counts not cumulative")
        if not ordered or ordered[-1][0] != float("inf"):
            errors.append(f"{where}: histogram lacks a +Inf bucket")
        elif (family, key) in counts and ordered[-1][1] != counts[(family, key)]:
            errors.append(
                f"{where}: +Inf bucket {ordered[-1][1]} != _count "
                f"{counts[(family, key)]}"
            )
    return errors
