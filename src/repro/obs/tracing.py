"""Span tracing: nested wall-time regions with parent links and attributes.

A :class:`Span` is one timed region — monotonic-clock start/duration, a
globally unique id, the id of the enclosing span (``parent_id``), free-form
attributes, and an ``ok``/``error`` status recorded even when the region
unwinds through an exception.

The *current* span is tracked per execution context (the same
``contextvars`` discipline as :func:`repro.nn.no_grad`), so concurrent
threads or asyncio tasks each build their own correctly-nested span stack
while appending to one shared :class:`Tracer`.

This module subsumes the old :class:`repro.eval.timing.StageProfile`,
which is now a thin shim over a private :class:`Tracer`.
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from functools import wraps
from typing import Callable, Dict, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "current_span",
    "enable_span_thread_tracking",
    "disable_span_thread_tracking",
    "span_stacks_snapshot",
    "enable_span_ring",
    "disable_span_ring",
    "span_ring_snapshot",
]

#: Globally unique span ids — shared across tracers so parent links remain
#: unambiguous even when a private tracer (e.g. a StageProfile shim) nests
#: around spans of the installed telemetry session.
_SPAN_IDS = itertools.count(1)

#: The innermost open span of the current execution context.
_CURRENT_SPAN: contextvars.ContextVar[Optional["Span"]] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

#: Cross-thread span visibility for the sampling profiler.  A ContextVar
#: is only readable from its own execution context, so when a profiler is
#: active every span enter/exit *additionally* maintains this thread-id →
#: open-span-stack map.  The feature is reference-counted and off by
#: default: the disabled cost at every span boundary is a single module
#: global truthiness check (``if _TRACKING:``), preserving the obs
#: fast-path discipline.
_THREAD_STACKS: Dict[int, List["Span"]] = {}
_TRACKING = False
_TRACKING_COUNT = 0
_TRACKING_LOCK = threading.Lock()


def enable_span_thread_tracking() -> None:
    """Start mirroring every context's span stack into a thread-id map.

    Reference-counted: each profiler (parent and nested) enables on start
    and disables on stop; tracking stays on until the last one leaves.
    """
    global _TRACKING, _TRACKING_COUNT
    with _TRACKING_LOCK:
        _TRACKING_COUNT += 1
        _TRACKING = True


def disable_span_thread_tracking() -> None:
    """Drop one tracking reference; clears the map when none remain."""
    global _TRACKING, _TRACKING_COUNT
    with _TRACKING_LOCK:
        _TRACKING_COUNT = max(0, _TRACKING_COUNT - 1)
        if _TRACKING_COUNT == 0:
            _TRACKING = False
            _THREAD_STACKS.clear()


#: Bounded ring of recently *completed* spans, feeding the telemetry
#: server's ``GET /trace`` endpoint.  Same discipline as the profiler's
#: thread-stack map: off by default, reference-counted, and the disabled
#: cost at every span finish is one module-global ``is None`` check.
#: ``deque.append`` with a maxlen is atomic under the GIL, so writers
#: never take a lock.
_SPAN_RING: Optional["deque"] = None
_RING_COUNT = 0
_RING_LOCK = threading.Lock()


def enable_span_ring(capacity: int = 256) -> None:
    """Start retaining the last ``capacity`` finished spans in memory.

    Reference-counted like the thread-stack tracking: each telemetry
    server enables on start and disables on stop; the first enabler's
    capacity wins while any reference remains.
    """
    global _SPAN_RING, _RING_COUNT
    if capacity <= 0:
        raise ValueError("span ring capacity must be positive")
    with _RING_LOCK:
        _RING_COUNT += 1
        if _SPAN_RING is None:
            _SPAN_RING = deque(maxlen=int(capacity))


def disable_span_ring() -> None:
    """Drop one ring reference; frees the buffer when none remain."""
    global _SPAN_RING, _RING_COUNT
    with _RING_LOCK:
        _RING_COUNT = max(0, _RING_COUNT - 1)
        if _RING_COUNT == 0:
            _SPAN_RING = None


def span_ring_snapshot(limit: Optional[int] = None) -> List["Span"]:
    """The most recent completed spans, oldest first (empty when off)."""
    ring = _SPAN_RING
    if ring is None:
        return []
    spans = list(ring)
    if limit is not None and limit >= 0:
        spans = spans[-limit:]
    return spans


def span_stacks_snapshot() -> Dict[int, List["Span"]]:
    """Copy of each thread's open span stack (outermost first).

    Only meaningful while tracking is enabled; the copies are taken
    per-thread-list (atomic under the GIL) so the sampler never observes
    a half-mutated stack.
    """
    return {
        ident: list(stack)
        for ident, stack in list(_THREAD_STACKS.items())
        if stack
    }


@dataclass
class Span:
    """One finished (or in-flight) traced region."""

    name: str
    span_id: int
    parent_id: Optional[int]
    started: float                       # perf_counter at entry
    started_at: float                    # wall-clock epoch seconds at entry
    duration: Optional[float] = None     # seconds; None while in flight
    status: str = "ok"                   # "ok" | "error"
    error: Optional[str] = None          # exception type name when status=error
    attributes: Dict[str, object] = field(default_factory=dict)

    def set_attribute(self, key: str, value: object) -> None:
        """Attach/overwrite one attribute on the span."""
        self.attributes[key] = value

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (used by the run-log ``span`` event)."""
        record: Dict[str, object] = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "started_at": self.started_at,
            "duration": self.duration,
            "status": self.status,
        }
        if self.error is not None:
            record["error"] = self.error
        if self.attributes:
            record["attributes"] = dict(self.attributes)
        return record


class _SpanContext:
    """The context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, object]):
        self._tracer = tracer
        self._span = Span(
            name=name,
            span_id=next(_SPAN_IDS),
            parent_id=None,
            started=0.0,
            started_at=0.0,
            attributes=attributes,
        )
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> Span:
        span = self._span
        parent = _CURRENT_SPAN.get()
        span.parent_id = parent.span_id if parent is not None else None
        self._token = _CURRENT_SPAN.set(span)
        if _TRACKING:
            _THREAD_STACKS.setdefault(threading.get_ident(), []).append(span)
        span.started_at = time.time()
        span.started = time.perf_counter()
        return span

    def __exit__(self, exc_type, exc, tb) -> None:
        span = self._span
        span.duration = time.perf_counter() - span.started
        if exc_type is not None:
            span.status = "error"
            span.error = exc_type.__name__
        _CURRENT_SPAN.reset(self._token)
        if _TRACKING:
            stack = _THREAD_STACKS.get(threading.get_ident())
            if stack:
                if stack[-1] is span:
                    stack.pop()
                else:
                    # Tracking switched on mid-flight: this span was never
                    # pushed (or an inner one outlived it) — remove by
                    # identity so the stack never misattributes samples.
                    for index in range(len(stack) - 1, -1, -1):
                        if stack[index] is span:
                            del stack[index]
                            break
        self._tracer._record(span)


class Tracer:
    """Collects finished spans; spans nest via the context-local stack.

    ``on_finish`` (optional) is invoked with each completed span — the
    telemetry session uses it to stream ``span`` events into the run log.
    """

    def __init__(self, on_finish: Optional[Callable[[Span], None]] = None):
        self._lock = threading.Lock()
        self._finished: List[Span] = []
        self.on_finish = on_finish

    # ------------------------------------------------------------------
    def span(self, name: str, attributes: Optional[Dict[str, object]] = None,
             **attrs) -> _SpanContext:
        """Open a traced region: ``with tracer.span("encode") as span: ...``.

        Keyword arguments become span attributes; ``attributes`` merges
        beneath them.  The yielded :class:`Span` accepts further
        :meth:`Span.set_attribute` calls inside the block.
        """
        merged = dict(attributes) if attributes else {}
        merged.update(attrs)
        return _SpanContext(self, name, merged)

    def traced(self, name: Optional[str] = None) -> Callable:
        """Decorator wrapping every call of ``fn`` in a span.

        The span is named after the function (``fn.__qualname__``) unless
        ``name`` is given.
        """

        def decorate(fn: Callable) -> Callable:
            span_name = name or fn.__qualname__

            @wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(span_name):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    def _record(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span)
        if _SPAN_RING is not None:
            _SPAN_RING.append(span)
        if self.on_finish is not None:
            self.on_finish(span)

    # ------------------------------------------------------------------
    def finished(self) -> List[Span]:
        """Completed spans in finish order (inner spans before outer)."""
        with self._lock:
            return list(self._finished)

    def reset(self) -> None:
        """Forget every finished span."""
        with self._lock:
            self._finished.clear()

    def seconds_by_name(self) -> Dict[str, float]:
        """Total duration per span name."""
        totals: Dict[str, float] = {}
        for span in self.finished():
            totals[span.name] = totals.get(span.name, 0.0) + (span.duration or 0.0)
        return totals

    def calls_by_name(self) -> Dict[str, int]:
        """Finish count per span name."""
        counts: Dict[str, int] = {}
        for span in self.finished():
            counts[span.name] = counts.get(span.name, 0) + 1
        return counts

    def breakdown(self) -> Dict[str, Dict[str, float]]:
        """Per-name seconds, call counts, and share of the summed total.

        The same shape :meth:`repro.eval.timing.StageProfile.breakdown`
        always produced — fractions are of the *sum over names*, so nested
        spans each count their full (inclusive) duration.
        """
        seconds = self.seconds_by_name()
        calls = self.calls_by_name()
        total = sum(seconds.values())
        return {
            name: {
                "seconds": value,
                "calls": calls[name],
                "fraction": value / total if total > 0 else 0.0,
            }
            for name, value in seconds.items()
        }


def current_span() -> Optional[Span]:
    """The innermost open span of this execution context, if any."""
    return _CURRENT_SPAN.get()
