"""Run-log differ and regression gate.

Reduces a run log (or any ``BENCH_*.json`` report) to a flat numeric
summary — final losses per series, step timing and throughput, span
totals and percentiles, validation scores, final metric values — aligns
two summaries, and gates the deltas against configurable tolerances::

    python -m repro.obs.compare baseline.jsonl candidate.jsonl

exits ``0`` when every gate holds, ``1`` on any regression (CI fails the
build), ``2`` on unreadable inputs.  The default gates fail a candidate
whose final loss worsened by more than 5% or whose mean step time grew
beyond 1.5x — so an injected 10% loss regression or 2x slowdown always
trips them, while identical logs always pass.

Options:

``--json`` / ``--json-out PATH``
    Machine-readable diff (the same structure ``repro.obs.report --json``
    builds its ``summary`` section from) to stdout or a file.
``--no-timing``
    Drop wall-clock gates — the right call when baseline and candidate
    ran on different machines (CI runners vs. a committed baseline).
``--tolerance PATTERN=VALUE`` (repeatable)
    Override the tolerance of every default gate whose pattern matches,
    or add a ``rel_increase`` gate for a new pattern.
``--require-complete``
    A candidate log without ``run_end`` (crashed / truncated run) counts
    as a regression instead of a warning.

Truncated or crashed logs still summarize — every series observed before
the crash participates in the diff, and the missing ``run_end`` is
reported rather than raised.

Like :mod:`repro.obs.report`, this module reads plain dicts and never
imports the model stack.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ._render import format_seconds, table
from .runlog import read_run_log

__all__ = [
    "DEFAULT_GATES",
    "Gate",
    "compare_summaries",
    "load_summary",
    "main",
    "render_text",
    "run_summary",
]

#: Series whose baseline value is below this are never timing-gated —
#: micro-timings are all noise.
_TIMING_FLOOR_SECONDS = 1e-4


def _percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of raw values (q in [0, 100])."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = (q / 100.0) * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


# ----------------------------------------------------------------------
# Summaries
# ----------------------------------------------------------------------
def run_summary(events: List[Dict]) -> Dict[str, float]:
    """Flatten a run-log event list into ``{series_key: value}``.

    Keys: ``run.*`` lifecycle, ``loss.{phase}.{name}.final/min``,
    ``steps.{phase}.count/mean_step_seconds``,
    ``throughput.{phase}.steps_per_s``, ``val.{phase}.{key}.last/best``,
    ``span.{name}.total_seconds/calls/p50_seconds/p95_seconds``,
    ``metric.{name}{labels}[.count/.mean/.p95]``, ``alerts.count``,
    ``drift.checks/flags``.
    """
    summary: Dict[str, float] = {}
    by_kind: Dict[str, List[Dict]] = {}
    for event in events:
        by_kind.setdefault(str(event.get("event", "?")), []).append(event)

    ends = by_kind.get("run_end", [])
    summary["run.complete"] = 1.0 if ends else 0.0
    summary["run.status_ok"] = (
        1.0 if ends and ends[-1].get("status") == "ok" else 0.0
    )
    if ends and isinstance(ends[-1].get("total_seconds"), (int, float)):
        summary["run.total_seconds"] = float(ends[-1]["total_seconds"])

    # -- steps ----------------------------------------------------------
    by_phase: Dict[str, List[Dict]] = {}
    for event in by_kind.get("step", []):
        by_phase.setdefault(str(event.get("phase") or "run"), []).append(event)
    for phase, steps in by_phase.items():
        summary[f"steps.{phase}.count"] = float(len(steps))
        elapsed = [
            float(e["elapsed"]) for e in steps
            if isinstance(e.get("elapsed"), (int, float))
        ]
        gaps = [b - a for a, b in zip(elapsed, elapsed[1:]) if b > a]
        if gaps:
            summary[f"steps.{phase}.mean_step_seconds"] = _mean(gaps)
            summary[f"throughput.{phase}.steps_per_s"] = 1.0 / _mean(gaps)
        series: Dict[str, List[float]] = {}
        for event in steps:
            for name, value in (event.get("losses") or {}).items():
                if isinstance(value, (int, float)):
                    series.setdefault(name, []).append(float(value))
        for name, values in series.items():
            tail = values[-min(5, len(values)):]
            summary[f"loss.{phase}.{name}.final"] = _mean(tail)
            summary[f"loss.{phase}.{name}.min"] = min(values)

    # -- validation -----------------------------------------------------
    val_series: Dict[Tuple[str, str], List[float]] = {}
    for event in by_kind.get("eval", []):
        phase = str(event.get("phase") or "run")
        for key, value in event.items():
            if key.startswith("val_") and isinstance(value, (int, float)):
                val_series.setdefault((phase, key), []).append(float(value))
    for (phase, key), values in val_series.items():
        summary[f"val.{phase}.{key}.last"] = values[-1]
        summary[f"val.{phase}.{key}.best"] = max(values)

    # -- spans ----------------------------------------------------------
    durations: Dict[str, List[float]] = {}
    for event in by_kind.get("span", []):
        duration = event.get("duration")
        if isinstance(duration, (int, float)):
            durations.setdefault(str(event.get("name")), []).append(
                float(duration)
            )
    for name, values in durations.items():
        summary[f"span.{name}.total_seconds"] = sum(values)
        summary[f"span.{name}.calls"] = float(len(values))
        summary[f"span.{name}.p50_seconds"] = _percentile(values, 50)
        summary[f"span.{name}.p95_seconds"] = _percentile(values, 95)

    # -- metrics (final snapshot) ---------------------------------------
    snapshots = by_kind.get("metric_snapshot", [])
    if snapshots:
        for name, dump in (snapshots[-1].get("metrics") or {}).items():
            for entry in dump.get("series", []):
                labels = entry.get("labels") or {}
                label_text = ",".join(
                    f"{k}={v}" for k, v in sorted(labels.items())
                )
                key = f"metric.{name}" + (
                    f"{{{label_text}}}" if label_text else ""
                )
                value = entry.get("value")
                if isinstance(value, (int, float)):
                    summary[key] = float(value)
                elif isinstance(value, dict):
                    for stat in ("count", "mean", "p50", "p95", "p99"):
                        if isinstance(value.get(stat), (int, float)):
                            summary[f"{key}.{stat}"] = float(value[stat])

    # -- watchers -------------------------------------------------------
    summary["alerts.count"] = float(len(by_kind.get("alert", [])))
    if "drift" in by_kind:
        summary["drift.checks"] = float(len(by_kind["drift"]))
        summary["drift.flags"] = float(
            sum(len(e.get("drifted") or ()) for e in by_kind["drift"])
        )
    return summary


def _flatten(payload: Dict, prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of a nested JSON document, dot-joined keys."""
    flat: Dict[str, float] = {}
    for key, value in payload.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, bool):
            flat[path] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            flat[path] = float(value)
        elif isinstance(value, dict):
            flat.update(_flatten(value, path))
    return flat


def load_summary(path: str) -> Tuple[Dict[str, float], Dict[str, object]]:
    """Summarize a run-log JSONL file or a JSON document (``BENCH_*.json``).

    Returns ``(summary, meta)`` where ``meta`` carries the source path,
    detected format, run id/status, and completeness.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    lines = [line for line in text.splitlines() if line.strip()]
    meta: Dict[str, object] = {"path": path}
    if len(lines) == 1:
        document = json.loads(lines[0])
        if isinstance(document, dict) and "event" not in document:
            meta["format"] = "json"
            return _flatten(document), meta
    events = read_run_log(path)
    meta["format"] = "run_log"
    starts = [e for e in events if e.get("event") == "run_start"]
    ends = [e for e in events if e.get("event") == "run_end"]
    meta["run_id"] = starts[0].get("run_id") if starts else None
    meta["status"] = ends[-1].get("status") if ends else "incomplete"
    meta["complete"] = bool(ends)
    meta["events"] = len(events)
    return run_summary(events), meta


# ----------------------------------------------------------------------
# Gates
# ----------------------------------------------------------------------
@dataclass
class Gate:
    """One tolerance over every summary key matching ``pattern``.

    ``kind``: ``rel_increase`` fails when the candidate exceeds the
    baseline by more than ``tolerance`` relative (lower-is-better
    series); ``ratio`` fails when ``candidate / baseline`` exceeds
    ``tolerance`` (wall-clock series); ``rel_decrease`` fails when the
    candidate *falls* more than ``tolerance`` relative (higher-is-better
    series).  ``timing`` gates are dropped by ``--no-timing``.
    """

    pattern: str
    tolerance: float
    kind: str = "rel_increase"
    timing: bool = False

    def evaluate(
        self, baseline: float, candidate: float
    ) -> Tuple[bool, float]:
        """``(regressed, measured_value)`` for one aligned key."""
        if self.kind == "ratio":
            if baseline < _TIMING_FLOOR_SECONDS:
                return False, 0.0
            ratio = candidate / baseline
            return ratio > self.tolerance, ratio
        denominator = max(abs(baseline), 1e-12)
        if self.kind == "rel_decrease":
            fall = (baseline - candidate) / denominator
            return fall > self.tolerance, fall
        if self.kind != "rel_increase":
            raise ValueError(f"unknown gate kind {self.kind!r}")
        rise = (candidate - baseline) / denominator
        return rise > self.tolerance, rise


#: The standing regression gates: final losses may worsen by at most 5%,
#: step time by at most 1.5x, validation scores may fall by at most 5%.
DEFAULT_GATES: Tuple[Gate, ...] = (
    Gate("loss.*.final", 0.05, "rel_increase"),
    Gate("steps.*.mean_step_seconds", 1.5, "ratio", timing=True),
    Gate("val.*.best", 0.05, "rel_decrease"),
)


def compare_summaries(
    baseline: Dict[str, float],
    candidate: Dict[str, float],
    gates: Sequence[Gate] = DEFAULT_GATES,
    baseline_meta: Optional[Dict[str, object]] = None,
    candidate_meta: Optional[Dict[str, object]] = None,
    require_complete: bool = False,
) -> Dict[str, object]:
    """Align two summaries and evaluate every gate; JSON-ready result."""
    keys = sorted(set(baseline) | set(candidate))
    series: Dict[str, Dict[str, Optional[float]]] = {}
    for key in keys:
        base = baseline.get(key)
        cand = candidate.get(key)
        entry: Dict[str, Optional[float]] = {
            "baseline": base, "candidate": cand,
        }
        if base is not None and cand is not None:
            entry["delta"] = cand - base
        series[key] = entry

    regressions: List[Dict[str, object]] = []
    checked: List[Dict[str, object]] = []
    for gate in gates:
        for key in keys:
            if not fnmatch.fnmatchcase(key, gate.pattern):
                continue
            base = baseline.get(key)
            cand = candidate.get(key)
            if base is None or cand is None:
                continue
            regressed, measured = gate.evaluate(base, cand)
            record = {
                "key": key,
                "gate": gate.pattern,
                "kind": gate.kind,
                "tolerance": gate.tolerance,
                "baseline": base,
                "candidate": cand,
                "measured": measured,
                "regressed": regressed,
            }
            checked.append(record)
            if regressed:
                regressions.append(record)

    candidate_meta = dict(candidate_meta or {})
    if require_complete and not candidate_meta.get("complete", True):
        regressions.append(
            {
                "key": "run.complete",
                "gate": "--require-complete",
                "kind": "presence",
                "tolerance": 0.0,
                "baseline": 1.0,
                "candidate": 0.0,
                "measured": 0.0,
                "regressed": True,
            }
        )
    return {
        "baseline": dict(baseline_meta or {}),
        "candidate": candidate_meta,
        "series": series,
        "checked": checked,
        "regressions": regressions,
        "only_baseline": sorted(set(baseline) - set(candidate)),
        "only_candidate": sorted(set(candidate) - set(baseline)),
        "ok": not regressions,
    }


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _format_value(key: str, value: Optional[float]) -> str:
    if value is None:
        return "-"
    if "seconds" in key:
        return format_seconds(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def render_text(comparison: Dict[str, object]) -> str:
    """Human-readable diff: gates first, then notable ungated changes."""
    lines: List[str] = []
    base_meta = comparison.get("baseline") or {}
    cand_meta = comparison.get("candidate") or {}
    lines.append(
        f"baseline:  {base_meta.get('path', '?')} "
        f"(status={base_meta.get('status', '?')})"
    )
    lines.append(
        f"candidate: {cand_meta.get('path', '?')} "
        f"(status={cand_meta.get('status', '?')})"
    )
    if cand_meta.get("complete") is False:
        lines.append("warning: candidate log has no run_end (crashed or "
                     "truncated run)")

    checked = comparison.get("checked") or []
    if checked:
        rows = []
        for record in checked:
            rows.append(
                (
                    record["key"],
                    _format_value(record["key"], record["baseline"]),
                    _format_value(record["key"], record["candidate"]),
                    f"{record['measured']:+.3f}"
                    if record["kind"] != "ratio"
                    else f"{record['measured']:.2f}x",
                    "FAIL" if record["regressed"] else "ok",
                )
            )
        lines.append("")
        lines.append("gated series:")
        lines.extend(
            "  " + line
            for line in table(
                rows, ("series", "baseline", "candidate", "change", "gate")
            )
        )

    regressions = comparison.get("regressions") or []
    lines.append("")
    if regressions:
        lines.append(f"REGRESSIONS ({len(regressions)}):")
        for record in regressions:
            lines.append(
                f"  {record['key']}: {_format_value(record['key'], record['baseline'])}"
                f" -> {_format_value(record['key'], record['candidate'])}"
                f" (gate {record['gate']}, {record['kind']}"
                f" tolerance {record['tolerance']})"
            )
    else:
        lines.append("no regressions: every gate holds")

    only_base = comparison.get("only_baseline") or []
    only_cand = comparison.get("only_candidate") or []
    if only_base:
        lines.append(f"series only in baseline: {len(only_base)}")
    if only_cand:
        lines.append(f"series only in candidate: {len(only_cand)}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _parse_tolerances(
    entries: Sequence[str], gates: Sequence[Gate]
) -> List[Gate]:
    """Apply ``PATTERN=VALUE`` overrides to the gate list."""
    result = list(gates)
    for entry in entries:
        pattern, _, raw = entry.partition("=")
        if not _ or not pattern:
            raise ValueError(f"--tolerance expects PATTERN=VALUE, got {entry!r}")
        value = float(raw)
        matched = False
        for index, gate in enumerate(result):
            if gate.pattern == pattern:
                result[index] = Gate(
                    gate.pattern, value, gate.kind, gate.timing
                )
                matched = True
        if not matched:
            result.append(Gate(pattern, value, "rel_increase"))
    return result


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry: ``python -m repro.obs.compare baseline candidate``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.compare",
        description="Diff two run logs (or BENCH json reports) and gate "
        "regressions.",
    )
    parser.add_argument("baseline", help="trusted run log / JSON report")
    parser.add_argument("candidate", help="fresh run log / JSON report")
    parser.add_argument(
        "--json", action="store_true", help="print the JSON diff to stdout"
    )
    parser.add_argument(
        "--json-out", metavar="PATH", help="also write the JSON diff to PATH"
    )
    parser.add_argument(
        "--no-timing", action="store_true",
        help="drop wall-clock gates (cross-machine comparisons)",
    )
    parser.add_argument(
        "--tolerance", action="append", default=[], metavar="PATTERN=VALUE",
        help="override a gate tolerance (repeatable)",
    )
    parser.add_argument(
        "--require-complete", action="store_true",
        help="fail when the candidate log lacks run_end",
    )
    options = parser.parse_args(argv)

    try:
        baseline, baseline_meta = load_summary(options.baseline)
        candidate, candidate_meta = load_summary(options.candidate)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        gates = _parse_tolerances(options.tolerance, DEFAULT_GATES)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if options.no_timing:
        gates = [gate for gate in gates if not gate.timing]

    comparison = compare_summaries(
        baseline,
        candidate,
        gates=gates,
        baseline_meta=baseline_meta,
        candidate_meta=candidate_meta,
        require_complete=options.require_complete,
    )
    if options.json_out:
        with open(options.json_out, "w", encoding="utf-8") as handle:
            json.dump(comparison, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if options.json:
        print(json.dumps(comparison, indent=2, sort_keys=True))
    else:
        print(render_text(comparison))
    return 0 if comparison["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
