"""Telemetry HTTP server: live scrape endpoints over a telemetry session.

Everything else in :mod:`repro.obs` is offline — metrics and spans land in
JSONL files and are read post-hoc.  This module is the *live* plane: a
stdlib-only :class:`http.server.ThreadingHTTPServer` that exposes one
running :class:`~repro.obs.Telemetry` session to scrapers:

============  ========================================================
``/metrics``  Prometheus text exposition (``MetricsRegistry.to_prometheus``)
``/health``   liveness: 200 + uptime while the server thread runs
``/ready``    readiness: every check passes → 200, else 503 (JSON detail)
``/alerts``   recent :class:`~repro.obs.alerts.AlertEngine` firings (JSON)
``/trace``    tail of recently completed spans (bounded ring buffer)
``/profile``  collapsed stacks when the sampling profiler is armed
============  ========================================================

Readiness is pluggable: a check is a named zero-arg callable returning
``True``/``False`` or ``(ok, detail)``.  The built-in check derived from
the session's alert engine reports not-ready while a critical alert fired
within the last ``alert_cooldown_seconds`` — the 503 recovers on its own
once the breach stops re-firing.

Concurrency: handler threads only ever *read* session state through the
same per-metric / engine locks the trainer writes under, so scrapes are
safe against concurrent mutation.  The handler-thread count is bounded by
a semaphore (acquired before a connection thread spawns, released when it
finishes), so a scrape storm cannot grow threads without bound.

Cost when idle: attaching a server adds **zero** per-instrumentation-site
overhead — hot paths still pay only their ``ContextVar.get`` guard.  The
span ring buffer behind ``/trace`` follows the PR 9 discipline: off by
default, reference-counted on server start/stop, one module-global check
per span finish while enabled.

Thread creation here is deliberate and lint-sanctioned (RN011) alongside
:mod:`repro.parallel.pool` and :mod:`repro.obs.profiler`.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .metrics import validate_exposition
from .tracing import disable_span_ring, enable_span_ring, span_ring_snapshot

__all__ = [
    "TelemetryServer",
    "ReadinessCheck",
    "alert_readiness_check",
    "DEFAULT_ALERT_COOLDOWN_SECONDS",
    "DEFAULT_MAX_HANDLER_THREADS",
    "DEFAULT_TRACE_CAPACITY",
]

#: How long ``/ready`` stays 503 after a critical alert fires.  Matches
#: the spirit of rule cooldowns: a breach that stops re-firing becomes
#: ready again without operator action.
DEFAULT_ALERT_COOLDOWN_SECONDS = 30.0

#: Upper bound on concurrent request-handler threads.  Scrapers are few
#: and requests are cheap; the bound exists so a misbehaving client
#: cannot grow threads without limit.
DEFAULT_MAX_HANDLER_THREADS = 8

#: Completed spans retained for ``GET /trace``.
DEFAULT_TRACE_CAPACITY = 256

#: A readiness check result: bare bool, or (ok, human-readable detail).
CheckResult = Union[bool, Tuple[bool, str]]


class ReadinessCheck:
    """One named readiness probe: ``fn()`` → ``ok`` or ``(ok, detail)``."""

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[[], CheckResult]):
        self.name = name
        self.fn = fn

    def run(self) -> Tuple[bool, str]:
        """Evaluate the probe; exceptions read as not-ready."""
        try:
            result = self.fn()
        except Exception as exc:  # a crashing probe must not 200
            return False, f"{type(exc).__name__}: {exc}"
        if isinstance(result, tuple):
            ok, detail = result
            return bool(ok), str(detail)
        return bool(result), "ok" if result else "failed"


def alert_readiness_check(
    engine, cooldown_seconds: float = DEFAULT_ALERT_COOLDOWN_SECONDS
) -> ReadinessCheck:
    """Not-ready while a critical alert fired within ``cooldown_seconds``.

    Uses :meth:`AlertEngine.last_alert_age`, so readiness recovers
    automatically once the engine's own cooldown stops the rule from
    re-firing.
    """

    def probe() -> Tuple[bool, str]:
        age = engine.last_alert_age(severity="critical")
        if age is None:
            return True, "no critical alerts"
        if age < cooldown_seconds:
            return False, f"critical alert {age:.1f}s ago (< {cooldown_seconds:g}s)"
        return True, f"last critical alert {age:.1f}s ago"

    return ReadinessCheck("alerts", probe)


class _BoundedThreadingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer with a hard cap on live handler threads.

    The semaphore is acquired *before* a connection thread spawns and
    released when the handler finishes, so at most ``max_threads``
    requests are in flight; excess connections queue in the listen
    backlog instead of growing threads.
    """

    daemon_threads = True

    def __init__(self, address, handler, max_threads: int):
        self._handler_slots = threading.BoundedSemaphore(max_threads)
        super().__init__(address, handler)

    def process_request(self, request, client_address):
        self._handler_slots.acquire()
        try:
            super().process_request(request, client_address)
        except BaseException:
            self._handler_slots.release()
            raise

    def process_request_thread(self, request, client_address):
        try:
            super().process_request_thread(request, client_address)
        finally:
            self._handler_slots.release()


class _Handler(BaseHTTPRequestHandler):
    """Routes the six telemetry endpoints; everything else is 404."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-obs"

    # The handler class is instantiated per request by the HTTP server;
    # the TelemetryServer injects itself via a subclass attribute.
    telemetry_server: "TelemetryServer"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        route = getattr(self, f"_get_{path.lstrip('/')}", None)
        if path == "/" or route is None:
            self._send(404, "application/json", json.dumps({"error": "not found", "path": path}))
            return
        route()

    # -- endpoints ------------------------------------------------------
    def _get_metrics(self) -> None:
        body = self.telemetry_server.session.metrics.to_prometheus()
        self._send(200, "text/plain; version=0.0.4; charset=utf-8", body)

    def _get_health(self) -> None:
        server = self.telemetry_server
        payload = {
            "status": "ok",
            "uptime_seconds": server.uptime_seconds(),
            "endpoints": sorted(server.ENDPOINTS),
        }
        self._send(200, "application/json", json.dumps(payload))

    def _get_ready(self) -> None:
        ready, checks = self.telemetry_server.readiness()
        payload = {"ready": ready, "checks": checks}
        self._send(200 if ready else 503, "application/json", json.dumps(payload))

    def _get_alerts(self) -> None:
        self._send(
            200, "application/json",
            json.dumps({"alerts": self.telemetry_server.recent_alerts()}),
        )

    def _get_trace(self) -> None:
        spans = [
            span.to_dict()
            for span in span_ring_snapshot(self.telemetry_server.trace_capacity)
        ]
        self._send(200, "application/json", json.dumps({"spans": spans}))

    def _get_profile(self) -> None:
        profiler = self.telemetry_server.session.profiler
        if profiler is None:
            self._send(
                404, "application/json",
                json.dumps({"error": "no profiler armed on this session"}),
            )
            return
        summary = profiler.summary()
        lines = [
            f"{entry['stack']} {entry['count']}"
            for entry in summary.get("stacks", [])
        ]
        self._send(200, "text/plain; charset=utf-8", "\n".join(lines) + "\n")

    # -- plumbing -------------------------------------------------------
    def _send(self, status: int, content_type: str, body: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args) -> None:
        """Silence per-request stderr logging (scrapes are periodic)."""


class TelemetryServer:
    """Serve one telemetry session's live state over HTTP.

    Usually attached declaratively::

        with obs.telemetry(serve_port=9099) as tel:
            ...  # curl http://127.0.0.1:9099/metrics meanwhile

    or driven by hand::

        server = TelemetryServer(session, port=0)   # port=0 → ephemeral
        server.start()
        ...
        server.stop()

    ``readiness_checks`` extends the built-in alert-recency probe; pass
    ``ReadinessCheck("model", lambda: registry.is_warm())`` style probes
    for model-registry warmth, worker-pool liveness, and the like.
    """

    ENDPOINTS = ("/metrics", "/health", "/ready", "/alerts", "/trace", "/profile")

    def __init__(
        self,
        session,
        port: int = 0,
        host: str = "127.0.0.1",
        readiness_checks: Optional[Sequence[ReadinessCheck]] = None,
        alert_cooldown_seconds: float = DEFAULT_ALERT_COOLDOWN_SECONDS,
        max_handler_threads: int = DEFAULT_MAX_HANDLER_THREADS,
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
        max_alerts: int = 50,
    ):
        self.session = session
        self.host = host
        self.trace_capacity = int(trace_capacity)
        self.max_alerts = int(max_alerts)
        self._requested_port = int(port)
        self._max_handler_threads = int(max_handler_threads)
        self._server: Optional[_BoundedThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None
        self.checks: List[ReadinessCheck] = []
        if session.alerts is not None:
            self.checks.append(
                alert_readiness_check(session.alerts, alert_cooldown_seconds)
            )
        if readiness_checks:
            self.checks.extend(readiness_checks)

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "TelemetryServer":
        """Bind, spin up the serve thread, and enable the span ring."""
        if self._server is not None:
            raise RuntimeError("telemetry server already started")
        handler = type("_BoundHandler", (_Handler,), {"telemetry_server": self})
        self._server = _BoundedThreadingHTTPServer(
            (self.host, self._requested_port), handler, self._max_handler_threads
        )
        enable_span_ring(self.trace_capacity)
        self._started_at = time.time()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-obs-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down the listener and release the span ring (idempotent)."""
        server, thread = self._server, self._thread
        if server is None:
            return
        self._server = None
        self._thread = None
        server.shutdown()
        if thread is not None:
            thread.join(timeout=5.0)
        server.server_close()
        disable_span_ring()

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- request-side helpers ------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        if self._server is None:
            return self._requested_port
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def uptime_seconds(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.time() - self._started_at

    def readiness(self) -> Tuple[bool, List[Dict[str, object]]]:
        """Run every check; overall readiness is their conjunction."""
        results: List[Dict[str, object]] = []
        ready = True
        for check in self.checks:
            ok, detail = check.run()
            ready = ready and ok
            results.append({"name": check.name, "ok": ok, "detail": detail})
        return ready, results

    def recent_alerts(self) -> List[Dict[str, object]]:
        """The most recent alert firings, oldest first, JSON-ready."""
        engine = self.session.alerts
        if engine is None:
            return []
        recent = list(engine.alerts)[-self.max_alerts:]
        return [
            dict(alert.to_fields(), created=alert.created) for alert in recent
        ]


def _fetch(url: str, timeout: float) -> str:
    """Minimal stdlib GET (urllib pulls in more than we need here)."""
    from urllib.request import urlopen

    with urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.obs.server --validate <file|url|->``.

    Format-checks a Prometheus exposition document (a saved scrape, a
    live ``/metrics`` URL, or stdin) and exits 1 on any violation — the
    CI ``obs-serve`` job runs every scraped artifact through this.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.server", description=main.__doc__
    )
    parser.add_argument(
        "--validate", required=True, metavar="SOURCE",
        help="exposition text to check: a file path, an http(s) URL, or - for stdin",
    )
    parser.add_argument(
        "--timeout", type=float, default=5.0, help="fetch timeout for URLs"
    )
    args = parser.parse_args(argv)

    source = args.validate
    if source == "-":
        text = sys.stdin.read()
    elif source.startswith(("http://", "https://")):
        text = _fetch(source, args.timeout)
    else:
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()

    errors = validate_exposition(text)
    for error in errors:
        print(f"INVALID: {error}")
    if errors:
        return 1
    samples = sum(
        1 for line in text.splitlines() if line and not line.startswith("#")
    )
    print(f"OK: valid exposition ({samples} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
