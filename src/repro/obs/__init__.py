"""``repro.obs`` — dependency-free observability: metrics, spans, run logs.

Three pillars, bundled into a :class:`Telemetry` session:

* :class:`MetricsRegistry` — labeled :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` / :class:`Timer` series with snapshot/reset semantics
  and JSONL export.
* :class:`Tracer` — nested wall-time spans (monotonic clock, parent ids,
  attributes, exception-safe) plus the :func:`trace` context manager and
  :func:`traced` decorator.
* :class:`RunLogger` — structured JSONL event stream (``run_start`` /
  ``step`` / ``epoch`` / ``eval`` / ``span`` / ``metric_snapshot`` /
  ``run_end``) rendered by :mod:`repro.obs.report`.

The **active session** is per execution context (the same ``contextvars``
discipline as :func:`repro.nn.no_grad`): installing telemetry on one
thread never redirects another thread's instrumentation.  When *no*
session is installed every instrumentation point collapses to a single
``ContextVar.get`` — hot paths stay hot (the no-op guard test pins this).

Instrumenting code::

    from repro import obs

    with obs.trace("encode", batch=8):         # no-op without a session
        ...
    tel = obs.get_telemetry()
    if tel is not None:                        # guard metric writes
        tel.metrics.counter("cache.hits").inc()

Running with telemetry::

    with obs.telemetry(run_log="run.jsonl", config=vars(cfg),
                       seeds={"trainer": 0}) as tel:
        trainer.fit(train, validation)
        model.predict_batch(documents)
    # run.jsonl now holds the full event stream; render it with
    #   python -m repro.obs.report run.jsonl
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Dict, Iterator, Optional, Sequence, Union

from .alerts import Alert, AlertEngine, AlertError, Rule, default_rules
from .drift import (
    DriftMonitor,
    DriftReport,
    ReferenceProfile,
    profile_documents,
    profile_ner_examples,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from .profiler import DEFAULT_PROFILE_HZ, Profiler
from .relay import PoolRelay, merge_worker_spool, worker_session
from .runlog import RunLogger, read_run_log, tail_events, write_json
from .slo import Slo, SloTracker, default_slos
from .tracing import Span, Tracer, current_span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "Span",
    "Tracer",
    "current_span",
    "RunLogger",
    "read_run_log",
    "tail_events",
    "write_json",
    "write_bench_report",
    "Alert",
    "AlertEngine",
    "AlertError",
    "Rule",
    "default_rules",
    "DriftMonitor",
    "DriftReport",
    "ReferenceProfile",
    "profile_documents",
    "profile_ner_examples",
    "Profiler",
    "DEFAULT_PROFILE_HZ",
    "PoolRelay",
    "worker_session",
    "merge_worker_spool",
    "TelemetryServer",
    "ReadinessCheck",
    "alert_readiness_check",
    "Slo",
    "SloTracker",
    "default_slos",
    "Telemetry",
    "telemetry",
    "use_telemetry",
    "get_telemetry",
    "trace",
    "traced",
    "emit",
]

#: ``repro.obs.server`` is imported lazily (PEP 562) so that
#: ``python -m repro.obs.server`` doesn't trip runpy's double-import
#: warning; ``obs.TelemetryServer`` et al. still resolve normally.
_SERVER_EXPORTS = ("TelemetryServer", "ReadinessCheck", "alert_readiness_check")


def __getattr__(name: str):
    if name in _SERVER_EXPORTS:
        from . import server

        return getattr(server, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def write_bench_report(path, payload, history_dir=None) -> None:
    """Write a ``BENCH_*.json`` report and append its trajectory record.

    Thin lazy re-export of :func:`repro.obs.bench_history.write_bench_report`
    (imported on first use so ``python -m repro.obs.bench_history`` never
    double-imports the module).
    """
    from .bench_history import write_bench_report as _write

    _write(path, payload, history_dir=history_dir)


def _resolve_alerts(alerts) -> Optional[AlertEngine]:
    """Normalize the ``alerts`` argument of a session.

    ``None``/``False`` → no engine, ``True`` → the default rules, a list
    of :class:`Rule` → a fresh engine over them, an :class:`AlertEngine`
    → used as-is.
    """
    if alerts is None or alerts is False:
        return None
    if alerts is True:
        return AlertEngine()
    if isinstance(alerts, AlertEngine):
        return alerts
    return AlertEngine(rules=list(alerts))


class Telemetry:
    """One observability session: a registry, a tracer, an optional run log.

    The tracer streams every finished span into the run logger (when one
    is attached), so a single JSONL file carries the full story of a run.

    ``alerts`` attaches an :class:`AlertEngine` (``True`` for the default
    rules) that watches the event/span stream; firings are logged as
    ``alert`` events, counted under ``alerts.fired{severity=...}``, and
    raised as :class:`AlertError` when their severity is in the engine's
    ``raise_on`` set.  ``drift`` attaches a :class:`DriftMonitor` that the
    instrumented predict paths feed automatically.  ``profiler`` attaches
    a :class:`Profiler` whose flushes stream ``profile`` events into the
    run log; its start/stop lifecycle belongs to the caller
    (:func:`telemetry` drives it when given ``profile_hz``).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        run_logger: Optional[RunLogger] = None,
        alerts: Union[bool, AlertEngine, None] = None,
        drift: Optional[DriftMonitor] = None,
        profiler: Optional[Profiler] = None,
        slos: Union[bool, Sequence[Slo], None] = None,
    ):
        self.metrics = registry or MetricsRegistry()
        self.run_logger = run_logger
        self.alerts = _resolve_alerts(alerts)
        if self.alerts is not None:
            self.alerts.bind(self.metrics)
        self.drift = drift
        self.profiler = profiler
        if profiler is not None:
            profiler.bind(self)
        self.slo: Optional[SloTracker] = None
        if slos:
            declared = default_slos() if slos is True else list(slos)
            self.slo = SloTracker(declared, self.metrics, self.alerts)
        #: Set by :func:`telemetry` when ``serve_port=`` attaches a live
        #: :class:`TelemetryServer`; None for in-memory-only sessions.
        self.server: Optional[TelemetryServer] = None
        self.tracer = Tracer(on_finish=self._on_span)

    def _on_span(self, span: Span) -> None:
        if self.run_logger is not None:
            self.run_logger.span(span)
        if self.alerts is not None:
            self._handle_alerts(self.alerts.observe_span(span))
        if self.slo is not None:
            self._handle_alerts(self.slo.observe_span(span))

    def event(self, kind: str, **fields) -> None:
        """Forward an event to the run logger and the alert engine."""
        if self.run_logger is not None:
            self.run_logger.event(kind, **fields)
        if self.alerts is not None and kind != "alert":
            self._handle_alerts(self.alerts.observe_event(kind, fields))

    def _handle_alerts(self, fired) -> None:
        """Log, count, and (per ``raise_on``) escalate fired alerts.

        The alert event and counter land *before* any raise, so an
        aborted run's log still carries the evidence.
        """
        for alert in fired:
            if self.run_logger is not None:
                self.run_logger.event("alert", **alert.to_fields())
            self.metrics.counter("alerts.fired").inc(severity=alert.severity)
        for alert in fired:
            if alert.severity in self.alerts.raise_on:
                raise AlertError(alert)

    def summary(self) -> Dict[str, object]:
        """JSON-ready session summary: span breakdown + metric snapshot.

        The benchmark suites embed this in their ``BENCH_*.json`` reports.
        """
        summary: Dict[str, object] = {
            "spans": self.tracer.breakdown(),
            "metrics": self.metrics.snapshot(),
        }
        if self.alerts is not None:
            summary["alerts"] = [a.to_fields() for a in self.alerts.alerts]
        if self.profiler is not None:
            summary["profile"] = self.profiler.summary()
        return summary


#: The active telemetry session of the current execution context.  Default
#: None — the state every instrumentation point fast-paths on.
_ACTIVE: contextvars.ContextVar[Optional[Telemetry]] = contextvars.ContextVar(
    "repro_obs_telemetry", default=None
)

#: Reusable null context returned by :func:`trace` when no session is
#: installed (one shared instance; ``nullcontext`` is re-entrant).
_NULL_CONTEXT = contextlib.nullcontext()


def get_telemetry() -> Optional[Telemetry]:
    """The active :class:`Telemetry` session, or None.

    Instrumentation sites use this as the no-op guard::

        tel = get_telemetry()
        if tel is not None:
            tel.metrics.counter("train.steps").inc()
    """
    return _ACTIVE.get()


@contextlib.contextmanager
def use_telemetry(session: Telemetry) -> Iterator[Telemetry]:
    """Install an existing session for the duration of the block."""
    token = _ACTIVE.set(session)
    try:
        yield session
    finally:
        _ACTIVE.reset(token)


@contextlib.contextmanager
def telemetry(
    run_log: Union[str, RunLogger, None] = None,
    config: Optional[Dict[str, object]] = None,
    seeds: Optional[Dict[str, object]] = None,
    registry: Optional[MetricsRegistry] = None,
    alerts: Union[bool, AlertEngine, None] = None,
    drift: Optional[DriftMonitor] = None,
    profile_hz: Optional[float] = None,
    profiler: Optional[Profiler] = None,
    slos: Union[bool, Sequence[Slo], None] = None,
    serve_port: Optional[int] = None,
    readiness_checks: Optional[Sequence[ReadinessCheck]] = None,
) -> Iterator[Telemetry]:
    """Create and install a telemetry session for the duration of the block.

    ``run_log`` may be a path (a :class:`RunLogger` is created, opened with
    ``run_start`` carrying ``config``/``seeds``, and closed with a final
    ``metric_snapshot`` + ``run_end``) or an already-open logger (left open
    on exit, snapshot still written).  Without ``run_log`` the session
    collects metrics and spans in memory only.

    ``alerts=True`` watches the run with :func:`default_rules`; pass an
    :class:`AlertEngine` for custom rules or ``raise_on`` severities.
    ``drift`` attaches a :class:`DriftMonitor` fed by the instrumented
    ``predict_batch`` paths.

    ``profile_hz`` arms the continuous sampling profiler at that rate
    (``profiler`` passes a pre-configured :class:`Profiler` instead); it
    starts with the session, streams ``profile`` events into the run log,
    and stops — flushing its final delta — before the closing metric
    snapshot.  :mod:`repro.parallel` pools created inside the session
    propagate the rate to their spawn workers and relay the worker
    profiles back on join.

    ``slos=True`` tracks :func:`default_slos` (pass a list of
    :class:`Slo` for custom objectives); burn-rate breaches fire through
    the session's alert engine.  ``serve_port`` attaches a
    :class:`TelemetryServer` on that port (0 → ephemeral; the bound port
    is ``tel.server.port``) for the duration of the block, serving
    ``/metrics``, ``/health``, ``/ready``, ``/alerts``, ``/trace`` and
    ``/profile``; ``readiness_checks`` adds probes to ``/ready``.
    """
    owns_logger = isinstance(run_log, str)
    logger = RunLogger(run_log, config=config, seeds=seeds) if owns_logger else run_log
    if profiler is None and profile_hz:
        profiler = Profiler(hz=profile_hz)
    session = Telemetry(
        registry=registry, run_logger=logger, alerts=alerts, drift=drift,
        profiler=profiler, slos=slos,
    )
    if owns_logger:
        logger.run_start()
    status = "ok"
    error: Optional[str] = None
    try:
        if profiler is not None:
            profiler.start()
        if serve_port is not None:
            from .server import TelemetryServer

            session.server = TelemetryServer(
                session, port=serve_port, readiness_checks=readiness_checks
            )
            session.server.start()
        with use_telemetry(session):
            yield session
    except BaseException as exc:
        status, error = "error", type(exc).__name__
        raise
    finally:
        if session.server is not None:
            session.server.stop()
        if profiler is not None:
            profiler.stop()
        if logger is not None:
            logger.metric_snapshot(session.metrics)
            if owns_logger:
                logger.run_end(status=status, **({} if error is None else {"error": error}))
                logger.close()


def trace(name: str, **attributes):
    """Open a span on the active session; a shared no-op without one.

    The hot-path primitive: ``with trace("featurize", batch=16): ...``
    costs one ``ContextVar.get`` when telemetry is off.
    """
    session = _ACTIVE.get()
    if session is None:
        return _NULL_CONTEXT
    return session.tracer.span(name, attributes)


def traced(name: Optional[str] = None):
    """Decorator tracing every call of ``fn`` on the active session.

    Unlike :meth:`Tracer.traced` (bound to one tracer), this resolves the
    session at call time and calls the function directly when none is
    installed.
    """

    def decorate(fn):
        import functools

        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            session = _ACTIVE.get()
            if session is None:
                return fn(*args, **kwargs)
            with session.tracer.span(span_name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def emit(kind: str, **fields) -> None:
    """Send one run-log event through the active session; no-op without one."""
    session = _ACTIVE.get()
    if session is not None:
        session.event(kind, **fields)
