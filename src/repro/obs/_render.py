"""Small text-rendering helpers shared by the report and compare CLIs."""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["format_seconds", "table"]


def format_seconds(seconds: float) -> str:
    """Human-scale duration: ``1.23s`` / ``4.5ms`` / ``678µs``."""
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}µs"


def table(rows: List[Sequence[str]], header: Sequence[str]) -> List[str]:
    """Left-aligned text table with a dashed underline."""
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return lines
