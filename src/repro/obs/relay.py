"""Cross-process telemetry fan-in for :mod:`repro.parallel` workers.

A spawn worker cannot write into the parent's telemetry session: the
registry and run logger live in another process, and RN009 forbids
shipping bulky payloads through the control queues.  The relay closes the
gap with a **per-worker JSONL spool merged on join**:

* :func:`worker_session` — opened inside ``_worker_main``: a lightweight
  child :class:`~repro.obs.Telemetry` whose run logger streams to
  ``<spool_dir>/worker<N>.jsonl`` (crash-safe, one flushed line per
  event) and whose optional :class:`~repro.obs.profiler.Profiler` samples
  the worker at the parent's rate.  Every instrumented call site inside
  the worker (encode spans, cache counters, profiler flushes) lands in
  the spool with *worker-local* timestamps.
* :class:`PoolRelay` — created by :class:`~repro.parallel.pool.WorkerPool`
  when a telemetry session is active at construction; hands each worker
  its spool spec and, once the workers have joined, merges every spool
  into the parent session: span/profile/step events are forwarded with a
  ``worker=`` field and original timestamps, span ids are
  process-qualified (``w0:17``) with root spans re-parented under the
  pool's ``parallel.pool_start`` span, and the worker's final metric
  snapshot folds into the parent registry with ``worker=`` labels.

The result: one run log that tells the whole multi-process story, and a
parent registry whose ``parallel.worker_step_seconds{worker=}`` series
came from the workers' own clocks instead of post-hoc parent bookkeeping.
"""

from __future__ import annotations

import contextlib
import os
import shutil
import tempfile
from typing import Dict, Iterator, List, Optional

from .profiler import Profiler
from .runlog import RunLogger, read_run_log

__all__ = ["PoolRelay", "worker_session", "merge_worker_spool"]

#: Spool events consumed during the merge instead of forwarded verbatim.
_CONSUMED_EVENTS = ("run_start", "run_end", "metric_snapshot")


def _spool_path(spool_dir: str, worker_id: int) -> str:
    return os.path.join(spool_dir, f"worker{worker_id}.jsonl")


@contextlib.contextmanager
def worker_session(spec: Dict[str, object], worker_id: int) -> Iterator:
    """Child telemetry session of one pool worker (runs in the worker).

    ``spec`` is :meth:`PoolRelay.worker_spec`'s payload: the spool
    directory plus the parent's profiler rate (or None).  Yields the
    installed session; on exit stops the profiler, writes the final
    metric snapshot, and closes the spool.
    """
    from . import Telemetry, use_telemetry

    logger = RunLogger(
        _spool_path(str(spec["spool_dir"]), worker_id),
        run_id=f"worker-{worker_id}",
    )
    profile_hz = spec.get("profile_hz")
    profiler = Profiler(hz=float(profile_hz)) if profile_hz else None
    session = Telemetry(run_logger=logger, profiler=profiler)
    logger.run_start(worker=worker_id, pid=os.getpid())
    try:
        if profiler is not None:
            profiler.start()
        with use_telemetry(session):
            yield session
    finally:
        if profiler is not None:
            profiler.stop()
        logger.metric_snapshot(session.metrics)
        logger.run_end()
        logger.close()


def _qualify(worker_id: int, span_id) -> Optional[str]:
    """Process-qualified span id: worker-local ints collide across
    processes (each worker counts from 1), ``w<N>:<id>`` never does."""
    if span_id is None:
        return None
    return f"w{worker_id}:{span_id}"


def merge_worker_spool(
    path: str,
    worker_id: int,
    session,
    pool_span_id: Optional[int] = None,
) -> int:
    """Merge one worker spool into ``session``; returns events forwarded.

    Spans get process-qualified ids; a worker's *root* spans (no parent in
    their own process) are parented under ``pool_span_id`` so the merged
    trace hangs together.  The final ``metric_snapshot`` folds into the
    parent registry under a ``worker=`` label; ``run_start``/``run_end``
    are consumed (the parent run owns the lifecycle).  Every forwarded
    record keeps its original worker timestamps via
    :meth:`~repro.obs.runlog.RunLogger.relay`.
    """
    try:
        events = read_run_log(path)
    except OSError:
        return 0
    forwarded = 0
    logger = session.run_logger
    for record in events:
        kind = record.get("event")
        if kind == "metric_snapshot":
            session.metrics.merge_snapshot(
                record.get("metrics") or {},
                extra_labels={"worker": str(worker_id)},
            )
            continue
        if kind in _CONSUMED_EVENTS:
            continue
        record = dict(record)
        record["worker"] = worker_id
        if "span_id" in record:
            record["span_id"] = _qualify(worker_id, record["span_id"])
            parent = record.get("parent_id")
            record["parent_id"] = (
                _qualify(worker_id, parent) if parent is not None
                else pool_span_id
            )
        if logger is not None:
            logger.relay(record)
            forwarded += 1
    return forwarded


class PoolRelay:
    """Parent-side half of the fan-in: spool directory + merge-on-join.

    Built by the pool *only* when a telemetry session is active at
    construction; holds a reference to that session so the merge works
    even if the pool is closed outside the installing context.
    """

    def __init__(self, num_workers: int, session):
        self.num_workers = num_workers
        self.session = session
        self.spool_dir = tempfile.mkdtemp(prefix="repro-relay-")
        self.pool_span_id: Optional[int] = None
        self._merged = False

    def worker_spec(self) -> Dict[str, object]:
        """Picklable per-worker config (crosses the spawn boundary)."""
        profiler = getattr(self.session, "profiler", None)
        return {
            "spool_dir": self.spool_dir,
            "profile_hz": profiler.hz if profiler is not None else None,
        }

    def merge(self) -> List[int]:
        """Merge every spool into the parent session (idempotent).

        Call after the workers have joined — their spools are complete
        (or, after a forced teardown, complete up to the crash; JSONL
        flushes line-by-line so everything written survives).  Emits one
        ``relay_merge`` event per worker and removes the spool directory.
        """
        if self._merged:
            return []
        self._merged = True
        counts: List[int] = []
        for worker_id in range(self.num_workers):
            forwarded = merge_worker_spool(
                _spool_path(self.spool_dir, worker_id),
                worker_id,
                self.session,
                self.pool_span_id,
            )
            counts.append(forwarded)
            self.session.event(
                "relay_merge", worker=worker_id, forwarded=forwarded
            )
        shutil.rmtree(self.spool_dir, ignore_errors=True)
        return counts
