"""Declarative alert rules over the live telemetry stream.

PR 4 made runs *observable*; this module makes them *watched*.  An
:class:`AlertEngine` holds a list of :class:`Rule` objects and consumes
the same event/span stream a :class:`~repro.obs.Telemetry` session writes
to its run log.  Each rule watches one family of numeric series (selected
by an ``fnmatch`` pattern), keeps a trailing window per concrete series,
and fires when its condition holds — producing a structured
:class:`Alert` that the session emits as an ``alert`` event into the run
log, counts under the ``alerts.fired`` metric, and (optionally) raises as
:class:`AlertError`.

Series the engine derives from the stream
-----------------------------------------

``{phase}.losses.{name}``
    Every entry of a ``step`` event's ``losses`` dict (``phase`` falls
    back to ``run`` when the event carries none).
``{phase}.{field}``
    Every other numeric top-level field of a ``step`` event
    (``grad_norm``, ``selection_rate``, …).
``{phase}.step_gap``
    Seconds between consecutive ``step`` events of one phase (monotonic
    clock) — the watchdog/throughput signal.
``span.{name}``
    Durations of finished spans.
``gauge:{name}``
    The unlabeled series of a registry gauge, sampled at every ``step``
    event (e.g. ``gauge:feature_cache.hit_rate``).

Conditions are plain callables ``(values) -> Optional[str]`` over the
trailing window (newest value last); the factories below cover the
built-in health checks of :func:`default_rules`:

* ``nan-loss`` — any non-finite loss value (critical).
* ``loss-spike`` — the newest loss is a z-score outlier against its
  trailing window.
* ``stalled-step`` — one step gap blows past the trailing median.
* ``throughput-drop`` — recent step gaps are sustainedly slower than the
  run's earlier gaps.
* ``scl-collapse`` / ``dnsp-collapse`` — the Eq. 7 contrastive /
  next-sentence objectives crash toward zero (the degenerate solution),
  as opposed to converging gradually.

Usage::

    with obs.telemetry(run_log="run.jsonl", alerts=True):   # default rules
        trainer.fit(train, validation)

    engine = AlertEngine(default_rules(), raise_on={"critical"})
    with obs.telemetry(run_log="run.jsonl", alerts=engine):
        ...   # a NaN loss now raises AlertError

The engine is entirely passive without a session: constructing one never
touches the instrumentation fast path (inactive sessions still cost one
``ContextVar.get`` per site).
"""

from __future__ import annotations

import fnmatch
import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Alert",
    "AlertError",
    "AlertEngine",
    "Rule",
    "default_rules",
    "non_finite",
    "zscore_above",
    "above",
    "below",
    "collapse",
    "stalled",
    "throughput_drop",
]

#: Valid severities, mildest first.
SEVERITIES = ("info", "warning", "critical")

Condition = Callable[[Sequence[float]], Optional[str]]


class AlertError(RuntimeError):
    """Raised by a session when a rule in ``raise_on`` severities fires."""

    def __init__(self, alert: "Alert"):
        super().__init__(f"[{alert.severity}] {alert.rule}: {alert.message}")
        self.alert = alert


@dataclass
class Alert:
    """One rule firing, ready to be logged as an ``alert`` event.

    ``created`` (wall-clock epoch seconds) is stamped at firing time so
    consumers that reason about recency — the telemetry server's
    readiness probe, the ``/alerts`` endpoint — never have to re-parse
    the run log; it is *not* part of :meth:`to_fields` because the run
    logger stamps its own ``ts`` on the alert event.
    """

    rule: str
    severity: str
    series: str
    message: str
    value: float
    step: Optional[int] = None
    phase: Optional[str] = None
    created: float = field(default_factory=time.time)

    def to_fields(self) -> Dict[str, object]:
        """Event payload (``None`` fields dropped)."""
        fields: Dict[str, object] = {
            "rule": self.rule,
            "severity": self.severity,
            "series": self.series,
            "message": self.message,
            "value": self.value,
        }
        if self.step is not None:
            fields["step"] = self.step
        if self.phase is not None:
            fields["phase"] = self.phase
        return fields


@dataclass
class Rule:
    """One declarative health check.

    ``metric`` is an ``fnmatch`` pattern over the derived series names
    (see the module docstring); the rule keeps an independent trailing
    window of up to ``window`` values per matching concrete series and
    evaluates ``condition`` on it after every new observation.

    ``cooldown`` suppresses re-firing on the same series for that many
    observations after a hit (default: the window length), so a sustained
    bad state produces a heartbeat of alerts instead of one per step.
    """

    name: str
    metric: str
    condition: Condition
    window: int = 32
    severity: str = "warning"
    cooldown: Optional[int] = None

    def __post_init__(self):
        if self.window <= 0:
            raise ValueError("rule window must be positive")
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, not {self.severity!r}"
            )


# ----------------------------------------------------------------------
# Condition factories
# ----------------------------------------------------------------------
def non_finite() -> Condition:
    """Fire when the newest value is NaN or infinite."""

    def check(values: Sequence[float]) -> Optional[str]:
        if values and not math.isfinite(values[-1]):
            return f"non-finite value {values[-1]!r}"
        return None

    return check


def zscore_above(z: float = 6.0, min_points: int = 8) -> Condition:
    """Fire when the newest value is ``z`` standard deviations above the
    mean of the *preceding* window (spikes only — drops are healthy for
    losses).  Constant or too-short windows never fire."""

    def check(values: Sequence[float]) -> Optional[str]:
        if len(values) < min_points + 1:
            return None
        history = [v for v in values[:-1] if math.isfinite(v)]
        latest = values[-1]
        if len(history) < min_points or not math.isfinite(latest):
            return None
        mean = sum(history) / len(history)
        variance = sum((v - mean) ** 2 for v in history) / len(history)
        std = math.sqrt(variance)
        if std < 1e-12:
            return None
        score = (latest - mean) / std
        if score > z:
            return (
                f"value {latest:.6g} is {score:.1f} standard deviations above "
                f"the trailing mean {mean:.6g}"
            )
        return None

    return check


def above(limit: float) -> Condition:
    """Fire when the newest value exceeds ``limit``."""

    def check(values: Sequence[float]) -> Optional[str]:
        if values and math.isfinite(values[-1]) and values[-1] > limit:
            return f"value {values[-1]:.6g} above limit {limit:.6g}"
        return None

    return check


def below(limit: float, min_points: int = 1) -> Condition:
    """Fire when the newest value drops under ``limit``."""

    def check(values: Sequence[float]) -> Optional[str]:
        if len(values) < min_points:
            return None
        if math.isfinite(values[-1]) and values[-1] < limit:
            return f"value {values[-1]:.6g} below limit {limit:.6g}"
        return None

    return check


def collapse(
    floor: float = 1e-4, ratio: float = 0.05, min_points: int = 6
) -> Condition:
    """Objective collapse: the newest value hits an absolute ``floor`` or
    crashes to under ``ratio`` of the trailing median in one window —
    the signature of SCL/DNSP finding a degenerate solution, distinct
    from gradual healthy convergence."""

    def check(values: Sequence[float]) -> Optional[str]:
        if not values:
            return None
        latest = values[-1]
        if not math.isfinite(latest):
            return None
        if latest <= floor:
            return f"value {latest:.6g} at or under collapse floor {floor:.6g}"
        history = sorted(v for v in values[:-1] if math.isfinite(v))
        if len(history) < min_points:
            return None
        median = history[len(history) // 2]
        if median > 0 and latest < ratio * median:
            return (
                f"value {latest:.6g} crashed below {ratio:.0%} of the "
                f"trailing median {median:.6g}"
            )
        return None

    return check


def stalled(
    factor: float = 20.0, min_points: int = 3, floor_seconds: float = 0.25
) -> Condition:
    """Watchdog over step gaps: one gap ``factor``x the trailing median
    (and over an absolute floor, so microsecond jitter never trips it)."""

    def check(values: Sequence[float]) -> Optional[str]:
        if len(values) < min_points + 1:
            return None
        latest = values[-1]
        history = sorted(values[:-1])
        median = history[len(history) // 2]
        if latest > floor_seconds and median > 0 and latest > factor * median:
            return (
                f"step took {latest:.3f}s, {latest / median:.1f}x the trailing "
                f"median {median:.3f}s"
            )
        return None

    return check


def throughput_drop(
    factor: float = 2.0,
    recent: int = 5,
    min_points: int = 12,
    floor_seconds: float = 0.0,
) -> Condition:
    """Sustained slowdown: the mean of the last ``recent`` step gaps is
    ``factor``x the mean of the earlier gaps in the window."""

    def check(values: Sequence[float]) -> Optional[str]:
        if len(values) < min_points or len(values) <= recent:
            return None
        head = values[:-recent]
        tail = values[-recent:]
        baseline = sum(head) / len(head)
        current = sum(tail) / len(tail)
        if current > floor_seconds and baseline > 0 and current > factor * baseline:
            return (
                f"mean step time {current:.4f}s over the last {recent} steps, "
                f"{current / baseline:.1f}x the earlier {baseline:.4f}s"
            )
        return None

    return check


def default_rules(
    spike_z: float = 6.0,
    stall_factor: float = 20.0,
    throughput_factor: float = 2.0,
) -> List[Rule]:
    """The built-in health checks every instrumented run should carry."""
    return [
        Rule(
            "nan-loss", "*losses.*", non_finite(), window=1, severity="critical"
        ),
        Rule(
            "loss-spike", "*losses.*", zscore_above(spike_z), window=24,
            severity="warning",
        ),
        Rule(
            "stalled-step", "*.step_gap", stalled(stall_factor), window=16,
            severity="warning",
        ),
        Rule(
            "throughput-drop", "*.step_gap",
            throughput_drop(throughput_factor), window=32, severity="warning",
        ),
        Rule(
            "scl-collapse", "*losses.cl", collapse(), window=16,
            severity="warning",
        ),
        Rule(
            "dnsp-collapse", "*losses.ns", collapse(), window=16,
            severity="warning",
        ),
    ]


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class AlertEngine:
    """Evaluates rules against the live event/span stream of one session.

    The engine is stream-driven: :class:`~repro.obs.Telemetry` forwards
    every ``step``/``epoch``/``eval`` event to :meth:`observe_event` and
    every finished span to :meth:`observe_span`; both return the alerts
    that fired so the session can log, count, and optionally raise them.

    ``raise_on`` is a set of severities that should abort the run (the
    session raises :class:`AlertError` *after* logging the alert, so the
    run log still carries the evidence).

    Thread-safety: events and spans may arrive from any thread (the
    worker pool's collector, a background drift monitor, the training
    loop itself), so every piece of engine state — series windows,
    cooldowns, the alert log — is mutated under one engine lock.
    Condition functions are pure over a small copied window, so holding
    the lock across evaluation is cheap and keeps window/cooldown/alert
    updates atomic per observation.  ``*_unlocked`` helpers are only
    called with the lock held.
    """

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        raise_on: Sequence[str] = (),
        gauge_rules_sample_every: int = 1,
    ):
        self.rules = list(default_rules() if rules is None else rules)
        self.raise_on = frozenset(raise_on)
        unknown = self.raise_on - set(SEVERITIES)
        if unknown:
            raise ValueError(f"unknown raise_on severities: {sorted(unknown)}")
        #: Every alert fired over the engine's lifetime, in order.
        self.alerts: List[Alert] = []
        self._series: Dict[str, Deque[float]] = {}
        self._rules_for: Dict[str, List[Rule]] = {}
        self._cooldown: Dict[Tuple[int, str], int] = {}
        self._last_step: Dict[str, float] = {}
        self._gauge_rules = [
            rule for rule in self.rules if rule.metric.startswith("gauge:")
        ]
        self._registry = None
        self._sample_every = max(int(gauge_rules_sample_every), 1)
        self._steps_seen = 0
        self._lock = threading.Lock()

    # -- wiring ---------------------------------------------------------
    def bind(self, registry) -> None:
        """Attach the session's :class:`MetricsRegistry` (gauge sampling)."""
        self._registry = registry

    # -- stream ---------------------------------------------------------
    def observe_event(self, kind: str, fields: Dict[str, object]) -> List[Alert]:
        """Feed one run-log event; returns alerts fired by it."""
        if kind != "step":
            return []
        with self._lock:
            return self._observe_event_unlocked(kind, fields)

    def _observe_event_unlocked(
        self, kind: str, fields: Dict[str, object]
    ) -> List[Alert]:
        phase = str(fields.get("phase") or "run")
        step = fields.get("step")
        step = int(step) if isinstance(step, (int, float)) else None
        fired: List[Alert] = []

        losses = fields.get("losses")
        if isinstance(losses, dict):
            for name, value in losses.items():
                if isinstance(value, (int, float)):
                    fired += self._observe_unlocked(
                        f"{phase}.losses.{name}", float(value), step, phase
                    )
        for name, value in fields.items():
            if name in ("losses", "step", "epoch", "phase"):
                continue
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                fired += self._observe_unlocked(
                    f"{phase}.{name}", float(value), step, phase
                )

        now = time.perf_counter()
        last = self._last_step.get(phase)
        self._last_step[phase] = now
        if last is not None:
            fired += self._observe_unlocked(f"{phase}.step_gap", now - last, step, phase)

        self._steps_seen += 1
        if self._registry is not None and self._gauge_rules:
            if self._steps_seen % self._sample_every == 0:
                for rule in self._gauge_rules:
                    name = rule.metric[len("gauge:"):]
                    if name in self._registry:
                        value = self._registry.gauge(name).value()
                        fired += self._observe_unlocked(rule.metric, value, step, phase)
        return fired

    def observe_span(self, span) -> List[Alert]:
        """Feed one finished span; returns alerts fired by it."""
        duration = getattr(span, "duration", None)
        if duration is None:
            return []
        with self._lock:
            return self._observe_unlocked(f"span.{span.name}", float(duration))

    def observe_value(
        self,
        series: str,
        value: float,
        step: Optional[int] = None,
        phase: Optional[str] = None,
    ) -> List[Alert]:
        """Feed one value of a caller-derived series; returns fired alerts.

        The SLO engine's entry point: burn rates and budget balances are
        computed outside the event stream but must still fire through the
        same rule/window/cooldown machinery, so a sustained breach
        heartbeats instead of spamming and ``raise_on`` escalation works
        unchanged.
        """
        with self._lock:
            return self._observe_unlocked(series, float(value), step, phase)

    def add_rules(self, rules: Sequence[Rule]) -> None:
        """Append rules (e.g. compiled from SLOs) to the engine.

        The per-series rule cache is dropped so series observed before
        the addition re-match against the extended rule list.
        """
        with self._lock:
            self.rules.extend(rules)
            self._rules_for.clear()
            self._gauge_rules = [
                rule for rule in self.rules if rule.metric.startswith("gauge:")
            ]

    def last_alert_age(
        self, severity: Optional[str] = None, now: Optional[float] = None
    ) -> Optional[float]:
        """Seconds since the most recent alert (of ``severity``), or None.

        The readiness probe's primitive: ``/ready`` reports unready while
        a critical alert is younger than its recovery window.
        """
        now = time.time() if now is None else now
        with self._lock:
            for alert in reversed(self.alerts):
                if severity is None or alert.severity == severity:
                    return max(0.0, now - alert.created)
        return None

    # -- internals ------------------------------------------------------
    def _matching_rules_unlocked(self, series: str) -> List[Rule]:
        cached = self._rules_for.get(series)
        if cached is None:
            cached = [
                rule for rule in self.rules
                if rule.metric == series or fnmatch.fnmatchcase(series, rule.metric)
            ]
            self._rules_for[series] = cached
        return cached

    def _observe(
        self,
        series: str,
        value: float,
        step: Optional[int] = None,
        phase: Optional[str] = None,
    ) -> List[Alert]:
        with self._lock:
            return self._observe_unlocked(series, value, step, phase)

    def _observe_unlocked(
        self,
        series: str,
        value: float,
        step: Optional[int] = None,
        phase: Optional[str] = None,
    ) -> List[Alert]:
        rules = self._matching_rules_unlocked(series)
        if not rules:
            return []
        buffer = self._series.get(series)
        if buffer is None:
            maxlen = max(rule.window for rule in rules)
            buffer = self._series[series] = deque(maxlen=maxlen)
        buffer.append(value)
        window = list(buffer)
        fired: List[Alert] = []
        for index, rule in enumerate(rules):
            key = (index, series)
            remaining = self._cooldown.get(key, 0)
            if remaining > 0:
                self._cooldown[key] = remaining - 1
                continue
            message = rule.condition(window[-rule.window:])
            if message is None:
                continue
            alert = Alert(
                rule=rule.name,
                severity=rule.severity,
                series=series,
                message=message,
                value=value,
                step=step,
                phase=phase,
            )
            self.alerts.append(alert)
            fired.append(alert)
            cooldown = rule.window if rule.cooldown is None else rule.cooldown
            if cooldown > 0:
                self._cooldown[key] = cooldown
        return fired

    # -- introspection --------------------------------------------------
    def series_names(self) -> List[str]:
        """Sorted names of every series the engine has seen."""
        return sorted(self._series)

    def count(self, severity: Optional[str] = None) -> int:
        """Alerts fired so far, optionally filtered by severity."""
        if severity is None:
            return len(self.alerts)
        return sum(1 for alert in self.alerts if alert.severity == severity)
