"""Render a run-log JSONL file as a human-readable summary.

Usage::

    python -m repro.obs.report run.jsonl            # text
    python -m repro.obs.report run.jsonl --json     # machine-readable
    python -m repro.obs.report run.jsonl --profile  # + profiler section

Sections: run header (id, status, wall time, config/seeds), step
throughput, loss curves as text sparklines (one per loss series, grouped
by phase), fired alerts and drift checks, the aggregated span breakdown
(with bucket p50/p95 columns) sorted by total time, the slowest
individual spans, and the final metric snapshot.

``--json`` emits the same flat series summary the regression gate uses
(:func:`repro.obs.compare.run_summary`) plus the alert and drift events,
so dashboards and the gate read one shape.

Everything here reads plain dicts produced by
:func:`repro.obs.read_run_log` — the module never imports the model
stack, so it can render logs from any machine.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ._render import format_seconds as _format_seconds
from ._render import table as _table
from .compare import _percentile, run_summary
from .runlog import read_run_log, tail_events

__all__ = ["sparkline", "aggregate_profile", "follow", "summarize",
           "summarize_json", "main"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 48) -> str:
    """Compress a numeric series into a one-line block-character chart.

    Longer series are bucket-averaged down to ``width`` columns; constant
    series render as a flat mid-height line.
    """
    values = [float(v) for v in values]
    if not values:
        return ""
    if len(values) > width:
        # Average each bucket so long runs keep their envelope shape.
        bucketed = []
        for i in range(width):
            lo = i * len(values) // width
            hi = max((i + 1) * len(values) // width, lo + 1)
            chunk = values[lo:hi]
            bucketed.append(sum(chunk) / len(chunk))
        values = bucketed
    low, high = min(values), max(values)
    if high - low < 1e-12:
        return _BLOCKS[3] * len(values)
    scale = (len(_BLOCKS) - 1) / (high - low)
    return "".join(_BLOCKS[int((v - low) * scale + 0.5)] for v in values)


def _format_bytes(value: float) -> str:
    value = float(value)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024.0
    return f"{value:.1f}GiB"


def aggregate_profile(events: List[Dict]) -> Optional[Dict[str, object]]:
    """Fold every ``profile`` event back into one cumulative aggregate.

    ``profile`` events are *deltas* (per flush, per process), so summation
    is exact — including across a relay-merged log where worker events
    carry a ``worker`` field.  Seconds are estimated per event from its
    own ``hz`` (worker and parent rates may differ).  Memory watermarks
    are maxed per process.
    """
    profiles = [e for e in events if e.get("event") == "profile"]
    if not profiles:
        return None
    samples = 0
    seconds = 0.0
    functions: Dict[str, Dict[str, float]] = {}
    spans: Dict[str, Dict[str, float]] = {}
    stacks: Dict[Tuple[str, str, str], int] = {}
    stacks_dropped = 0
    memory: Dict[str, Dict[str, object]] = {}
    processes = set()
    for event in profiles:
        hz = float(event.get("hz") or 0.0)
        per_sample = 1.0 / hz if hz > 0 else 0.0
        worker = event.get("worker")
        process = "parent" if worker is None else f"worker{worker}"
        processes.add(process)
        delta = int(event.get("samples") or 0)
        samples += delta
        seconds += delta * per_sample
        stacks_dropped += int(event.get("stacks_dropped") or 0)
        for entry in event.get("functions") or ():
            name = str(entry.get("function"))
            count = int(entry.get("samples") or 0)
            slot = functions.setdefault(name, {"samples": 0, "seconds": 0.0})
            slot["samples"] += count
            slot["seconds"] += count * per_sample
        for entry in event.get("spans") or ():
            name = str(entry.get("span"))
            count = int(entry.get("samples") or 0)
            slot = spans.setdefault(name, {"samples": 0, "seconds": 0.0})
            slot["samples"] += count
            slot["seconds"] += count * per_sample
        for entry in event.get("stacks") or ():
            key = (process, str(entry.get("thread")), str(entry.get("stack")))
            stacks[key] = stacks.get(key, 0) + int(entry.get("count") or 0)
        event_memory = event.get("memory") or {}
        for kind in ("peak_rss_bytes", "tracemalloc_peak_bytes"):
            if event_memory.get(kind) is not None:
                per_process = memory.setdefault(kind, {})
                per_process[process] = max(
                    int(per_process.get(process, 0)), int(event_memory[kind])
                )
        for kind in ("span_peak_rss_bytes", "span_tracemalloc_peak_bytes"):
            for span_name, peak in (event_memory.get(kind) or {}).items():
                per_process = memory.setdefault(kind, {}).setdefault(process, {})
                per_process[span_name] = max(
                    int(per_process.get(span_name, 0)), int(peak)
                )
    return {
        "samples": samples,
        "estimated_seconds": seconds,
        "flushes": len(profiles),
        "processes": sorted(processes),
        "stacks_dropped": stacks_dropped,
        "hot_functions": [
            {
                "function": name,
                "samples": int(slot["samples"]),
                "seconds": slot["seconds"],
                "share": slot["samples"] / samples if samples else 0.0,
            }
            for name, slot in sorted(
                functions.items(), key=lambda item: (-item[1]["samples"], item[0])
            )
        ],
        "span_self_time": {
            name: {"samples": int(slot["samples"]), "seconds": slot["seconds"]}
            for name, slot in sorted(
                spans.items(), key=lambda item: (-item[1]["samples"], item[0])
            )
        },
        "stacks": [
            {"process": process, "thread": thread, "stack": stack,
             "count": count}
            for (process, thread, stack), count in sorted(
                stacks.items(), key=lambda item: (-item[1], item[0])
            )
        ],
        "memory": memory,
    }


def _profile_section(profile: Dict[str, object], top_n: int = 15) -> List[str]:
    """Text lines of the ``--profile`` report section."""
    lines: List[str] = ["", "profile:"]
    lines.append(
        f"  samples: {profile['samples']} across "
        f"{len(profile['processes'])} process(es) "
        f"({', '.join(profile['processes'])}), "
        f"~{_format_seconds(float(profile['estimated_seconds']))} on-CPU"
    )
    if profile.get("stacks_dropped"):
        lines.append(
            f"  stacks dropped by per-flush cap: {profile['stacks_dropped']}"
        )
    hot = profile.get("hot_functions") or []
    if hot:
        rows = [
            (
                str(entry["function"]),
                str(entry["samples"]),
                _format_seconds(float(entry["seconds"])),
                f"{100.0 * float(entry['share']):.1f}%",
            )
            for entry in hot[:top_n]
        ]
        lines.append("")
        lines.append("  hot functions (leaf self-time):")
        lines.extend(
            "    " + line
            for line in _table(rows, ("function", "samples", "est", "share"))
        )
    span_self = profile.get("span_self_time") or {}
    if span_self:
        rows = [
            (name, str(slot["samples"]), _format_seconds(float(slot["seconds"])))
            for name, slot in list(span_self.items())[:top_n]
        ]
        lines.append("")
        lines.append("  span self-time (innermost open span per sample):")
        lines.extend(
            "    " + line
            for line in _table(rows, ("span", "samples", "est"))
        )
    top_stacks = (profile.get("stacks") or [])[:5]
    if top_stacks:
        lines.append("")
        lines.append("  top stacks (collapsed, root first):")
        for entry in top_stacks:
            lines.append(
                f"    {entry['count']:>6}  [{entry['process']}/{entry['thread']}]"
            )
            lines.append(f"            {entry['stack']}")
    memory = profile.get("memory") or {}
    rss = memory.get("peak_rss_bytes")
    if rss:
        peaks = ", ".join(
            f"{process}={_format_bytes(peak)}"
            for process, peak in sorted(rss.items())
        )
        lines.append("")
        lines.append(f"  peak RSS: {peaks}")
    traced = memory.get("tracemalloc_peak_bytes")
    if traced:
        peaks = ", ".join(
            f"{process}={_format_bytes(peak)}"
            for process, peak in sorted(traced.items())
        )
        lines.append(f"  tracemalloc peak: {peaks}")
    return lines


def _loss_series(steps: List[Dict]) -> Dict[Tuple[str, str], List[float]]:
    """``{(phase, loss_name): [values in step order]}``."""
    series: Dict[Tuple[str, str], List[float]] = {}
    for event in steps:
        phase = str(event.get("phase", ""))
        for name, value in (event.get("losses") or {}).items():
            if isinstance(value, (int, float)):
                series.setdefault((phase, name), []).append(float(value))
    return series


def summarize(events: List[Dict], width: int = 48,
              profile: bool = False) -> str:
    """Build the full multi-section text summary for a run's events.

    ``profile=True`` appends the sampling-profiler section (hot functions,
    span self-time, top collapsed stacks, memory watermarks) aggregated
    from the log's ``profile`` events.
    """
    by_kind: Dict[str, List[Dict]] = {}
    for event in events:
        by_kind.setdefault(str(event.get("event", "?")), []).append(event)

    lines: List[str] = []

    # -- run header -----------------------------------------------------
    start = by_kind.get("run_start", [{}])[0]
    end = by_kind.get("run_end", [{}])[-1] if "run_end" in by_kind else {}
    run_id = start.get("run_id") or end.get("run_id") or "<unknown>"
    lines.append(f"run {run_id}  status={end.get('status', 'in-flight')}")
    if end.get("total_seconds") is not None:
        lines.append(f"wall time: {_format_seconds(float(end['total_seconds']))}")
    if start.get("seeds"):
        seeds = ", ".join(f"{k}={v}" for k, v in sorted(start["seeds"].items()))
        lines.append(f"seeds: {seeds}")
    if start.get("config"):
        config = start["config"]
        shown = ", ".join(f"{k}={config[k]}" for k in sorted(config)[:8])
        more = f" (+{len(config) - 8} more)" if len(config) > 8 else ""
        lines.append(f"config: {shown}{more}")

    # -- steps & throughput ---------------------------------------------
    steps = by_kind.get("step", [])
    if steps:
        lines.append("")
        lines.append(f"steps: {len(steps)}")
        elapsed = [float(e["elapsed"]) for e in steps if "elapsed" in e]
        if len(elapsed) >= 2 and elapsed[-1] > elapsed[0]:
            rate = (len(elapsed) - 1) / (elapsed[-1] - elapsed[0])
            lines.append(f"throughput: {rate:.2f} steps/s")
        documents = sum(int(e.get("documents", 0)) for e in steps)
        if documents and len(elapsed) >= 2 and elapsed[-1] > elapsed[0]:
            lines.append(
                f"            {documents / (elapsed[-1] - elapsed[0]):.2f} docs/s"
                f" ({documents} documents)"
            )
        grad_norms = [
            float(e["grad_norm"]) for e in steps
            if isinstance(e.get("grad_norm"), (int, float))
        ]
        if grad_norms:
            lines.append(
                f"grad norm: last={grad_norms[-1]:.4f} "
                f"max={max(grad_norms):.4f}"
            )

        series = _loss_series(steps)
        if series:
            lines.append("")
            lines.append("loss curves:")
            for (phase, name), values in sorted(series.items()):
                label = f"{phase}/{name}" if phase else name
                lines.append(
                    f"  {label:<24} {sparkline(values, width)}  "
                    f"first={values[0]:.4f} last={values[-1]:.4f}"
                )

    # -- epochs / evals -------------------------------------------------
    evals = by_kind.get("eval", []) + [
        e for e in by_kind.get("epoch", []) if any(
            k for k in e if k.startswith("val_")
        )
    ]
    scores = [
        (k, float(v))
        for e in evals
        for k, v in e.items()
        if k.startswith("val_") and isinstance(v, (int, float))
    ]
    if scores:
        lines.append("")
        best: Dict[str, float] = {}
        last: Dict[str, float] = {}
        for key, value in scores:
            best[key] = max(best.get(key, float("-inf")), value)
            last[key] = value
        parts = [f"{k} last={last[k]:.4f} best={best[k]:.4f}" for k in sorted(best)]
        lines.append("validation: " + "; ".join(parts))

    # -- alerts & drift -------------------------------------------------
    alerts = by_kind.get("alert", [])
    if alerts:
        lines.append("")
        lines.append(f"alerts ({len(alerts)}):")
        for alert in alerts:
            where = f" step {alert['step']}" if alert.get("step") is not None else ""
            lines.append(
                f"  [{alert.get('severity', '?')}] {alert.get('rule', '?')} on "
                f"{alert.get('series', '?')}{where}: {alert.get('message', '')}"
            )
    drift_events = by_kind.get("drift", [])
    if drift_events:
        flagged = sorted(
            {name for e in drift_events for name in (e.get("drifted") or ())}
        )
        lines.append("")
        lines.append(
            f"drift checks: {len(drift_events)}"
            + (f"  drifted features: {', '.join(flagged)}" if flagged
               else "  (all stable)")
        )

    # -- span breakdown -------------------------------------------------
    spans = by_kind.get("span", [])
    if spans:
        durations: Dict[str, List[float]] = {}
        for span in spans:
            durations.setdefault(str(span.get("name")), []).append(
                float(span.get("duration") or 0.0)
            )
        grand = sum(sum(values) for values in durations.values())
        rows = [
            (
                name,
                str(len(values)),
                _format_seconds(sum(values)),
                _format_seconds(sum(values) / len(values)),
                _format_seconds(_percentile(values, 50)),
                _format_seconds(_percentile(values, 95)),
                f"{100.0 * sum(values) / grand:.1f}%" if grand > 0 else "-",
            )
            for name, values in sorted(
                durations.items(), key=lambda item: -sum(item[1])
            )
        ]
        lines.append("")
        lines.append("span breakdown:")
        lines.extend(
            "  " + line
            for line in _table(
                rows, ("name", "calls", "total", "mean", "p50", "p95", "share")
            )
        )

        slowest = sorted(
            spans, key=lambda s: -float(s.get("duration") or 0.0)
        )[:5]
        lines.append("")
        lines.append("slowest spans:")
        for span in slowest:
            status = "" if span.get("status") == "ok" else f"  [{span.get('status')}]"
            lines.append(
                f"  {_format_seconds(float(span.get('duration') or 0.0)):>9}  "
                f"{span.get('name')}{status}"
            )

    # -- metrics --------------------------------------------------------
    snapshots = by_kind.get("metric_snapshot", [])
    if snapshots:
        metrics = snapshots[-1].get("metrics", {})
        rows = []
        for name in sorted(metrics):
            dump = metrics[name]
            for entry in dump.get("series", []):
                labels = entry.get("labels") or {}
                label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
                value = entry.get("value")
                if isinstance(value, dict):  # histogram/timer series
                    # Only timers are known to hold seconds; plain
                    # histograms may count anything (batch sizes, ratios).
                    if dump.get("kind") == "timer":
                        mean = _format_seconds(float(value.get("mean", 0.0)))
                        peak = _format_seconds(float(value.get("max", 0.0)))
                        p95 = _format_seconds(float(value.get("p95", 0.0)))
                    else:
                        mean = f"{float(value.get('mean', 0.0)):.4g}"
                        peak = f"{float(value.get('max', 0.0)):.4g}"
                        p95 = f"{float(value.get('p95', 0.0)):.4g}"
                    text = (
                        f"count={value.get('count')} mean={mean} "
                        f"p95={p95} max={peak}"
                    )
                elif isinstance(value, float) and value != int(value):
                    text = f"{value:.4f}"
                else:
                    text = str(int(value)) if isinstance(value, float) else str(value)
                rows.append(
                    (f"{name}{{{label_text}}}" if label_text else name,
                     dump.get("kind", "?"), text)
                )
        if rows:
            lines.append("")
            lines.append("metrics (final snapshot):")
            lines.extend(
                "  " + line for line in _table(rows, ("metric", "kind", "value"))
            )

    if profile:
        aggregated = aggregate_profile(events)
        if aggregated is None:
            lines.append("")
            lines.append("profile: no profile events in this log "
                         "(run with profile_hz set)")
        else:
            lines.extend(_profile_section(aggregated))

    lines.append("")
    lines.append(f"events: {len(events)} total "
                 + " ".join(f"{k}={len(v)}" for k, v in sorted(by_kind.items())))
    return "\n".join(lines)


def summarize_json(events: List[Dict]) -> Dict[str, object]:
    """Machine-readable summary sharing the regression gate's shape.

    ``summary`` is exactly :func:`repro.obs.compare.run_summary`, so a
    dashboard and ``python -m repro.obs.compare`` read the same keys;
    ``alerts``/``drift`` carry those events verbatim.
    """
    starts = [e for e in events if e.get("event") == "run_start"]
    ends = [e for e in events if e.get("event") == "run_end"]
    counts: Dict[str, int] = {}
    for event in events:
        kind = str(event.get("event", "?"))
        counts[kind] = counts.get(kind, 0) + 1
    return {
        "run_id": starts[0].get("run_id") if starts else None,
        "status": ends[-1].get("status") if ends else "in-flight",
        "summary": run_summary(events),
        "alerts": [e for e in events if e.get("event") == "alert"],
        "drift": [e for e in events if e.get("event") == "drift"],
        "profile": aggregate_profile(events),
        "event_counts": counts,
    }


def follow(
    path: str,
    interval: float = 2.0,
    width: int = 48,
    profile: bool = False,
    as_json: bool = False,
    max_polls: Optional[int] = None,
    stream=None,
) -> int:
    """Poll a live run-log JSONL and re-render on every batch of events.

    Uses :func:`repro.obs.tail_events`, so a half-written trailing line
    is left for the next poll and a not-yet-created log reads as "no
    events yet" — start following before the run starts if you like.
    Returns once ``run_end`` arrives (or after ``max_polls`` polls);
    Ctrl-C also exits cleanly.
    """
    stream = stream or sys.stdout
    events: List[Dict] = []
    offset = 0
    polls = 0
    try:
        while True:
            fresh, offset = tail_events(path, offset)
            if fresh:
                events.extend(fresh)
                if as_json:
                    body = json.dumps(
                        summarize_json(events), indent=2, sort_keys=True
                    )
                else:
                    body = summarize(events, width=width, profile=profile)
                print(body, file=stream)
                print(
                    f"--- following {path}: {len(events)} event(s), "
                    f"polling every {interval:g}s (Ctrl-C to stop) ---",
                    file=stream, flush=True,
                )
                if any(e.get("event") == "run_end" for e in fresh):
                    return 0
            polls += 1
            if max_polls is not None and polls >= max_polls:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: ``python -m repro.obs.report run.jsonl``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarize a repro.obs run-log JSONL file.",
    )
    parser.add_argument("path", help="path to the run log (JSONL)")
    parser.add_argument(
        "--width", type=int, default=48, help="sparkline width in columns"
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the flat series summary (the regression gate's shape) "
        "plus alert/drift events and the aggregated profile as JSON",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="append the sampling-profiler section (hot functions, span "
        "self-time, collapsed stacks, memory watermarks)",
    )
    parser.add_argument(
        "--follow", action="store_true",
        help="poll a live log and re-render as events stream in; exits on "
        "run_end or Ctrl-C (the log need not exist yet)",
    )
    parser.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between --follow polls (default: 2)",
    )
    options = parser.parse_args(argv)
    if options.follow:
        return follow(
            options.path,
            interval=options.interval,
            width=options.width,
            profile=options.profile,
            as_json=options.json,
        )
    try:
        events = read_run_log(options.path)
    except OSError as error:
        print(f"error: cannot read {options.path}: {error}", file=sys.stderr)
        return 1
    if not events:
        print(f"error: {options.path} holds no events", file=sys.stderr)
        return 1
    try:
        if options.json:
            print(json.dumps(summarize_json(events), indent=2, sort_keys=True))
        else:
            print(summarize(events, width=options.width,
                            profile=options.profile))
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — not an error.
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
