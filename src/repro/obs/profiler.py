"""Continuous sampling profiler: collapsed stacks with span attribution.

A :class:`Profiler` runs a daemon thread that samples every live thread's
Python stack via ``sys._current_frames()`` at a configurable rate and
aggregates three views of where wall-clock time goes:

* **collapsed stacks** — ``module:function;module:function;...`` strings
  (root first, flamegraph.pl input format) counted per thread;
* **hot functions** — leaf-frame *self-time* sample counts, the
  below-span-granularity breakdown the span tracer cannot see;
* **span self-time** — each sample is attributed to the innermost open
  :class:`~repro.obs.tracing.Span` of the sampled thread (via the
  thread-tracking registry the profiler switches on in
  :mod:`repro.obs.tracing`), so a span like ``encode`` gains a
  "how much of it was *this* frame actually on-CPU" decomposition.

Alongside stacks the sampler tracks memory watermarks: peak RSS (read
from ``/proc/self/statm`` where available) and, when :mod:`tracemalloc`
is already tracing, traced-heap peaks — both globally and per *top-level*
span (the root of the sampled thread's open-span stack).

Aggregates flush as ``profile`` events into the active
:class:`~repro.obs.runlog.RunLogger` stream (periodically plus once at
stop), each carrying a bounded, merge-safe *delta* since the previous
flush — ``repro.obs.report --profile`` sums them back together, across
processes too once the relay has folded worker spools into one log.

Discipline: stack identity lives **only** in event payloads.  The sole
metric the profiler touches is ``profiler.samples{thread=...}`` — bounded
label cardinality, per lint rule RN012.

When no profiler is constructed nothing here runs: span enter/exit pay
one module-global truthiness check and every other obs fast path is
untouched.
"""

from __future__ import annotations

import os
import sys
import threading
import time
import tracemalloc
from typing import Dict, List, Optional, Tuple

from . import tracing

__all__ = ["Profiler", "DEFAULT_PROFILE_HZ", "collapse_frame"]

#: Default sampling rate (samples per second, per process).  Chosen low
#: enough that a numpy-substrate training step regresses well under 5%
#: (the BENCH acceptance envelope) and deliberately *not* a divisor of
#: common timer frequencies so the sampler does not phase-lock with
#: periodic work.
DEFAULT_PROFILE_HZ = 67.0

_PAGE_SIZE = 4096
try:  # pragma: no cover - resource is POSIX-only
    import resource

    _PAGE_SIZE = resource.getpagesize()
except Exception:  # pragma: no cover - non-POSIX fallback
    pass


def _read_rss_bytes() -> Optional[int]:
    """Current resident set size, or None where /proc is unavailable."""
    try:
        with open("/proc/self/statm", "rb") as handle:
            return int(handle.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        return None


def collapse_frame(frame, max_depth: int = 64) -> Tuple[str, str]:
    """(collapsed stack root-first, leaf function) for one sampled frame.

    Frames render as ``module:function``; stacks deeper than ``max_depth``
    keep their *leaf-most* frames (the hot end) behind a ``...`` marker.
    """
    parts: List[str] = []
    while frame is not None and len(parts) < max_depth:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        parts.append(f"{module}:{code.co_name}")
        frame = frame.f_back
    if frame is not None:
        parts.append("...")
    parts.reverse()
    return ";".join(parts), parts[-1] if parts[-1] != "..." else parts[-2]


class Profiler:
    """Background stack sampler with span attribution and memory watermarks.

    Standalone use (aggregate only, e.g. to embed in a benchmark report)::

        profiler = Profiler(hz=67)
        profiler.start()
        ...                      # workload
        profiler.stop()
        report["profile"] = profiler.summary()

    Session use — let :func:`repro.obs.telemetry` drive the lifecycle::

        with obs.telemetry(run_log="run.jsonl", profile_hz=67):
            ...                  # profile events stream into the log

    The sampler thread is a daemon and never holds its aggregation lock
    while sleeping; ``stop()`` is idempotent and flushes the final delta.
    """

    def __init__(
        self,
        hz: float = DEFAULT_PROFILE_HZ,
        max_stack_depth: int = 64,
        max_stacks_per_flush: int = 200,
        flush_interval: float = 10.0,
        track_memory: bool = True,
    ):
        if hz <= 0:
            raise ValueError("profile hz must be positive")
        self.hz = float(hz)
        self.max_stack_depth = int(max_stack_depth)
        self.max_stacks_per_flush = int(max_stacks_per_flush)
        self.flush_interval = float(flush_interval)
        self.track_memory = bool(track_memory)
        self._interval = 1.0 / self.hz
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._session = None
        self._started_at: Optional[float] = None
        self._stopped_at: Optional[float] = None
        # Pending (since last flush) and total (since start) aggregates.
        self._pending_stacks: Dict[Tuple[str, str], int] = {}
        self._pending_functions: Dict[str, int] = {}
        self._pending_spans: Dict[str, int] = {}
        self._pending_samples_by_thread: Dict[str, int] = {}
        self._total_stacks: Dict[Tuple[str, str], int] = {}
        self._total_functions: Dict[str, int] = {}
        self._total_spans: Dict[str, int] = {}
        self._total_samples = 0
        self._flushed_samples = 0
        # Memory watermarks (cumulative; reported whole on every flush).
        self._peak_rss: Optional[int] = None
        self._peak_traced: Optional[int] = None
        self._span_peak_rss: Dict[str, int] = {}
        self._span_peak_traced: Dict[str, int] = {}

    # -- wiring ---------------------------------------------------------
    def bind(self, session) -> None:
        """Attach the telemetry session receiving flush events/metrics."""
        self._session = session

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Launch the sampler thread (idempotent while running)."""
        if self.running:
            return
        tracing.enable_span_thread_tracking()
        with self._lock:
            self._stop_event.clear()
            self._started_at = time.perf_counter()
            self._stopped_at = None
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop sampling, join the thread, and flush the final delta."""
        thread = self._thread
        if thread is None:
            return
        self._stop_event.set()
        thread.join(timeout=max(5.0, 10.0 * self._interval))
        self._thread = None
        self._stopped_at = time.perf_counter()
        tracing.disable_span_thread_tracking()
        self.flush()

    # -- sampling loop --------------------------------------------------
    def _run(self) -> None:
        next_flush = time.perf_counter() + self.flush_interval
        while not self._stop_event.wait(self._interval):
            try:
                self._sample()
            except Exception:
                # A torn frame walk (thread exiting mid-sample) must never
                # kill the sampler; the sample is simply dropped.
                continue
            if time.perf_counter() >= next_flush:
                self.flush()
                next_flush = time.perf_counter() + self.flush_interval

    def _sample(self) -> None:
        own_ident = threading.get_ident()
        frames = sys._current_frames()
        names = {t.ident: t.name for t in threading.enumerate()}
        stacks = tracing.span_stacks_snapshot()
        rss = _read_rss_bytes() if self.track_memory else None
        traced = (
            tracemalloc.get_traced_memory()[0]
            if self.track_memory and tracemalloc.is_tracing()
            else None
        )
        with self._lock:
            for ident, frame in frames.items():
                if ident == own_ident:
                    continue
                thread_name = names.get(ident, f"thread-{ident}")
                collapsed, leaf = collapse_frame(frame, self.max_stack_depth)
                key = (thread_name, collapsed)
                self._pending_stacks[key] = self._pending_stacks.get(key, 0) + 1
                self._pending_functions[leaf] = (
                    self._pending_functions.get(leaf, 0) + 1
                )
                self._pending_samples_by_thread[thread_name] = (
                    self._pending_samples_by_thread.get(thread_name, 0) + 1
                )
                self._total_samples += 1
                span_stack = stacks.get(ident)
                if span_stack:
                    innermost = span_stack[-1].name
                    self._pending_spans[innermost] = (
                        self._pending_spans.get(innermost, 0) + 1
                    )
                    root = span_stack[0].name
                    if rss is not None:
                        self._span_peak_rss[root] = max(
                            self._span_peak_rss.get(root, 0), rss
                        )
                    if traced is not None:
                        self._span_peak_traced[root] = max(
                            self._span_peak_traced.get(root, 0), traced
                        )
            if rss is not None:
                self._peak_rss = max(self._peak_rss or 0, rss)
            if traced is not None:
                self._peak_traced = max(self._peak_traced or 0, traced)

    # -- flushing / reporting -------------------------------------------
    def flush(self) -> Optional[Dict[str, object]]:
        """Fold pending samples into the totals and emit a ``profile`` event.

        Returns the emitted payload (None when nothing was pending).  The
        payload carries the *delta* since the previous flush, so summing
        ``profile`` events — one log, or many worker spools merged into
        one — reconstructs the totals exactly.  Stacks are capped at
        ``max_stacks_per_flush`` by count; the cap is reported in
        ``stacks_dropped`` rather than silently applied.
        """
        with self._lock:
            if not self._pending_stacks and not self._pending_samples_by_thread:
                return None
            pending_stacks = self._pending_stacks
            pending_functions = self._pending_functions
            pending_spans = self._pending_spans
            by_thread = self._pending_samples_by_thread
            self._pending_stacks = {}
            self._pending_functions = {}
            self._pending_spans = {}
            self._pending_samples_by_thread = {}
            for key, count in pending_stacks.items():
                self._total_stacks[key] = self._total_stacks.get(key, 0) + count
            for name, count in pending_functions.items():
                self._total_functions[name] = (
                    self._total_functions.get(name, 0) + count
                )
            for name, count in pending_spans.items():
                self._total_spans[name] = self._total_spans.get(name, 0) + count
            delta_samples = self._total_samples - self._flushed_samples
            self._flushed_samples = self._total_samples
            memory = self._memory_summary_locked()

        ranked = sorted(
            pending_stacks.items(), key=lambda item: (-item[1], item[0])
        )
        kept = ranked[: self.max_stacks_per_flush]
        payload: Dict[str, object] = {
            "hz": self.hz,
            "samples": delta_samples,
            "stacks": [
                {"thread": thread, "stack": stack, "count": count}
                for (thread, stack), count in kept
            ],
            "stacks_dropped": len(ranked) - len(kept),
            "functions": [
                {"function": name, "samples": count}
                for name, count in sorted(
                    pending_functions.items(), key=lambda item: (-item[1], item[0])
                )
            ],
            "spans": [
                {"span": name, "samples": count}
                for name, count in sorted(
                    pending_spans.items(), key=lambda item: (-item[1], item[0])
                )
            ],
            "memory": memory,
        }
        session = self._session
        if session is not None:
            session.event("profile", **payload)
            counter = session.metrics.counter(
                "profiler.samples", help="stack samples taken by the profiler"
            )
            for thread_name, count in by_thread.items():
                counter.inc(count, thread=thread_name)
        return payload

    def _memory_summary_locked(self) -> Dict[str, object]:
        memory: Dict[str, object] = {}
        if self._peak_rss is not None:
            memory["peak_rss_bytes"] = self._peak_rss
        if self._peak_traced is not None:
            memory["tracemalloc_peak_bytes"] = self._peak_traced
        if self._span_peak_rss:
            memory["span_peak_rss_bytes"] = dict(self._span_peak_rss)
        if self._span_peak_traced:
            memory["span_tracemalloc_peak_bytes"] = dict(self._span_peak_traced)
        return memory

    def summary(self, top_n: int = 20) -> Dict[str, object]:
        """Cumulative JSON-ready aggregate (pending samples included).

        The shape the benchmark suites embed: hot functions and span
        self-time with sample counts *and* estimated seconds
        (``samples / hz``), the top collapsed stacks, and the memory
        watermarks.
        """
        with self._lock:
            functions = dict(self._total_functions)
            for name, count in self._pending_functions.items():
                functions[name] = functions.get(name, 0) + count
            spans = dict(self._total_spans)
            for name, count in self._pending_spans.items():
                spans[name] = spans.get(name, 0) + count
            stacks = dict(self._total_stacks)
            for key, count in self._pending_stacks.items():
                stacks[key] = stacks.get(key, 0) + count
            samples = self._total_samples
            memory = self._memory_summary_locked()
        seconds = 1.0 / self.hz
        ended = self._stopped_at or time.perf_counter()
        return {
            "hz": self.hz,
            "samples": samples,
            "wall_seconds": (
                ended - self._started_at if self._started_at is not None else 0.0
            ),
            "hot_functions": [
                {
                    "function": name,
                    "samples": count,
                    "seconds": count * seconds,
                    "share": count / samples if samples else 0.0,
                }
                for name, count in sorted(
                    functions.items(), key=lambda item: (-item[1], item[0])
                )[:top_n]
            ],
            "span_self_time": {
                name: {"samples": count, "seconds": count * seconds}
                for name, count in sorted(
                    spans.items(), key=lambda item: (-item[1], item[0])
                )
            },
            "stacks": [
                {"thread": thread, "stack": stack, "count": count}
                for (thread, stack), count in sorted(
                    stacks.items(), key=lambda item: (-item[1], item[0])
                )[:top_n]
            ],
            "memory": memory,
        }
