"""Benchmark trajectory: committed per-bench history and a drift gate.

``repro.obs.compare`` gates one run against one baseline; this module
gates the *trajectory*.  Every time a perf suite writes its
``BENCH_<name>.json`` report through :func:`write_bench_report`, a
summarized record — the report's key latency / throughput / parity
numbers, the git SHA, a telemetry digest, and the smoke flag — is also
appended to ``benchmarks/history/<name>.jsonl``.  Those files are
committed, so the repository carries its own perf history across PRs::

    python -m repro.obs.bench_history              # render the trend
    python -m repro.obs.bench_history --check      # exit 1 on regression

The gate compares the **latest** full (non-smoke) record against the
**per-key median of the trailing window** of full records before it,
reusing :class:`repro.obs.compare.Gate` semantics: wall-clock keys fail
beyond a 2.0x ratio (with the same micro-timing floor), throughput and
speedup keys fail on a >50% relative drop.  Medians make the baseline
robust to a single noisy historical run; smoke records (CI-sized shrunk
benchmarks) are recorded for provenance but never gated, so a smoke run
can't masquerade as a 10x regression.

Like the rest of the offline tooling this module reads plain dicts and
never imports the model stack.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Sequence, Tuple

from ._render import table
from .compare import Gate, _flatten, compare_summaries
from .report import sparkline
from .runlog import write_json

__all__ = [
    "BENCH_GATES",
    "DEFAULT_HISTORY_DIR",
    "DEFAULT_TRAILING_WINDOW",
    "append_record",
    "check_history",
    "load_history",
    "main",
    "summarize_report",
    "write_bench_report",
]

#: History location relative to the repository root (the directory the
#: ``BENCH_*.json`` reports land in).
DEFAULT_HISTORY_DIR = os.path.join("benchmarks", "history")

#: Full records the trailing-median baseline draws from.
DEFAULT_TRAILING_WINDOW = 5

#: Flattened report keys worth tracking across PRs.  Everything else in
#: a report (config echoes, per-variant raw samples, the full telemetry
#: summary) stays in the one-shot ``BENCH_*.json``.
KEY_PATTERNS: Tuple[str, ...] = (
    "*seconds*",
    "*per_second*",
    "*per_document*",
    "*per_resume*",
    "*speedup*",
    "*parity*",
    "*throughput*",
    "*waste*",
)

#: Subtrees excluded from trajectory records even when a key matches —
#: telemetry summaries carry span timings that duplicate the headline
#: numbers at much higher cardinality.
EXCLUDE_PREFIXES: Tuple[str, ...] = ("telemetry.", "profile.")

#: Trajectory gates: latency at most 2x the trailing median, throughput
#: and speedups at most halved.  ``timing=True`` keys inherit compare's
#: micro-timing floor, so sub-100µs baselines never gate on noise.
BENCH_GATES: Tuple[Gate, ...] = (
    Gate("*seconds*", 2.0, "ratio", timing=True),
    Gate("*per_second*", 0.5, "rel_decrease"),
    Gate("*throughput*", 0.5, "rel_decrease"),
    Gate("*speedup*", 0.5, "rel_decrease"),
)


def _git_sha() -> Optional[str]:
    """Short commit SHA of the working tree, or None outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def bench_name(report_path: str) -> str:
    """``.../BENCH_block_inference.json`` → ``block_inference``."""
    stem = os.path.splitext(os.path.basename(report_path))[0]
    return stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem


def summarize_report(report: Dict[str, object]) -> Dict[str, float]:
    """The flattened numeric keys of a report worth tracking over time."""
    flat = _flatten(report)
    return {
        key: value
        for key, value in sorted(flat.items())
        if not key.startswith(EXCLUDE_PREFIXES)
        and any(fnmatchcase(key, pattern) for pattern in KEY_PATTERNS)
    }


def _telemetry_digest(report: Dict[str, object]) -> Dict[str, int]:
    """Bounded shape summary of an embedded telemetry session."""
    telemetry = report.get("telemetry")
    if not isinstance(telemetry, dict):
        return {}
    digest = {
        "spans": len(telemetry.get("spans") or {}),
        "metrics": len(telemetry.get("metrics") or {}),
    }
    if "alerts" in telemetry:
        digest["alerts"] = len(telemetry.get("alerts") or ())
    return digest


def append_record(
    report_path: str,
    report: Dict[str, object],
    history_dir: Optional[str] = None,
) -> str:
    """Append one trajectory record for ``report``; returns the file path.

    ``history_dir`` defaults to ``benchmarks/history`` next to the
    report (reports land in the repository root).
    """
    if history_dir is None:
        history_dir = os.path.join(
            os.path.dirname(os.path.abspath(report_path)), DEFAULT_HISTORY_DIR
        )
    os.makedirs(history_dir, exist_ok=True)
    record = {
        "bench": bench_name(report_path),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_sha": _git_sha(),
        "smoke": bool(report.get("smoke", False)),
        "summary": summarize_report(report),
        "telemetry": _telemetry_digest(report),
    }
    path = os.path.join(history_dir, f"{record['bench']}.jsonl")
    with open(path, "a", encoding="utf-8") as handle:
        json.dump(record, handle, sort_keys=True)
        handle.write("\n")
    return path


def write_bench_report(
    path: str,
    payload: Dict[str, object],
    history_dir: Optional[str] = None,
) -> None:
    """:func:`repro.obs.write_json` plus a trajectory record.

    The perf suites' exporter: the full one-shot report goes to
    ``BENCH_*.json`` and the summarized record appends to the committed
    history, so every benchmark run extends the trajectory.
    """
    write_json(path, payload)
    append_record(path, payload, history_dir=history_dir)


def load_history(path: str) -> List[Dict[str, object]]:
    """Parse one ``benchmarks/history/<bench>.jsonl`` file."""
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def check_history(
    path: str,
    gates: Sequence[Gate] = BENCH_GATES,
    trailing: int = DEFAULT_TRAILING_WINDOW,
) -> Dict[str, object]:
    """Gate the latest full record against the trailing-median baseline.

    Returns a JSON-ready verdict: ``{"bench", "records", "gated",
    "ok", "reason" | "comparison"}``.  Histories with fewer than two
    full (non-smoke) records pass trivially — a gate needs a trajectory.
    """
    records = load_history(path)
    full = [r for r in records if not r.get("smoke")]
    result: Dict[str, object] = {
        "bench": bench_name(path),
        "records": len(records),
        "full_records": len(full),
    }
    if len(full) < 2:
        result.update(ok=True, gated=False,
                      reason="fewer than 2 full records; nothing to gate")
        return result
    latest = full[-1]
    window = full[max(0, len(full) - 1 - trailing):-1]
    baseline: Dict[str, float] = {}
    keys = set()
    for record in window:
        keys.update((record.get("summary") or {}).keys())
    for key in keys:
        values = [
            float(record["summary"][key]) for record in window
            if key in (record.get("summary") or {})
        ]
        if values:
            baseline[key] = _median(values)
    comparison = compare_summaries(
        baseline,
        dict(latest.get("summary") or {}),
        gates=gates,
        baseline_meta={
            "path": path,
            "records": len(window),
            "kind": f"trailing median of {len(window)}",
        },
        candidate_meta={
            "path": path,
            "git_sha": latest.get("git_sha"),
            "recorded_at": latest.get("recorded_at"),
        },
    )
    result.update(ok=bool(comparison["ok"]), gated=True, comparison=comparison)
    return result


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_trend(path: str, max_keys: int = 12) -> str:
    """One bench's trajectory: a sparkline + latest value per key."""
    records = load_history(path)
    lines = [f"{bench_name(path)} — {len(records)} record(s)"]
    if not records:
        return lines[0]
    latest_summary = records[-1].get("summary") or {}
    keys = sorted(latest_summary)[:max_keys]
    rows = []
    for key in keys:
        series = [
            float(record["summary"][key]) for record in records
            if key in (record.get("summary") or {})
        ]
        rows.append((
            key,
            sparkline(series, width=24),
            f"{series[-1]:.6g}" if series else "-",
            "smoke" if records[-1].get("smoke") else "full",
        ))
    lines.extend("  " + line for line in table(
        rows, ("series", "trend", "latest", "latest kind")
    ))
    dropped = len(latest_summary) - len(keys)
    if dropped > 0:
        lines.append(f"  ... {dropped} more series (see the JSONL)")
    return "\n".join(lines)


def _history_files(history_dir: str, benches: Sequence[str]) -> List[str]:
    if benches:
        return [os.path.join(history_dir, f"{name}.jsonl") for name in benches]
    if not os.path.isdir(history_dir):
        return []
    return sorted(
        os.path.join(history_dir, entry)
        for entry in os.listdir(history_dir)
        if entry.endswith(".jsonl")
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: render benchmark trajectories, or ``--check`` gate them."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.bench_history",
        description="Render committed benchmark trajectories and gate "
        "sustained regressions (latest full record vs trailing median).",
    )
    parser.add_argument(
        "benches", nargs="*",
        help="bench names (default: every .jsonl under the history dir)",
    )
    parser.add_argument(
        "--history-dir", default=DEFAULT_HISTORY_DIR,
        help=f"history location (default: {DEFAULT_HISTORY_DIR})",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 when any bench's latest full record regresses",
    )
    parser.add_argument(
        "--trailing", type=int, default=DEFAULT_TRAILING_WINDOW,
        help="full records in the median baseline window",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit verdicts as JSON"
    )
    options = parser.parse_args(argv)

    files = _history_files(options.history_dir, options.benches)
    if not files:
        print(f"no history under {options.history_dir}", file=sys.stderr)
        return 2

    if not options.check:
        blocks = []
        for path in files:
            try:
                blocks.append(render_trend(path))
            except (OSError, json.JSONDecodeError, ValueError) as error:
                print(f"error reading {path}: {error}", file=sys.stderr)
                return 2
        try:
            print("\n\n".join(blocks))
        except BrokenPipeError:
            # Downstream pager/head closed the pipe — not an error.
            sys.stderr.close()
        return 0

    verdicts: List[Dict[str, object]] = []
    for path in files:
        try:
            verdicts.append(check_history(path, trailing=options.trailing))
        except (OSError, json.JSONDecodeError, ValueError) as error:
            print(f"error reading {path}: {error}", file=sys.stderr)
            return 2
    if options.json:
        print(json.dumps(verdicts, indent=2, sort_keys=True))
    else:
        for verdict in verdicts:
            status = "ok" if verdict["ok"] else "REGRESSED"
            detail = verdict.get("reason") or (
                f"latest vs trailing median over "
                f"{verdict['full_records'] - 1} prior full record(s)"
            )
            print(f"{verdict['bench']}: {status} ({detail})")
            if not verdict["ok"]:
                for record in verdict["comparison"]["regressions"]:
                    print(
                        f"  {record['key']}: {record['baseline']:.6g} -> "
                        f"{record['candidate']:.6g} "
                        f"(gate {record['gate']}, {record['kind']} "
                        f"tolerance {record['tolerance']})"
                    )
    return 0 if all(v["ok"] for v in verdicts) else 1


if __name__ == "__main__":
    sys.exit(main())
