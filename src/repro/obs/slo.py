"""SLO engine: latency objectives, error budgets, and burn-rate alerts.

An :class:`Slo` is a declarative latency objective — *"95% of
``predict_batch`` calls finish within 250 ms"* — evaluated continuously
over the bucket-interpolated percentile machinery of
:class:`~repro.obs.metrics.Timer`:

* every finished span named by an SLO feeds its duration into the
  registry timer named by ``timer_series`` (so the latency distribution
  is scrapeable at ``/metrics`` like any other histogram);
* after each observation the tracker diffs cumulative bucket counts over
  a trailing window, interpolating *good* events (those at or under the
  objective) inside the straddling bucket exactly the way
  :meth:`Histogram.percentile` interpolates ranks;
* from the windowed good/total counts it derives **compliance**, the
  **error budget** remaining, and **burn rates** over a fast and a slow
  window — the multi-window burn is their minimum, so a breach must be
  hot in *both* windows to alert (the standard guard against paging on a
  single slow request or on ancient history);
* results publish as ``slo.compliance`` / ``slo.burn_rate`` /
  ``slo.budget_remaining`` gauges (one ``slo=<name>`` series each), and
  the burn rate additionally streams into the
  :class:`~repro.obs.alerts.AlertEngine` as series
  ``slo.burn_rate.<name>``, matched by a rule each SLO compiles for
  itself — so breaches fire through the existing alert / cooldown /
  ``raise_on`` machinery and surface at ``/alerts`` and ``/ready``.

Wired through a session::

    with obs.telemetry(alerts=True, slos=True) as tel:   # default SLOs
        model.predict_batch(documents)
    tel.metrics.gauge("slo.budget_remaining").value(slo="predict_batch")

or declaratively::

    slos = [obs.Slo("encode", timer_series="latency.encode", span="encode",
                    objective_ms=150.0, target_fraction=0.95)]
    with obs.telemetry(alerts=True, slos=slos):
        ...

Lock discipline: evaluation writes gauges (registry locks) *before*
feeding the alert engine (engine lock); no lock is ever held while
taking the other, matching the audited engine→registry edge direction.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from .alerts import Alert, AlertEngine, Rule, above
from .metrics import Histogram, MetricsRegistry

__all__ = ["Slo", "SloTracker", "default_slos", "DEFAULT_BURN_THRESHOLD"]

#: Multi-window burn rate above which the compiled rule fires.  Burn 1.0
#: means the budget drains exactly at the allowed pace; 2.0 means the
#: window is spending budget twice as fast as the objective permits.
DEFAULT_BURN_THRESHOLD = 2.0


@dataclass(frozen=True)
class Slo:
    """One latency objective: *target_fraction of events ≤ objective_ms*.

    ``timer_series`` names the registry :class:`Timer` holding the
    latency distribution; ``span`` (optional) names the tracer span that
    feeds it — when set, the tracker observes every finished span of
    that name into the timer automatically.

    ``window`` / ``fast_window`` are trailing *observation* counts (not
    seconds): burn rates diff cumulative bucket counts between now and
    that many events ago, so evaluation cadence tracks traffic instead
    of wall time.
    """

    name: str
    timer_series: str
    objective_ms: float
    target_fraction: float = 0.95
    window: int = 64
    fast_window: int = 16
    span: Optional[str] = None
    severity: str = "critical"
    burn_threshold: float = DEFAULT_BURN_THRESHOLD

    def __post_init__(self):
        if self.objective_ms <= 0:
            raise ValueError("objective_ms must be positive")
        if not 0.0 < self.target_fraction < 1.0:
            raise ValueError("target_fraction must be in (0, 1)")
        if self.fast_window <= 0 or self.window < self.fast_window:
            raise ValueError("need 0 < fast_window <= window")

    @property
    def objective_seconds(self) -> float:
        return self.objective_ms / 1000.0

    @property
    def burn_series(self) -> str:
        """The alert-engine series this SLO's burn rate streams into."""
        return f"slo.burn_rate.{self.name}"

    def rule(self) -> Rule:
        """Compile the burn-rate breach into one alert-engine rule.

        Cooldown spans the slow window, so a sustained breach heartbeats
        once per window instead of alerting on every event.
        """
        return Rule(
            name=f"slo_burn_{self.name}",
            metric=self.burn_series,
            condition=above(self.burn_threshold),
            window=self.fast_window,
            severity=self.severity,
            cooldown=self.window,
        )


def default_slos() -> List[Slo]:
    """Out-of-the-box objectives for the instrumented inference path.

    Objectives are sized for the numpy substrate's tiny-config latencies
    with generous headroom — a healthy run should never burn budget.
    """
    return [
        Slo("predict_batch", timer_series="latency.predict_batch",
            span="predict_batch", objective_ms=500.0, target_fraction=0.95),
        Slo("encode", timer_series="latency.encode",
            span="encode", objective_ms=300.0, target_fraction=0.95),
        Slo("featurize", timer_series="latency.featurize",
            span="featurize", objective_ms=150.0, target_fraction=0.95),
    ]


def _good_below(histogram: Histogram, snapshot: Dict[str, object],
                objective_seconds: float) -> float:
    """Interpolated count of observations at or under the objective.

    Whole buckets under the objective count fully; the bucket straddling
    it contributes linearly (the dual of the percentile interpolation —
    there a rank maps to a value, here a value maps to a rank).
    """
    buckets: Dict[str, object] = snapshot["buckets"]  # type: ignore[assignment]
    total = float(snapshot["count"])  # type: ignore[arg-type]
    if total == 0:
        return 0.0
    good = 0.0
    lower = float(snapshot["min"])  # type: ignore[arg-type]
    for bound in histogram.buckets:
        count = float(buckets[str(bound)])
        if bound <= objective_seconds:
            good += count
        else:
            if count and objective_seconds > lower:
                good += count * (objective_seconds - lower) / (bound - lower)
            return good
        lower = bound
    overflow = float(buckets["+Inf"])
    maximum = float(snapshot["max"])  # type: ignore[arg-type]
    if overflow and maximum > lower and objective_seconds > lower:
        good += overflow * min(
            1.0, (objective_seconds - lower) / (maximum - lower)
        )
    elif overflow and objective_seconds >= maximum:
        good += overflow
    return min(good, total)


class SloTracker:
    """Evaluates a set of SLOs against a registry, firing through alerts.

    ``observe_span`` is the hot entry point (called by
    :meth:`Telemetry._on_span` for every finished span); spans not named
    by any SLO cost one dict lookup.  ``evaluate`` re-computes one SLO on
    demand (e.g. for timers fed by code rather than spans).
    """

    def __init__(
        self,
        slos: Sequence[Slo],
        registry: MetricsRegistry,
        engine: Optional[AlertEngine] = None,
        min_events: int = 8,
    ):
        self.slos: List[Slo] = list(slos)
        names = [slo.name for slo in self.slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {names}")
        self.registry = registry
        self.engine = engine
        self.min_events = int(min_events)
        self._lock = threading.Lock()
        # Cumulative (total, good) pairs per SLO; seeded with the zero
        # point so the first window measures from the start of the run.
        self._history: Dict[str, Deque[Tuple[float, float]]] = {
            slo.name: deque([(0.0, 0.0)], maxlen=slo.window + 1)
            for slo in self.slos
        }
        self._by_span: Dict[str, List[Slo]] = {}
        for slo in self.slos:
            if slo.span is not None:
                self._by_span.setdefault(slo.span, []).append(slo)
        if engine is not None:
            engine.add_rules([slo.rule() for slo in self.slos])

    # ------------------------------------------------------------------
    def observe_span(self, span) -> List[Alert]:
        """Feed one finished span; returns burn-rate alerts it fired."""
        slos = self._by_span.get(span.name)
        if not slos or span.duration is None:
            return []
        fired: List[Alert] = []
        for slo in slos:
            self.registry.timer(
                slo.timer_series,
                help=f"latency distribution behind SLO {slo.name!r}",
            ).observe(span.duration)
            fired.extend(self.evaluate(slo))
        return fired

    def evaluate(self, slo: Slo) -> List[Alert]:
        """Re-compute one SLO from its timer; publish gauges, feed alerts."""
        timer = self.registry.timer(slo.timer_series)
        snapshot = timer.value()
        good = _good_below(timer, snapshot, slo.objective_seconds)
        with self._lock:
            history = self._history[slo.name]
            history.append((float(snapshot["count"]), good))
            fast = self._burn_locked(history, slo, slo.fast_window)
            slow = self._burn_locked(history, slo, slo.window)
            budget = self._budget_locked(history, slo)
        burn = min(fast, slow)
        compliance = 1.0 - slow * (1.0 - slo.target_fraction)
        # Gauges first (registry locks), engine after (engine lock):
        # never hold one while taking the other.
        self.registry.gauge(
            "slo.compliance",
            help="windowed fraction of events meeting their SLO objective",
        ).set(compliance, slo=slo.name)
        self.registry.gauge(
            "slo.burn_rate",
            help="multi-window error-budget burn rate (1.0 = exactly on budget)",
        ).set(burn, slo=slo.name)
        self.registry.gauge(
            "slo.budget_remaining",
            help="fraction of the windowed error budget left (negative = overdrawn)",
        ).set(budget, slo=slo.name)
        if self.engine is None:
            return []
        return self.engine.observe_value(slo.burn_series, burn)

    def status(self) -> List[Dict[str, object]]:
        """JSON-ready snapshot of every SLO's current budget state."""
        rows: List[Dict[str, object]] = []
        for slo in self.slos:
            gauge = self.registry.gauge("slo.budget_remaining")
            burn = self.registry.gauge("slo.burn_rate")
            rows.append({
                "slo": slo.name,
                "timer_series": slo.timer_series,
                "objective_ms": slo.objective_ms,
                "target_fraction": slo.target_fraction,
                "budget_remaining": gauge.value(slo=slo.name),
                "burn_rate": burn.value(slo=slo.name),
            })
        return rows

    # -- internals ------------------------------------------------------
    def _window_diff(
        self, history: Deque[Tuple[float, float]], span: int
    ) -> Tuple[float, float]:
        """(total, good) deltas between now and ``span`` events ago."""
        now_total, now_good = history[-1]
        then_index = max(0, len(history) - 1 - span)
        then_total, then_good = history[then_index]
        return now_total - then_total, now_good - then_good

    def _burn_locked(
        self, history: Deque[Tuple[float, float]], slo: Slo, span: int
    ) -> float:
        total, good = self._window_diff(history, span)
        if total < self.min_events:
            return 0.0
        bad_fraction = max(0.0, 1.0 - good / total)
        return bad_fraction / (1.0 - slo.target_fraction)

    def _budget_locked(
        self, history: Deque[Tuple[float, float]], slo: Slo
    ) -> float:
        total, good = self._window_diff(history, slo.window)
        if total < self.min_events:
            return 1.0
        allowed = (1.0 - slo.target_fraction) * total
        bad = max(0.0, total - good)
        return 1.0 - bad / allowed
