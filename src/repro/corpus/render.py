"""Rasterisation and visual features (the Faster R-CNN substitute).

The paper crops each sentence's region from the page image and encodes it
with a pre-trained Faster R-CNN.  What that channel contributes for resumes
is *stylistic* evidence — titles have larger, bolder, coloured fonts and
distinctive positions.  This module reproduces that channel deterministically:
pages render to a coarse ink raster, and each sentence region yields a fixed
:data:`VISUAL_DIM`-dimensional descriptor of exactly those cues.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..docmodel.document import ResumeDocument, Sentence

__all__ = [
    "VISUAL_DIM",
    "render_page",
    "sentence_visual_features",
    "attach_visual_features",
    "ascii_page",
]

#: Dimension of the per-sentence visual descriptor.
VISUAL_DIM = 10

#: Reference maxima used to keep features in [0, 1].
_MAX_FONT = 24.0
_MAX_COLOR = 2.0
_MAX_TOKENS = 55.0


def render_page(
    document: ResumeDocument, page_number: int, rows: int = 110, cols: int = 85
) -> np.ndarray:
    """Rasterise one page into a ``rows x cols`` ink-density grid.

    Ink per cell accumulates box coverage weighted by boldness, the same
    signal a downscaled grayscale page image would carry.
    """
    page = document.page(page_number)
    grid = np.zeros((rows, cols))
    for sentence in document.sentences:
        if sentence.page != page_number:
            continue
        for token in sentence.tokens:
            r0 = int(token.bbox.y0 / page.height * rows)
            r1 = max(int(np.ceil(token.bbox.y1 / page.height * rows)), r0 + 1)
            c0 = int(token.bbox.x0 / page.width * cols)
            c1 = max(int(np.ceil(token.bbox.x1 / page.width * cols)), c0 + 1)
            weight = 1.6 if token.bold else 1.0
            grid[
                max(r0, 0) : min(r1, rows), max(c0, 0) : min(c1, cols)
            ] += weight
    return np.clip(grid, 0.0, 4.0)


def sentence_visual_features(
    sentence: Sentence, page_width: float, page_height: float
) -> np.ndarray:
    """Extract the stylistic descriptor for one sentence region."""
    box = sentence.bbox
    char_count = sum(len(t.word) for t in sentence.tokens)
    ink_density = min(char_count / max(box.area, 1.0) * 50.0, 1.0)
    color_mean = float(
        np.mean([t.color for t in sentence.tokens]) / _MAX_COLOR
    )
    return np.array(
        [
            min(sentence.mean_font_size / _MAX_FONT, 1.0),
            sentence.bold_fraction,
            color_mean,
            box.x0 / page_width,
            box.y0 / page_height,
            min(box.width / page_width, 1.0),
            min(box.height / page_height, 1.0),
            min(len(sentence.tokens) / _MAX_TOKENS, 1.0),
            ink_density,
            1.0 if sentence.bold_fraction > 0.5 else 0.0,
        ]
    )


def attach_visual_features(document: ResumeDocument) -> ResumeDocument:
    """Populate ``sentence.visual`` for every sentence (in place)."""
    for sentence in document.sentences:
        page = document.page(sentence.page)
        sentence.visual = sentence_visual_features(
            sentence, page.width, page.height
        )
    return document


def ascii_page(
    document: ResumeDocument,
    page_number: int,
    labels: Optional[List[str]] = None,
    width: int = 78,
) -> str:
    """Render one page as annotated text (used by the Fig. 1/3 benches).

    ``labels`` optionally supplies a block label per sentence (document
    order); gold annotations are used when omitted.
    """
    page = document.page(page_number)
    rows: Dict[int, List[str]] = {}
    label_by_index = {}
    if labels is not None:
        label_by_index = dict(enumerate(labels))

    for index, sentence in enumerate(document.sentences):
        if sentence.page != page_number:
            continue
        if labels is not None:
            tag = label_by_index.get(index, "?")
        else:
            tag, _ = sentence.majority_block()
            tag = tag or "O"
        row = int(sentence.bbox.y0 / page.height * 48)
        col = int(sentence.bbox.x0 / page.width * (width - 30))
        text = sentence.text
        snippet = text[:34] + ("…" if len(text) > 34 else "")
        entry = " " * col + f"[{tag:>8}] {snippet}"
        rows.setdefault(row, []).append(entry)

    lines = [f"--- page {page_number} ---"]
    for row in sorted(rows):
        lines.extend(rows[row])
    return "\n".join(lines)
