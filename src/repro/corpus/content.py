"""Content planning for synthetic resumes.

A resume is first planned as *logical lines* — block-tagged rows of text
fragments with entity annotations — independent of any visual layout.  The
layout templates (:mod:`repro.corpus.templates`) then place these lines on
pages.  This separation mirrors the paper's observation that the same
semantic content appears under many different visual styles (Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from . import entities, names

__all__ = ["Fragment", "LogicalLine", "ContentConfig", "plan_resume"]


@dataclass
class Fragment:
    """A run of text with one entity annotation ('O' for plain text)."""

    text: str
    entity: str = "O"


@dataclass
class LogicalLine:
    """One row of content belonging to a semantic block."""

    fragments: List[Fragment]
    block_tag: str
    block_id: int
    role: str = "body"  # 'name' | 'header' | 'body'

    @property
    def text(self) -> str:
        return " ".join(f.text for f in self.fragments)


@dataclass
class ContentConfig:
    """Knobs controlling resume richness.

    The *paper* preset calibrates to Table I (≈1,700 tokens, ≈90 sentences,
    ≈2.1 pages); the *tiny* preset keeps CPU training loops fast while
    preserving every structural property.
    """

    work_experiences: tuple = (1, 4)
    project_experiences: tuple = (0, 3)
    education_entries: tuple = (1, 3)
    work_detail_lines: tuple = (2, 5)
    project_detail_lines: tuple = (1, 4)
    summary_lines: tuple = (1, 3)
    award_lines: tuple = (1, 3)
    skill_lines: tuple = (1, 3)
    skills_per_line: tuple = (3, 6)
    include_summary_prob: float = 0.8
    include_awards_prob: float = 0.7
    include_skills_prob: float = 0.9
    include_projects_prob: float = 0.8
    labeled_pinfo_prob: float = 0.7
    #: Clauses per experience detail sentence; the paper profile uses long
    #: multi-clause sentences so documents reach Table I's ~1,700 tokens.
    detail_clauses: tuple = (1, 2)

    @classmethod
    def tiny(cls) -> "ContentConfig":
        return cls(
            work_experiences=(1, 2),
            project_experiences=(0, 2),
            education_entries=(1, 2),
            work_detail_lines=(1, 2),
            project_detail_lines=(1, 2),
            summary_lines=(1, 1),
            award_lines=(1, 2),
            skill_lines=(1, 1),
        )

    @classmethod
    def paper(cls) -> "ContentConfig":
        return cls(
            work_experiences=(2, 4),
            project_experiences=(1, 3),
            education_entries=(1, 3),
            work_detail_lines=(3, 6),
            project_detail_lines=(3, 5),
            summary_lines=(2, 3),
            award_lines=(2, 4),
            skill_lines=(2, 4),
            include_projects_prob=1.0,
            detail_clauses=(2, 4),
        )


class _BlockCounter:
    """Allocates monotonically increasing block instance ids."""

    def __init__(self):
        self.next_id = 0

    def new(self) -> int:
        value = self.next_id
        self.next_id += 1
        return value


def _rand_range(rng: np.random.Generator, bounds: tuple) -> int:
    low, high = bounds
    return int(rng.integers(low, high + 1))


def plan_resume(
    rng: np.random.Generator, config: Optional[ContentConfig] = None
) -> List[LogicalLine]:
    """Plan the logical content of one resume.

    Section order is shuffled (keeping PInfo first), reproducing the
    paper's "semantic blocks randomly appear in different positions"
    observation.
    """
    config = config or ContentConfig()
    counter = _BlockCounter()
    lines: List[LogicalLine] = []

    lines.extend(_personal_info(rng, config, counter))

    sections = ["EduExp", "WorkExp"]
    if rng.random() < config.include_projects_prob:
        sections.append("ProjExp")
    if rng.random() < config.include_summary_prob:
        sections.append("Summary")
    if rng.random() < config.include_awards_prob:
        sections.append("Awards")
    if rng.random() < config.include_skills_prob:
        sections.append("SkillDes")
    rng.shuffle(sections)

    builders = {
        "EduExp": _education,
        "WorkExp": _work,
        "ProjExp": _projects,
        "Summary": _summary,
        "Awards": _awards,
        "SkillDes": _skills,
    }
    for section in sections:
        lines.extend(builders[section](rng, config, counter))
    return lines


def _header(tag: str, rng: np.random.Generator, counter: _BlockCounter) -> LogicalLine:
    text = str(rng.choice(names.SECTION_HEADERS[tag]))
    return LogicalLine(
        [Fragment(text)], block_tag="Title", block_id=counter.new(), role="header"
    )


def _personal_info(rng, config, counter) -> List[LogicalLine]:
    block_id = counter.new()
    lines = [
        LogicalLine(
            [Fragment(entities.person_name(rng), "Name")],
            block_tag="PInfo",
            block_id=block_id,
            role="name",
        )
    ]
    labeled = rng.random() < config.labeled_pinfo_prob
    fields = [
        ("gender", Fragment(entities.gender(rng), "Gender")),
        ("age", Fragment(entities.age(rng), "Age")),
        ("phone", Fragment(entities.phone_number(rng), "PhoneNum")),
        ("email", Fragment(entities.email(rng), "Email")),
    ]
    rng.shuffle(fields)
    per_line = int(rng.integers(1, 3))
    row: List[Fragment] = []
    for label, fragment in fields:
        if labeled:
            row.append(Fragment(f"{label} :"))
        row.append(fragment)
        if len([f for f in row if f.entity != "O"]) >= per_line:
            lines.append(
                LogicalLine(row, block_tag="PInfo", block_id=block_id)
            )
            row = []
    if row:
        lines.append(LogicalLine(row, block_tag="PInfo", block_id=block_id))
    if rng.random() < 0.5:
        city = str(rng.choice(names.CITIES))
        lines.append(
            LogicalLine(
                [Fragment(f"based in {city}")], block_tag="PInfo", block_id=block_id
            )
        )
    return lines


def _education(rng, config, counter) -> List[LogicalLine]:
    lines = [_header("EduExp", rng, counter)]
    for _ in range(_rand_range(rng, config.education_entries)):
        block_id = counter.new()
        head = [
            Fragment(entities.date_range(rng), "Date"),
            Fragment(entities.college(rng), "College"),
        ]
        if rng.random() < 0.5:
            rng.shuffle(head)
        lines.append(LogicalLine(head, block_tag="EduExp", block_id=block_id))
        detail = [
            Fragment(entities.degree(rng), "Degree"),
            Fragment("degree in"),
            Fragment(entities.major(rng), "Major"),
        ]
        lines.append(LogicalLine(detail, block_tag="EduExp", block_id=block_id))
        if rng.random() < 0.3:
            lines.append(
                LogicalLine(
                    [Fragment("gpa top ten percent of class")],
                    block_tag="EduExp",
                    block_id=block_id,
                )
            )
    return lines


def _work(rng, config, counter) -> List[LogicalLine]:
    lines = [_header("WorkExp", rng, counter)]
    for _ in range(_rand_range(rng, config.work_experiences)):
        block_id = counter.new()
        head = [
            Fragment(entities.date_range(rng), "Date"),
            Fragment(entities.company(rng), "Company"),
        ]
        if rng.random() < 0.5:
            rng.shuffle(head)
        lines.append(LogicalLine(head, block_tag="WorkExp", block_id=block_id))
        lines.append(
            LogicalLine(
                [Fragment(entities.position(rng), "Position")],
                block_tag="WorkExp",
                block_id=block_id,
            )
        )
        for _ in range(_rand_range(rng, config.work_detail_lines)):
            lines.append(
                LogicalLine(
                    [Fragment(_work_sentence(rng, config))],
                    block_tag="WorkExp",
                    block_id=block_id,
                )
            )
    return lines


def _work_sentence(rng: np.random.Generator, config: ContentConfig) -> str:
    clauses = []
    for _ in range(_rand_range(rng, config.detail_clauses)):
        verb = rng.choice(names.WORK_VERBS)
        obj = rng.choice(names.WORK_OBJECTS)
        if rng.random() < 0.5:
            clauses.append(f"{verb} {obj} , {rng.choice(names.WORK_RESULTS)}")
        else:
            clauses.append(f"{verb} {obj}")
    return " and ".join(clauses)


def _projects(rng, config, counter) -> List[LogicalLine]:
    lines = [_header("ProjExp", rng, counter)]
    for _ in range(_rand_range(rng, config.project_experiences) or 1):
        block_id = counter.new()
        head = [
            Fragment(entities.project_name(rng), "ProjName"),
            Fragment(entities.date_range(rng), "Date"),
        ]
        if rng.random() < 0.5:
            rng.shuffle(head)
        lines.append(LogicalLine(head, block_tag="ProjExp", block_id=block_id))
        for _ in range(_rand_range(rng, config.project_detail_lines)):
            lines.append(
                LogicalLine(
                    [Fragment(_work_sentence(rng, config))],
                    block_tag="ProjExp",
                    block_id=block_id,
                )
            )
    return lines


def _summary(rng, config, counter) -> List[LogicalLine]:
    lines = [_header("Summary", rng, counter)]
    block_id = counter.new()
    for _ in range(_rand_range(rng, config.summary_lines)):
        lines.append(
            LogicalLine(
                [Fragment(str(rng.choice(names.SUMMARY_PHRASES)))],
                block_tag="Summary",
                block_id=block_id,
            )
        )
    return lines


def _awards(rng, config, counter) -> List[LogicalLine]:
    lines = [_header("Awards", rng, counter)]
    block_id = counter.new()
    for _ in range(_rand_range(rng, config.award_lines)):
        award = str(rng.choice(names.AWARDS))
        fragments = [Fragment(award)]
        if rng.random() < 0.6:
            fragments.append(Fragment(entities.single_date(rng), "Date"))
        lines.append(
            LogicalLine(fragments, block_tag="Awards", block_id=block_id)
        )
    return lines


def _skills(rng, config, counter) -> List[LogicalLine]:
    lines = [_header("SkillDes", rng, counter)]
    block_id = counter.new()
    for _ in range(_rand_range(rng, config.skill_lines)):
        count = _rand_range(rng, config.skills_per_line)
        skills = rng.choice(names.SKILLS, size=count, replace=False)
        lines.append(
            LogicalLine(
                [Fragment(" , ".join(skills))],
                block_tag="SkillDes",
                block_id=block_id,
            )
        )
    return lines
