"""End-to-end synthetic resume generation.

``ResumeGenerator`` composes the pipeline the paper applies to real PDFs:

1. plan logical content (:mod:`repro.corpus.content`),
2. lay it out with a randomly chosen visual template
   (:mod:`repro.corpus.templates`),
3. run the PyMuPDF-equivalent token→sentence segmentation
   (:mod:`repro.docmodel.segmentation`),
4. attach visual features (:mod:`repro.corpus.render`).

The output is a :class:`~repro.docmodel.ResumeDocument` carrying gold block
and entity annotations, so every experiment has ground truth available.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..docmodel.document import ResumeDocument
from ..docmodel.segmentation import SegmentationConfig, segment_tokens
from .content import ContentConfig, plan_resume
from .render import attach_visual_features
from .templates import ALL_TEMPLATES, LayoutTemplate

__all__ = ["ResumeGenerator"]


class ResumeGenerator:
    """Deterministic generator of annotated synthetic resumes."""

    def __init__(
        self,
        seed: int = 0,
        content_config: Optional[ContentConfig] = None,
        templates: Optional[Sequence[LayoutTemplate]] = None,
        segmentation: Optional[SegmentationConfig] = None,
    ):
        self.seed = seed
        self.content_config = content_config or ContentConfig.tiny()
        self.templates = list(templates) if templates else list(ALL_TEMPLATES)
        self.segmentation = segmentation or SegmentationConfig()

    def generate(self, doc_id: str, rng: np.random.Generator) -> ResumeDocument:
        """Generate one annotated resume document."""
        lines = plan_resume(rng, self.content_config)
        template = self.templates[int(rng.integers(0, len(self.templates)))]
        tokens, pages = template.layout(lines, rng)
        sentences = segment_tokens(tokens, self.segmentation)
        document = ResumeDocument(doc_id, pages, sentences)
        return attach_visual_features(document)

    def generate_at(self, index: int, prefix: str = "resume") -> ResumeDocument:
        """Generate the document at ``index`` under the per-index seeding.

        Seeds a fresh generator from ``[seed, index]``, so any worker can
        produce any document independently — the parallel counterpart of
        :meth:`stream`'s single sequential RNG.  Note the two disciplines
        draw different streams: ``generate_at(i)`` does not reproduce the
        ``i``-th document of :meth:`stream`, but it is deterministic in
        ``(seed, index, prefix)`` and identical for every worker count.
        """
        rng = np.random.default_rng([self.seed, index])
        return self.generate(f"{prefix}-{index:05d}", rng)

    def batch(
        self, count: int, prefix: str = "resume", num_workers: int = 0
    ) -> List[ResumeDocument]:
        """Generate ``count`` documents reproducibly from the base seed.

        ``num_workers >= 1`` shards the index range across data-parallel
        workers using the per-index seeding of :meth:`generate_at`
        (deterministic for every worker count, but a different stream
        than the sequential default — pick one discipline per corpus).
        """
        if num_workers:
            from ..parallel import generate_documents

            return generate_documents(
                self, count, prefix=prefix, num_workers=num_workers
            )
        return list(self.stream(count, prefix=prefix))

    def stream(self, count: int, prefix: str = "resume") -> Iterator[ResumeDocument]:
        """Lazily yield ``count`` documents (memory-friendly for pretraining)."""
        rng = np.random.default_rng(self.seed)
        for index in range(count):
            yield self.generate(f"{prefix}-{index:05d}", rng)
