"""Fictional value banks for the synthetic resume corpus.

All values are fictional; the banks play the role of the paper's entity
dictionaries scraped from name databases, web encyclopedias and recruitment
sites (Section IV-B1).  The same banks later seed the distant-supervision
dictionaries — deliberately *partially*: the annotator only sees a subset,
reproducing the incomplete-dictionary noise the paper's self-training
framework is designed to absorb.
"""

from __future__ import annotations

FIRST_NAMES = (
    "james", "mary", "robert", "patricia", "john", "jennifer", "michael",
    "linda", "david", "elizabeth", "william", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen", "chris",
    "nancy", "daniel", "lisa", "matthew", "betty", "anthony", "margaret",
    "mark", "sandra", "donald", "ashley", "steven", "kim", "paul", "emily",
    "andrew", "donna", "joshua", "michelle", "ken", "dorothy", "kevin",
    "carol", "brian", "amanda", "george", "melissa", "edward", "deborah",
    "ronald", "stephanie", "timothy", "rebecca", "jason", "sharon", "jeff",
    "laura", "ryan", "cynthia", "jacob", "kathleen", "gary", "amy", "nick",
    "angela", "eric", "shirley", "jonathan", "anna", "stephen", "brenda",
    "larry", "pamela", "justin", "emma", "scott", "nicole", "brandon",
    "helen", "benjamin", "samantha", "samuel", "katherine", "gregory",
    "christine", "frank", "debra", "alex", "rachel", "raymond", "carolyn",
    "jack", "janet", "dennis", "catherine", "jerry", "maria", "tyler",
    "heather", "aaron", "diane", "jose", "ruth", "adam", "julie", "henry",
    "olivia", "nathan", "joyce", "douglas", "virginia", "zachary", "lauren",
)

LAST_NAMES = (
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
    "ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
    "wright", "scott", "torres", "nguyen", "hill", "flores", "green",
    "adams", "nelson", "baker", "hall", "rivera", "campbell", "mitchell",
    "carter", "roberts", "gomez", "phillips", "evans", "turner", "diaz",
    "parker", "cruz", "edwards", "collins", "reyes", "stewart", "morris",
    "morales", "murphy", "cook", "rogers", "gutierrez", "ortiz", "morgan",
    "cooper", "peterson", "bailey", "reed", "kelly", "howard", "ramos",
    "kim", "cox", "ward", "richardson", "watson", "brooks", "chavez",
    "wood", "james", "bennett", "gray", "mendoza", "ruiz", "hughes",
    "price", "alvarez", "castillo", "sanders", "patel", "myers", "long",
    "ross", "foster", "jimenez",
)

COLLEGE_STEMS = (
    "northfield", "eastbrook", "westlake", "southgate", "riverton",
    "lakewood", "hillcrest", "stonebridge", "fairview", "maplewood",
    "oakdale", "pinehurst", "cedarville", "ashford", "brookhaven",
    "clearwater", "silverton", "granite", "summit", "harborview",
    "redwood", "meadowbrook", "crestwood", "glenview", "kingsford",
    "albright", "danforth", "ellsworth", "whitfield", "pembroke",
    "thornton", "winslow", "calloway", "hartwell", "lockwood",
)

COLLEGE_SUFFIXES = (
    "university", "institute of technology", "state university", "college",
    "polytechnic university", "university of science",
)

MAJORS = (
    "computer science", "software engineering", "electrical engineering",
    "mechanical engineering", "information systems", "data science",
    "applied mathematics", "statistics", "physics", "chemistry",
    "business administration", "finance", "accounting", "economics",
    "marketing", "human resources", "industrial design", "civil engineering",
    "biomedical engineering", "materials science", "automation",
    "communication engineering", "computer engineering", "cybersecurity",
    "artificial intelligence", "bioinformatics", "psychology",
    "graphic design", "international trade", "supply chain management",
)

DEGREES = ("bachelor", "master", "phd", "associate", "mba")

COMPANY_STEMS = (
    "acme", "globex", "initech", "umbra", "vortex", "zenith", "quantum",
    "stellar", "apex", "nimbus", "horizon", "pinnacle", "catalyst",
    "momentum", "synergy", "vertex", "fusion", "nexus", "orbit", "pulse",
    "cascade", "beacon", "summitsoft", "brightpath", "clearfield",
    "ironclad", "silverline", "bluepeak", "greenleaf", "redstone",
    "swifttech", "datacore", "cloudbase", "netsphere", "infoworks",
    "bytecraft", "logicware", "softbridge", "deepgrid", "hyperloopix",
)

COMPANY_SUFFIXES = (
    "co. ltd", "inc", "technologies", "systems", "solutions", "group",
    "software", "labs", "corporation", "networks",
)

POSITIONS = (
    "software engineer", "senior software engineer", "data analyst",
    "product manager", "project manager", "backend developer",
    "frontend developer", "full stack developer", "machine learning engineer",
    "data scientist", "qa engineer", "devops engineer", "system architect",
    "business analyst", "ui designer", "technical lead", "research scientist",
    "database administrator", "sales manager", "marketing specialist",
    "hr specialist", "financial analyst", "operations manager",
    "account executive", "engineering manager", "security engineer",
    "mobile developer", "cloud engineer", "test engineer", "scrum master",
)

PROJECT_STEMS = (
    "payment gateway", "recommendation engine", "inventory management",
    "customer portal", "fraud detection", "search platform",
    "logistics optimizer", "chat assistant", "billing system",
    "analytics dashboard", "document parser", "image pipeline",
    "workflow automation", "ad ranking", "content moderation",
    "user onboarding", "data warehouse", "realtime monitor",
    "feature store", "identity service", "order tracking",
    "pricing engine", "supply forecast", "risk scoring",
)

PROJECT_SUFFIXES = ("system", "platform", "project", "service", "initiative")

SKILLS = (
    "python", "java", "c++", "javascript", "sql", "linux", "docker",
    "kubernetes", "aws", "react", "spark", "hadoop", "tensorflow",
    "pytorch", "git", "redis", "mongodb", "postgresql", "kafka", "go",
    "scala", "tableau", "excel", "photoshop", "figma", "jira", "agile",
    "communication", "leadership", "teamwork", "problem solving",
)

AWARDS = (
    "outstanding employee award", "national scholarship",
    "first prize in programming contest", "excellent graduate award",
    "best team award", "innovation award", "dean's list honors",
    "hackathon champion", "merit scholarship", "top performer award",
    "employee of the year", "academic excellence award",
)

SUMMARY_PHRASES = (
    "results driven professional with strong analytical skills",
    "experienced engineer passionate about scalable systems",
    "detail oriented analyst with a track record of delivery",
    "self motivated developer who enjoys solving hard problems",
    "collaborative team player with excellent communication",
    "proven leader in cross functional project execution",
    "creative problem solver focused on customer impact",
    "dedicated specialist with deep domain knowledge",
)

WORK_VERBS = (
    "developed", "designed", "implemented", "maintained", "optimized",
    "led", "coordinated", "launched", "migrated", "automated", "refactored",
    "analyzed", "delivered", "built", "improved", "streamlined",
)

WORK_OBJECTS = (
    "the core billing module", "a distributed data pipeline",
    "internal reporting tools", "the customer facing web application",
    "microservices for order processing", "a realtime analytics service",
    "the continuous integration workflow", "database schemas and queries",
    "restful api endpoints", "the mobile client features",
    "monitoring and alerting dashboards", "machine learning models",
    "etl jobs for the data warehouse", "the authentication service",
)

WORK_RESULTS = (
    "reducing latency by a large margin", "improving team velocity",
    "cutting infrastructure costs significantly", "raising test coverage",
    "supporting millions of daily requests", "enabling faster releases",
    "increasing conversion rates", "eliminating manual toil",
)

#: Section header surface forms per block tag; templates sample among them,
#: reproducing the paper's "diverse writing styles" observation.
SECTION_HEADERS = {
    "PInfo": ("personal information", "contact", "about me", "profile"),
    "EduExp": ("education", "education experience", "academic background",
               "education history"),
    "WorkExp": ("work experience", "employment history", "professional experience",
                "career history"),
    "ProjExp": ("project experience", "projects", "key projects",
                "selected projects"),
    "Summary": ("summary", "professional summary", "objective", "overview"),
    "Awards": ("awards", "honors and awards", "achievements", "honors"),
    "SkillDes": ("skills", "technical skills", "core competencies",
                 "skill description"),
}

GENDERS = ("male", "female")

CITIES = (
    "springfield", "rivertown", "lakeside", "hillview", "brookfield",
    "fairmont", "greenville", "ashland", "milford", "dayton",
)
