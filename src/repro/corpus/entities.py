"""Entity value generators for the synthetic resume corpus.

Each generator returns the entity's surface string; the resume generator
attaches the matching gold entity tag from :data:`repro.docmodel.ENTITY_TAGS`.
Formats deliberately vary (date separators, phone formats, label prefixes)
to exercise the regex/heuristic matchers of the distant annotator.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from . import names

__all__ = [
    "person_name",
    "gender",
    "age",
    "phone_number",
    "email",
    "date_range",
    "single_date",
    "college",
    "major",
    "degree",
    "company",
    "position",
    "project_name",
]


def person_name(rng: np.random.Generator) -> str:
    return f"{rng.choice(names.FIRST_NAMES)} {rng.choice(names.LAST_NAMES)}"


def gender(rng: np.random.Generator) -> str:
    return str(rng.choice(names.GENDERS))


def age(rng: np.random.Generator) -> str:
    return str(int(rng.integers(21, 56)))


def phone_number(rng: np.random.Generator) -> str:
    digits = rng.integers(0, 10, size=10)
    style = rng.integers(0, 3)
    if style == 0:
        return "".join(map(str, digits))
    if style == 1:
        d = "".join(map(str, digits))
        return f"{d[:3]}-{d[3:6]}-{d[6:]}"
    d = "".join(map(str, digits))
    return f"({d[:3]}) {d[3:6]} {d[6:]}"


def email(rng: np.random.Generator) -> str:
    user = f"{rng.choice(names.FIRST_NAMES)}.{rng.choice(names.LAST_NAMES)}"
    domain = rng.choice(["example.com", "mail.net", "corpmail.org", "inbox.dev"])
    return f"{user}@{domain}"


def _year_month(rng: np.random.Generator) -> Tuple[int, int]:
    return int(rng.integers(2005, 2023)), int(rng.integers(1, 13))


def single_date(rng: np.random.Generator) -> str:
    year, month = _year_month(rng)
    sep = rng.choice([".", "/", "-"])
    return f"{year}{sep}{month:02d}"


def date_range(rng: np.random.Generator) -> str:
    year, month = _year_month(rng)
    duration = int(rng.integers(6, 48))
    end_total = year * 12 + (month - 1) + duration
    end_year, end_month = divmod(end_total, 12)
    sep = rng.choice([".", "/"])
    if end_year >= 2023 and rng.random() < 0.4:
        return f"{year}{sep}{month:02d} - present"
    return f"{year}{sep}{month:02d} - {end_year}{sep}{end_month + 1:02d}"


def college(rng: np.random.Generator) -> str:
    return f"{rng.choice(names.COLLEGE_STEMS)} {rng.choice(names.COLLEGE_SUFFIXES)}"


def major(rng: np.random.Generator) -> str:
    return str(rng.choice(names.MAJORS))


def degree(rng: np.random.Generator) -> str:
    return str(rng.choice(names.DEGREES))


def company(rng: np.random.Generator) -> str:
    return f"{rng.choice(names.COMPANY_STEMS)} {rng.choice(names.COMPANY_SUFFIXES)}"


def position(rng: np.random.Generator) -> str:
    return str(rng.choice(names.POSITIONS))


def project_name(rng: np.random.Generator) -> str:
    return f"{rng.choice(names.PROJECT_STEMS)} {rng.choice(names.PROJECT_SUFFIXES)}"
