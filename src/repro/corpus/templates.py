"""Layout templates: place planned content on pages (Figure 1 styles).

Three concrete templates reproduce the paper's observation that resumes
come in visually diverse styles:

* :class:`ClassicTemplate` — single column, generous margins (Fig. 1 left);
* :class:`TwoColumnTemplate` — narrow sidebar for contact/skills/awards and
  a wide main column (Fig. 1 middle);
* :class:`CompactTemplate` — dense banner layout with small fonts
  (Fig. 1 right).

A template converts :class:`~repro.corpus.content.LogicalLine` plans into
positioned :class:`~repro.docmodel.Token` streams with font/style attributes
and paginates them; the shared word-measuring model approximates
proportional font metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..docmodel.document import Page, Token
from ..docmodel.geometry import BBox
from .content import LogicalLine

__all__ = [
    "LayoutTemplate",
    "ClassicTemplate",
    "TwoColumnTemplate",
    "CompactTemplate",
    "ALL_TEMPLATES",
]

PAGE_WIDTH = 612.0
PAGE_HEIGHT = 792.0

#: Mean glyph width as a fraction of the font size (Helvetica-ish).
CHAR_WIDTH_FACTOR = 0.55
SPACE_WIDTH_FACTOR = 0.45
LINE_SPACING = 1.45


def word_width(word: str, font_size: float) -> float:
    """Approximate rendered width of a word."""
    return max(len(word), 1) * CHAR_WIDTH_FACTOR * font_size


@dataclass
class _Fonts:
    name: float = 20.0
    header: float = 14.0
    body: float = 10.0


@dataclass
class _Column:
    """A vertical strip content flows into, with its own cursor."""

    x0: float
    x1: float
    y: float
    page: int = 1

    @property
    def width(self) -> float:
        return self.x1 - self.x0


class LayoutTemplate:
    """Base class: single-column flow; subclasses override routing/fonts."""

    name = "base"

    def __init__(
        self,
        fonts: Optional[_Fonts] = None,
        top_margin: float = 50.0,
        bottom_margin: float = 50.0,
        left_margin: float = 60.0,
        right_margin: float = 60.0,
    ):
        self.fonts = fonts or _Fonts()
        self.top_margin = top_margin
        self.bottom_margin = bottom_margin
        self.left_margin = left_margin
        self.right_margin = right_margin

    # ------------------------------------------------------------------
    def layout(
        self, lines: List[LogicalLine], rng: np.random.Generator
    ) -> Tuple[List[Token], List[Page]]:
        """Place all logical lines; returns tokens and the page list."""
        columns = self._columns()
        tokens: List[Token] = []
        max_page = 1
        routes = self._routes(lines)
        for line, route in zip(lines, routes):
            column = columns[route]
            placed = self._place_line(line, column, rng)
            tokens.extend(placed)
            max_page = max(max_page, column.page)
        pages = [Page(i, PAGE_WIDTH, PAGE_HEIGHT) for i in range(1, max_page + 1)]
        return tokens, pages

    # -- hooks ----------------------------------------------------------
    def _columns(self) -> List[_Column]:
        return [
            _Column(self.left_margin, PAGE_WIDTH - self.right_margin, self.top_margin)
        ]

    def _routes(self, lines: List[LogicalLine]) -> List[int]:
        return [0] * len(lines)

    # -- shared machinery -----------------------------------------------
    def _font_for(self, line: LogicalLine) -> Tuple[float, bool, int]:
        """(font_size, bold, color) per line role."""
        if line.role == "name":
            return self.fonts.name, True, 0
        if line.role == "header":
            return self.fonts.header, True, 1
        return self.fonts.body, False, 0

    def _place_line(
        self, line: LogicalLine, column: _Column, rng: np.random.Generator
    ) -> List[Token]:
        font, bold, color = self._font_for(line)
        line_height = font * LINE_SPACING
        space = SPACE_WIDTH_FACTOR * font
        tokens: List[Token] = []
        x = column.x0
        jitter = float(rng.uniform(-0.5, 0.5))

        def newline():
            nonlocal x
            column.y += line_height
            x = column.x0
            if column.y + line_height > PAGE_HEIGHT - self.bottom_margin:
                column.page += 1
                column.y = self.top_margin

        # Ensure the line starts on a page with room.
        if column.y + line_height > PAGE_HEIGHT - self.bottom_margin:
            column.page += 1
            column.y = self.top_margin

        for fragment in line.fragments:
            words = fragment.text.split()
            for i, word in enumerate(words):
                width = word_width(word, font)
                if x + width > column.x1 and x > column.x0:
                    newline()
                entity = "O"
                if fragment.entity != "O":
                    entity = ("B-" if i == 0 else "I-") + fragment.entity
                tokens.append(
                    Token(
                        word=word,
                        bbox=BBox(x, column.y + jitter, x + width, column.y + jitter + font),
                        page=column.page,
                        font_size=font,
                        bold=bold,
                        color=color,
                        block_tag=line.block_tag,
                        block_id=line.block_id,
                        entity_label=entity,
                    )
                )
                x += width + space
        column.y += line_height
        if line.role == "header":
            column.y += 0.4 * line_height  # headers get extra leading
        if column.y + line_height > PAGE_HEIGHT - self.bottom_margin:
            column.page += 1
            column.y = self.top_margin
        return tokens


class ClassicTemplate(LayoutTemplate):
    """Traditional single-column resume with clear section spacing."""

    name = "classic"


class TwoColumnTemplate(LayoutTemplate):
    """Sidebar layout: PInfo/SkillDes/Awards left, experience right."""

    name = "two-column"
    SIDEBAR_TAGS = frozenset({"PInfo", "SkillDes", "Awards"})
    SIDEBAR_FRACTION = 0.32
    GUTTER = 24.0

    def _columns(self) -> List[_Column]:
        split = self.left_margin + self.SIDEBAR_FRACTION * (
            PAGE_WIDTH - self.left_margin - self.right_margin
        )
        return [
            _Column(self.left_margin, split, self.top_margin),
            _Column(split + self.GUTTER, PAGE_WIDTH - self.right_margin, self.top_margin),
        ]

    def _routes(self, lines: List[LogicalLine]) -> List[int]:
        routes: List[int] = []
        for i, line in enumerate(lines):
            tag = line.block_tag
            if line.role == "header" and i + 1 < len(lines):
                tag = lines[i + 1].block_tag  # headers follow their section
            routes.append(0 if tag in self.SIDEBAR_TAGS else 1)
        return routes


class CompactTemplate(LayoutTemplate):
    """Dense layout: small fonts, tight margins, banner-style name."""

    name = "compact"

    def __init__(self):
        super().__init__(
            fonts=_Fonts(name=16.0, header=11.5, body=9.0),
            top_margin=36.0,
            bottom_margin=36.0,
            left_margin=40.0,
            right_margin=40.0,
        )


ALL_TEMPLATES: Tuple[LayoutTemplate, ...] = (
    ClassicTemplate(),
    TwoColumnTemplate(),
    CompactTemplate(),
)
