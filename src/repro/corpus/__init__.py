"""``repro.corpus`` — synthetic annotated resume corpus.

Substitutes the paper's proprietary 80k-resume dataset with a parametric
generator producing multi-page, multi-template resumes with per-token
bounding boxes, style attributes, and gold block/entity annotations.
"""

from .content import ContentConfig, Fragment, LogicalLine, plan_resume
from .datasets import (
    BlockCorpus,
    CorpusStats,
    NerCorpus,
    NerExample,
    NerStats,
    build_block_corpus,
    build_ner_corpus,
    corpus_stats,
    extract_block_examples,
    ner_stats,
)
from .generator import ResumeGenerator
from .render import (
    VISUAL_DIM,
    ascii_page,
    attach_visual_features,
    render_page,
    sentence_visual_features,
)
from .templates import (
    ALL_TEMPLATES,
    ClassicTemplate,
    CompactTemplate,
    LayoutTemplate,
    TwoColumnTemplate,
)

__all__ = [
    "ContentConfig",
    "Fragment",
    "LogicalLine",
    "plan_resume",
    "ResumeGenerator",
    "BlockCorpus",
    "CorpusStats",
    "NerCorpus",
    "NerExample",
    "NerStats",
    "build_block_corpus",
    "build_ner_corpus",
    "corpus_stats",
    "extract_block_examples",
    "ner_stats",
    "VISUAL_DIM",
    "render_page",
    "sentence_visual_features",
    "attach_visual_features",
    "ascii_page",
    "LayoutTemplate",
    "ClassicTemplate",
    "TwoColumnTemplate",
    "CompactTemplate",
    "ALL_TEMPLATES",
]
