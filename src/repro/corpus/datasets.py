"""Dataset builders and statistics (Tables I and VI).

Builds the splits the paper uses: a large unlabeled pre-training corpus plus
small labeled fine-tuning splits for block classification, and block-level
examples for intra-block information extraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..docmodel.document import ResumeDocument
from ..docmodel.labels import BLOCK_ENTITIES
from .content import ContentConfig
from .generator import ResumeGenerator

__all__ = [
    "CorpusStats",
    "corpus_stats",
    "BlockCorpus",
    "build_block_corpus",
    "NerExample",
    "extract_block_examples",
    "NerCorpus",
    "build_ner_corpus",
    "ner_stats",
]


@dataclass
class CorpusStats:
    """The per-split statistics reported in Table I."""

    num_documents: int
    avg_tokens: float
    avg_sentences: float
    avg_pages: float


def corpus_stats(documents: Sequence[ResumeDocument]) -> CorpusStats:
    """Compute Table-I style statistics for a list of documents."""
    if not documents:
        return CorpusStats(0, 0.0, 0.0, 0.0)
    n = len(documents)
    return CorpusStats(
        num_documents=n,
        avg_tokens=sum(d.num_tokens for d in documents) / n,
        avg_sentences=sum(d.num_sentences for d in documents) / n,
        avg_pages=sum(d.num_pages for d in documents) / n,
    )


@dataclass
class BlockCorpus:
    """The four splits of the block classification experiment."""

    pretrain: List[ResumeDocument]
    train: List[ResumeDocument]
    validation: List[ResumeDocument]
    test: List[ResumeDocument]

    def splits(self) -> Dict[str, List[ResumeDocument]]:
        return {
            "pretrain": self.pretrain,
            "train": self.train,
            "validation": self.validation,
            "test": self.test,
        }


def build_block_corpus(
    num_pretrain: int = 200,
    num_train: int = 22,
    num_validation: int = 10,
    num_test: int = 10,
    seed: int = 0,
    content_config: Optional[ContentConfig] = None,
) -> BlockCorpus:
    """Build the Table-I splits (defaults are a 1:250 scale of the paper).

    The paper uses 80,000 / 1,100 / 500 / 500 documents; the default counts
    keep the same ratios at CPU scale.  Each split draws from a disjoint
    seed stream so no document leaks across splits.
    """
    config = content_config or ContentConfig.tiny()

    def make(count: int, offset: int, prefix: str) -> List[ResumeDocument]:
        generator = ResumeGenerator(seed=seed + offset, content_config=config)
        return generator.batch(count, prefix=prefix)

    return BlockCorpus(
        pretrain=make(num_pretrain, 1, "pretrain"),
        train=make(num_train, 2, "train"),
        validation=make(num_validation, 3, "val"),
        test=make(num_test, 4, "test"),
    )


# ----------------------------------------------------------------------
# Intra-block NER dataset (Table VI)
# ----------------------------------------------------------------------
@dataclass
class NerExample:
    """One intra-block training/evaluation instance.

    ``words`` are the block's tokens in reading order; ``labels`` are
    IOB strings (available because the corpus is synthetic — the paper's
    real train set has only distant labels, which :mod:`repro.ner.annotate`
    recreates from ``words`` alone).
    """

    words: List[str]
    labels: List[str]
    block_tag: str
    doc_id: str = ""

    def __post_init__(self):
        if len(self.words) != len(self.labels):
            raise ValueError("words and labels must align")

    @property
    def num_entities(self) -> int:
        return sum(1 for label in self.labels if label.startswith("B-"))

    @property
    def text(self) -> str:
        return " ".join(self.words)


def extract_block_examples(
    documents: Sequence[ResumeDocument],
    block_tags: Optional[Sequence[str]] = None,
) -> List[NerExample]:
    """Slice documents into per-block NER examples using gold block ids.

    Mirrors the paper's pipeline: the block classifier segments a document
    and each segmented block becomes one NER instance (Section V-B1).
    """
    wanted = set(block_tags) if block_tags else set(BLOCK_ENTITIES)
    examples: List[NerExample] = []
    for document in documents:
        groups: Dict[int, List] = {}
        order: List[int] = []
        for sentence in document.sentences:
            tag, block_id = sentence.majority_block()
            if tag not in wanted or block_id is None:
                continue
            if block_id not in groups:
                groups[block_id] = []
                order.append(block_id)
            groups[block_id].append((tag, sentence))
        for block_id in order:
            entries = groups[block_id]
            tag = entries[0][0]
            words: List[str] = []
            labels: List[str] = []
            for _, sentence in entries:
                for token in sentence.tokens:
                    words.append(token.word)
                    labels.append(token.entity_label)
            examples.append(
                NerExample(words, labels, block_tag=tag, doc_id=document.doc_id)
            )
    return examples


@dataclass
class NerCorpus:
    """Train (distantly supervised) and labeled validation/test splits."""

    train: List[NerExample]
    validation: List[NerExample]
    test: List[NerExample]


def build_ner_corpus(
    num_train_docs: int = 60,
    num_validation_docs: int = 8,
    num_test_docs: int = 12,
    seed: int = 100,
    content_config: Optional[ContentConfig] = None,
) -> NerCorpus:
    """Build the Table-VI splits by slicing disjoint document sets."""
    config = content_config or ContentConfig.tiny()

    def blocks(count: int, offset: int, prefix: str) -> List[NerExample]:
        generator = ResumeGenerator(seed=seed + offset, content_config=config)
        return extract_block_examples(generator.batch(count, prefix=prefix))

    return NerCorpus(
        train=blocks(num_train_docs, 1, "ner-train"),
        validation=blocks(num_validation_docs, 2, "ner-val"),
        test=blocks(num_test_docs, 3, "ner-test"),
    )


@dataclass
class NerStats:
    """The per-split statistics reported in Table VI."""

    num_samples: int
    avg_tokens: float
    avg_entities: float


def ner_stats(examples: Sequence[NerExample]) -> NerStats:
    """Compute Table-VI style statistics for NER examples."""
    if not examples:
        return NerStats(0, 0.0, 0.0)
    n = len(examples)
    return NerStats(
        num_samples=n,
        avg_tokens=sum(len(e.words) for e in examples) / n,
        avg_entities=sum(e.num_entities for e in examples) / n,
    )


__all__ += ["NerStats"]
