"""End-to-end resume parsing: block classification + intra-block NER.

``ResumeParser`` is the deployment-shaped API (the paper ships this
pipeline on Baidu Cloud): a document goes through the sentence-level block
classifier, contiguous same-tag sentences form block instances, and each
entity-bearing block runs through the NER tagger, yielding the hierarchical
structure — e.g. every work experience with its company, position, and
dates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from . import obs
from .corpus.datasets import NerExample
from .core.block_classifier import BlockClassifier
from .docmodel.document import ResumeDocument
from .docmodel.labels import BLOCK_ENTITIES, iob_to_spans
from .ner.model import NerTagger

__all__ = [
    "ParsedEntity",
    "ParsedBlock",
    "ParsedResume",
    "ResumeParser",
    "segment_to_ner_examples",
]


@dataclass
class ParsedEntity:
    """One extracted entity mention."""

    tag: str
    text: str
    start: int  # word offsets within the block
    stop: int


@dataclass
class ParsedBlock:
    """One semantic block with its text and extracted entities."""

    tag: str
    sentence_indices: List[int]
    text: str
    entities: List[ParsedEntity] = field(default_factory=list)


@dataclass
class ParsedResume:
    """The hierarchical structure extracted from one resume."""

    doc_id: str
    blocks: List[ParsedBlock]

    def blocks_by_tag(self, tag: str) -> List[ParsedBlock]:
        return [b for b in self.blocks if b.tag == tag]

    def to_dict(self) -> Dict:
        """JSON-ready nested structure."""
        return {
            "doc_id": self.doc_id,
            "blocks": [
                {
                    "tag": block.tag,
                    "text": block.text,
                    "entities": [
                        {"tag": e.tag, "text": e.text, "span": [e.start, e.stop]}
                        for e in block.entities
                    ],
                }
                for block in self.blocks
            ],
        }


class ResumeParser:
    """The full two-stage pipeline of the paper."""

    def __init__(
        self,
        block_classifier: BlockClassifier,
        ner_tagger: Optional[NerTagger] = None,
    ):
        self.block_classifier = block_classifier
        self.ner_tagger = ner_tagger

    # ------------------------------------------------------------------
    def segment(self, document: ResumeDocument) -> List[ParsedBlock]:
        """Stage 1: sentence-level block segmentation."""
        with obs.trace("pipeline.segment", sentences=document.num_sentences):
            labels = self.block_classifier.predict(document)
            scheme = self.block_classifier.scheme
            ids = [
                scheme.label_id(label) if label in scheme.labels else scheme.outside_id
                for label in labels
            ]
            blocks: List[ParsedBlock] = []
            for start, stop, tag in iob_to_spans(ids, scheme):
                indices = list(range(start, stop))
                text = " ".join(document.sentences[i].text for i in indices)
                blocks.append(
                    ParsedBlock(tag=tag, sentence_indices=indices, text=text)
                )
        telemetry = obs.get_telemetry()
        if telemetry is not None:
            counter = telemetry.metrics.counter("pipeline.blocks")
            for block in blocks:
                counter.inc(tag=block.tag)
        return blocks

    def extract_entities(
        self, document: ResumeDocument, blocks: Sequence[ParsedBlock]
    ) -> None:
        """Stage 2: NER inside each entity-bearing block (in place)."""
        if self.ner_tagger is None:
            return
        targets = [b for b in blocks if b.tag in BLOCK_ENTITIES]
        if not targets:
            return
        with obs.trace("pipeline.extract_entities", blocks=len(targets)):
            examples = []
            for block in targets:
                words: List[str] = []
                for index in block.sentence_indices:
                    words.extend(document.sentences[index].words)
                examples.append(
                    NerExample(words, ["O"] * len(words), block.tag, document.doc_id)
                )
            predictions = self.ner_tagger.predict(examples)
            scheme = self.ner_tagger.scheme
            telemetry = obs.get_telemetry()
            for block, example, labels in zip(targets, examples, predictions):
                ids = [
                    scheme.label_id(l) if l in scheme.labels else scheme.outside_id
                    for l in labels
                ]
                allowed = set(BLOCK_ENTITIES[block.tag])
                for start, stop, tag in iob_to_spans(ids, scheme):
                    if tag not in allowed:
                        continue  # Table IV evaluates per-block entity types
                    block.entities.append(
                        ParsedEntity(
                            tag=tag,
                            text=" ".join(example.words[start:stop]),
                            start=start,
                            stop=stop,
                        )
                    )
                    if telemetry is not None:
                        # Tags come from the fixed BLOCK_ENTITIES taxonomy
                        # (Table IV), already filtered through `allowed`.
                        # repro-lint: disable=RN012
                        telemetry.metrics.counter("pipeline.entities").inc(tag=tag)

    def parse(self, document: ResumeDocument) -> ParsedResume:
        """Run both stages and return the hierarchical structure."""
        with obs.trace("pipeline.parse", doc_id=document.doc_id):
            blocks = self.segment(document)
            self.extract_entities(document, blocks)
        telemetry = obs.get_telemetry()
        if telemetry is not None:
            telemetry.metrics.counter("pipeline.documents").inc()
        return ParsedResume(doc_id=document.doc_id, blocks=blocks)


def segment_to_ner_examples(
    classifier: BlockClassifier,
    documents,
) -> List[NerExample]:
    """Slice documents into NER instances using *predicted* blocks.

    This is the paper's actual data flow for task 2 (Section V-B1): the
    trained block classifier segments each training document, and the text
    of each entity-bearing predicted block becomes one training instance
    for the distant annotator.  (``repro.corpus.extract_block_examples``
    is the gold-segmentation variant used for controlled evaluation.)
    """
    parser = ResumeParser(classifier, ner_tagger=None)
    examples: List[NerExample] = []
    for document in documents:
        for block in parser.segment(document):
            if block.tag not in BLOCK_ENTITIES:
                continue
            words: List[str] = []
            for index in block.sentence_indices:
                words.extend(document.sentences[index].words)
            if not words:
                continue
            examples.append(
                NerExample(words, ["O"] * len(words), block.tag, document.doc_id)
            )
    return examples
