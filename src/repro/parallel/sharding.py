"""Deterministic corpus sharding for data-parallel training.

The sharding contract that every parallel code path relies on:

* **The global order is drawn once, worker-count independent.**  Epoch
  shuffles and length-bucketed mini-batches come from the *parent's* RNG
  via :func:`repro.core.training.iter_minibatches`, exactly as in
  single-process training — so the sequence of effective batches for a
  given seed is identical no matter how many workers run.
* **Shards are contiguous, order-preserving slices of each effective
  batch.**  :func:`shard_evenly` splits a batch into ``num_shards``
  balanced chunks (sizes differ by at most one, earlier shards take the
  remainder).  Concatenating the shards in worker order reconstructs the
  batch exactly — the property the weighted-mean all-reduce and the
  cross-worker SCL gather both depend on.

Because both halves are deterministic, ``same seed -> same effective
batches`` holds for every worker count, and the 1-vs-N parity tests can
compare final parameters directly.
"""

from __future__ import annotations

from typing import List, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["shard_evenly", "shard_imbalance"]


def shard_evenly(items: Sequence[T], num_shards: int) -> List[List[T]]:
    """Split ``items`` into ``num_shards`` contiguous, balanced shards.

    Sizes differ by at most one (the first ``len(items) % num_shards``
    shards carry the extra item).  Order is preserved: shard boundaries
    partition the sequence, so ``sum(shards, [])`` equals ``list(items)``.
    Shards may be empty when there are fewer items than shards — callers
    treat an empty shard as a zero-weight contribution.
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    count = len(items)
    base, remainder = divmod(count, num_shards)
    shards: List[List[T]] = []
    start = 0
    for shard_index in range(num_shards):
        size = base + (1 if shard_index < remainder else 0)
        shards.append(list(items[start : start + size]))
        start += size
    return shards


def shard_imbalance(shards: Sequence[Sequence[object]]) -> float:
    """Load-imbalance ratio ``max_shard / mean_shard`` (1.0 = balanced).

    Published as the ``parallel.shard_imbalance`` gauge: padded batch
    kernels pay for their largest shard, so a ratio creeping above ~1.2
    means wall-clock is being left on the table.  Returns 0.0 for an
    all-empty shard list (nothing was dispatched).
    """
    sizes = [len(shard) for shard in shards]
    total = sum(sizes)
    if total == 0:
        return 0.0
    mean = total / len(sizes)
    return max(sizes) / mean
