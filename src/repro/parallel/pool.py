"""Spawn-safe worker pool over shared-memory float64 slabs.

:class:`WorkerPool` forks ``num_workers`` persistent processes via stdlib
:mod:`multiprocessing` (default start method ``spawn`` — no reliance on
inherited globals; every payload crosses the boundary explicitly and
picklable).  Two float64 regions live in one anonymous shared
:func:`RawArray`:

* a **parameter slab** the parent rewrites before each dispatch and every
  worker copies into its model replica, and
* one **gradient slab per worker**, written whole on every gradient task
  so the weighted-mean all-reduce is a plain parent-side sum.

Queues carry only small control payloads (index lists, scalars, SCL row
blocks); the big vectors never pass through pickle after startup.

Telemetry fan-in: when a :mod:`repro.obs` session is active at pool
construction, every worker opens a child telemetry session spooling to a
per-worker JSONL file (see :mod:`repro.obs.relay`) — spans, metrics and
profiler samples emitted *inside* the workers merge into the parent's
run log on :meth:`WorkerPool.close` with ``worker=`` labels,
process-qualified span ids, and original worker timestamps.  The spool
honours the no-payloads-through-control-queues rule (RN009): telemetry
never rides the task/result queues.

BLAS discipline: the parent pins ``OMP_NUM_THREADS`` & friends to ``1``
in the environment *while the workers boot* — under ``spawn`` the child
inherits that environment before it first imports numpy, so no worker can
ever start a multi-threaded BLAS and spin-contend the cores the other
workers need.  ``_worker_main`` additionally calls
:func:`repro._threads.limit_blas_threads` with an explicit count as its
first statement, and each worker reports
:func:`repro._threads.blas_thread_counts` in its ready handshake (the
regression test pins this).

:class:`LocalRunner` is the in-process twin: same contexts, same slab
semantics, no processes.  ``num_workers=1`` training uses it by default
(sharded math without fork overhead), and setting
``REPRO_PARALLEL_BACKEND=local`` forces it at any worker count — handy on
single-core machines and for fast parity tests.
"""

from __future__ import annotations

import os
import time
import traceback
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .. import obs
from .._threads import blas_thread_counts, blas_threads_pinned, limit_blas_threads

__all__ = ["ParallelWorkerError", "WorkerPool", "LocalRunner", "make_runner"]

#: Environment variable forcing the in-process backend (``local``) or the
#: multi-process one (``process``) regardless of worker count.
BACKEND_ENV = "REPRO_PARALLEL_BACKEND"

class ParallelWorkerError(RuntimeError):
    """A worker failed; carries the worker id, its shard, and the traceback."""

    def __init__(self, worker_id: int, task: str, detail: str, shard=None):
        self.worker_id = worker_id
        self.task = task
        self.shard = shard
        shard_note = f" shard={list(shard)!r}" if shard is not None else ""
        super().__init__(
            f"worker {worker_id} failed in task {task!r}{shard_note}:\n{detail}"
        )


def _next_task(task_queue, parent_alive: Callable[[], bool], poll_seconds: float = 1.0):
    """Next message off ``task_queue``, or None once the parent is gone.

    The worker-side twin of ``WorkerPool._collect``'s poll loop: a bare
    ``task_queue.get()`` would block forever when the parent dies without
    sending the stop sentinel (killed mid-epoch, crashed before
    ``close``).  Queued work is always drained first — liveness is only
    consulted when the queue is empty.
    """
    import queue as queue_module

    while True:
        try:
            return task_queue.get(timeout=poll_seconds)
        except queue_module.Empty:
            if not parent_alive():
                return None


def _worker_main(
    worker_id: int,
    init_fn: Callable,
    init_payload: dict,
    raw,
    param_size: int,
    num_workers: int,
    task_queue,
    result_queue,
    telemetry_spec: Optional[dict] = None,
) -> None:
    """Entry point of one worker process (also run by spawn's bootstrap)."""
    # First statement on purpose: an explicit override so any BLAS loaded
    # by the context build below starts single-threaded even if the
    # parent's environment said otherwise.
    limit_blas_threads(1)
    import contextlib
    import multiprocessing as mp

    parent = mp.parent_process()
    try:
        params_view, grad_view = _slab_views(raw, param_size, num_workers, worker_id)
        context = init_fn(worker_id, init_payload, params_view, grad_view)
    except BaseException:
        result_queue.put(("error", worker_id, "<init>", traceback.format_exc()))
        return
    result_queue.put(("ready", worker_id, {"blas": blas_thread_counts()}))
    # When the parent pool was built inside a telemetry session, every
    # task runs under a child session spooling to per-worker JSONL (the
    # relay merges it into the parent log on join; queues keep carrying
    # only control payloads).
    session_context = (
        obs.worker_session(telemetry_spec, worker_id)
        if telemetry_spec is not None
        else contextlib.nullcontext(None)
    )
    with session_context as child_telemetry:
        while True:
            message = _next_task(
                task_queue, lambda: parent is None or parent.is_alive()
            )
            if message is None:
                break
            task, payload = message
            started = time.perf_counter()
            try:
                with obs.trace("parallel.worker_task", task=task):
                    result = getattr(context, "task_" + task)(payload)
            except BaseException:
                result_queue.put(("error", worker_id, task, traceback.format_exc()))
                break
            seconds = time.perf_counter() - started
            if child_telemetry is not None:
                # Worker-side timing with the worker's own wall clock —
                # the relayed `worker_step` event and timer series replace
                # the parent's post-hoc observation (see _collect).
                child_telemetry.metrics.timer(
                    "parallel.worker_step_seconds"
                ).observe(seconds)
                child_telemetry.event("worker_step", task=task, seconds=seconds)
            result_queue.put(("ok", worker_id, result, seconds))


def _slab_views(raw, param_size: int, num_workers: int, worker_id: Optional[int]):
    """(params, grad-of-worker) float64 views into the shared block."""
    flat = np.frombuffer(raw, dtype=np.float64)
    params = flat[:param_size]
    if worker_id is None:
        return params, None
    start = param_size * (1 + worker_id)
    return params, flat[start : start + param_size]


class _RunnerBase:
    """Shared surface of :class:`WorkerPool` and :class:`LocalRunner`."""

    num_workers: int
    params: np.ndarray

    def run(self, task: str, payloads: Sequence[dict]) -> List[object]:
        raise NotImplementedError

    def grad_slab(self, worker_id: int) -> np.ndarray:
        raise NotImplementedError

    def reduce(self, total_weight: Optional[float] = None) -> np.ndarray:
        """Sum every worker's gradient slab; optionally scale by 1/weight.

        Workers publish *weight-scaled* gradients (the gradient of
        ``loss * shard_weight``), so the sum divided by the total weight
        is the exact weighted mean over every document of the effective
        batch — :class:`repro.core.training.GradAccumulator` semantics,
        shard by shard instead of micro-batch by micro-batch.
        """
        with obs.trace("parallel.allreduce", workers=self.num_workers):
            out = self.grad_slab(0).copy()
            for worker_id in range(1, self.num_workers):
                out += self.grad_slab(worker_id)
            if total_weight is not None:
                if total_weight <= 0:
                    raise ValueError("total_weight must be positive")
                out /= total_weight
        return out

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class WorkerPool(_RunnerBase):
    """N persistent worker processes around one shared float64 block."""

    def __init__(
        self,
        num_workers: int,
        init_fn: Callable,
        init_payload: dict,
        param_size: int = 0,
        start_method: str = "spawn",
    ):
        import multiprocessing as mp

        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.num_workers = num_workers
        self._closed = False
        ctx = mp.get_context(start_method)
        total = max(param_size * (1 + num_workers), 1)
        self._raw = ctx.RawArray("d", total)
        self._param_size = param_size
        self.params, _ = _slab_views(self._raw, param_size, num_workers, None)
        # Full Queues (not SimpleQueues) on both directions so each side
        # can poll with a timeout and notice a dead peer: _collect spots a
        # worker that died without reporting (OOM kill, spawn failing to
        # re-import __main__), _next_task spots a parent that died without
        # sending the stop sentinel.
        self._task_queues = [ctx.Queue() for _ in range(num_workers)]
        self._results = ctx.Queue()
        self.ready_info: List[dict] = [None] * num_workers
        # Cross-process telemetry fan-in: when a session is active at pool
        # construction, each worker opens a child session spooling to
        # per-worker JSONL, merged into *this* session on close (the
        # session reference is captured now so the merge still lands if
        # the pool outlives the installing context).
        telemetry = obs.get_telemetry()
        self._relay = (
            obs.PoolRelay(num_workers, telemetry) if telemetry is not None
            else None
        )
        worker_spec = (
            self._relay.worker_spec() if self._relay is not None else None
        )
        with obs.trace("parallel.pool_start", workers=num_workers) as pool_span:
            if self._relay is not None and pool_span is not None:
                self._relay.pool_span_id = pool_span.span_id
            # Spawned children read the pinned environment before their
            # first numpy import — the only moment the cap is guaranteed
            # to bind; the parent's own policy is restored on exit.
            with blas_threads_pinned(1):
                self._processes = []
                for worker_id in range(num_workers):
                    process = ctx.Process(
                        target=_worker_main,
                        args=(
                            worker_id,
                            init_fn,
                            init_payload,
                            self._raw,
                            param_size,
                            num_workers,
                            self._task_queues[worker_id],
                            self._results,
                            worker_spec,
                        ),
                        daemon=True,
                        name=f"repro-parallel-{worker_id}",
                    )
                    process.start()
                    self._processes.append(process)
            self._collect("<init>", [{}] * num_workers, ready=True)

    # ------------------------------------------------------------------
    def grad_slab(self, worker_id: int) -> np.ndarray:
        _, grad = _slab_views(
            self._raw, self._param_size, self.num_workers, worker_id
        )
        return grad

    def run(self, task: str, payloads: Sequence[dict]) -> List[object]:
        if self._closed:
            raise RuntimeError("worker pool is closed")
        if len(payloads) != self.num_workers:
            raise ValueError("one payload per worker required")
        for queue, payload in zip(self._task_queues, payloads):
            queue.put((task, payload))
        return self._collect(task, payloads)

    def _collect(
        self, task: str, payloads: Sequence[dict], ready: bool = False
    ) -> List[object]:
        """Gather one message per worker; raise on the first failure.

        Polls with a timeout so a worker that dies *without* reporting
        (OOM kill, a spawn bootstrap that cannot re-import ``__main__``)
        surfaces as a :class:`ParallelWorkerError` instead of a parent
        that blocks forever on the result queue.
        """
        import queue as queue_module

        results: List[object] = [None] * self.num_workers
        durations: List[float] = [0.0] * self.num_workers
        pending = self.num_workers
        while pending:
            try:
                message = self._results.get(timeout=1.0)
            except queue_module.Empty:
                dead = [
                    (worker_id, process.exitcode)
                    for worker_id, process in enumerate(self._processes)
                    if not process.is_alive()
                ]
                if dead and self._results.empty():
                    worker_id, exitcode = dead[0]
                    self.close(force=True)
                    raise ParallelWorkerError(
                        worker_id,
                        task,
                        f"worker process died without reporting "
                        f"(exitcode {exitcode}); if this happened at pool "
                        f"startup under the spawn start method, the "
                        f"launching script must be importable as __main__ "
                        f"(a real file, with pool creation under "
                        f"`if __name__ == '__main__':`)",
                    )
                continue
            pending -= 1
            kind, worker_id = message[0], message[1]
            if kind == "error":
                _, _, failed_task, detail = message
                shard = None
                if worker_id < len(payloads) and isinstance(payloads[worker_id], dict):
                    shard = payloads[worker_id].get("indices")
                self.close(force=True)
                raise ParallelWorkerError(worker_id, failed_task, detail, shard)
            if ready:
                self.ready_info[worker_id] = message[2]
                continue
            results[worker_id] = message[2]
            durations[worker_id] = message[3]
        if not ready and self._relay is None:
            # No relay (pool built outside any session, or a later session
            # appeared): fall back to post-hoc parent-side observation.
            # With a relay the workers time themselves and the merged
            # snapshot carries worker-labeled series with true timestamps.
            telemetry = obs.get_telemetry()
            if telemetry is not None:
                timer = telemetry.metrics.timer("parallel.worker_step_seconds")
                for worker_id, seconds in enumerate(durations):
                    timer.observe(seconds, worker=str(worker_id))
        return results

    def close(self, force: bool = False) -> None:
        """Stop every worker; terminate stragglers so none is orphaned."""
        if self._closed:
            return
        self._closed = True
        if not force:
            for queue in self._task_queues:
                try:
                    queue.put(None)
                except (OSError, ValueError):
                    pass
        for process in self._processes:
            process.join(timeout=0.0 if force else 5.0)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        for process in self._processes:
            process.close()
        # Workers are already joined (or terminated) by now, so the stop
        # sentinels have been delivered; cancelling the feeder-thread join
        # only guards interpreter exit against a wedged queue.
        for queue in self._task_queues:
            queue.close()
            queue.cancel_join_thread()
        self._results.close()
        self._results.cancel_join_thread()
        if self._relay is not None:
            # Merge after the join: the spools are complete (or, on a
            # forced teardown, complete up to the crash — the partial
            # telemetry is exactly the evidence a post-mortem wants).
            try:
                self._relay.merge()
            except Exception:
                pass


class LocalRunner(_RunnerBase):
    """In-process runner with pool-identical semantics (no fork).

    Contexts are built eagerly with numpy-backed slabs; ``run`` executes
    worker tasks sequentially in worker order.  Used for ``num_workers=1``
    (sharded math without process overhead) and by the fast parity tests
    that compare worker counts without paying spawn latency.
    """

    def __init__(
        self,
        num_workers: int,
        init_fn: Callable,
        init_payload: dict,
        param_size: int = 0,
    ):
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.num_workers = num_workers
        self._flat = np.zeros(max(param_size * (1 + num_workers), 1))
        self._param_size = param_size
        self.params = self._flat[:param_size]
        self._contexts = []
        self.ready_info: List[dict] = []
        for worker_id in range(num_workers):
            params, grad = _slab_views(
                self._flat, param_size, num_workers, worker_id
            )
            self._contexts.append(init_fn(worker_id, init_payload, params, grad))
            self.ready_info.append({"blas": blas_thread_counts()})

    def grad_slab(self, worker_id: int) -> np.ndarray:
        start = self._param_size * (1 + worker_id)
        return self._flat[start : start + self._param_size]

    def run(self, task: str, payloads: Sequence[dict]) -> List[object]:
        if len(payloads) != self.num_workers:
            raise ValueError("one payload per worker required")
        results: List[object] = []
        durations: List[float] = []
        for worker_id, (context, payload) in enumerate(
            zip(self._contexts, payloads)
        ):
            started = time.perf_counter()
            try:
                results.append(getattr(context, "task_" + task)(payload))
            except ParallelWorkerError:
                raise
            except BaseException:
                raise ParallelWorkerError(
                    worker_id,
                    task,
                    traceback.format_exc(),
                    payload.get("indices") if isinstance(payload, dict) else None,
                ) from None
            durations.append(time.perf_counter() - started)
        telemetry = obs.get_telemetry()
        if telemetry is not None:
            timer = telemetry.metrics.timer("parallel.worker_step_seconds")
            for worker_id, seconds in enumerate(durations):
                timer.observe(seconds, worker=str(worker_id))
        return results

    def close(self) -> None:
        self._contexts = []


def make_runner(
    num_workers: int,
    init_fn: Callable,
    init_payload: dict,
    param_size: int = 0,
    start_method: str = "spawn",
) -> _RunnerBase:
    """Build the runner for a worker count, honouring ``BACKEND_ENV``.

    ``num_workers == 1`` runs in process by default (same sharded code
    path, no fork); ``>= 2`` forks a :class:`WorkerPool`.  The
    ``REPRO_PARALLEL_BACKEND`` variable forces ``local`` or ``process``
    either way.
    """
    backend = os.environ.get(BACKEND_ENV, "")
    if backend not in ("", "local", "process"):
        raise ValueError(f"unknown {BACKEND_ENV} value: {backend!r}")
    if backend == "local" or (num_workers == 1 and backend != "process"):
        return LocalRunner(num_workers, init_fn, init_payload, param_size)
    return WorkerPool(
        num_workers, init_fn, init_payload, param_size, start_method=start_method
    )
