"""Per-document seeded randomness for worker-count-invariant pre-training.

Single-process pre-training draws token corruption, sentence-mask slots
and DNSP anchors from one sequential RNG, so the stream depends on how
documents are grouped into forward passes — which is exactly what changes
when a batch is sharded across workers.  Data-parallel mode therefore
switches to a *per-document* discipline: every (document, step) pair owns
an independent generator seeded by ``[seed, step, doc_index]``, and all
draws for that document come from it in a fixed order (slots, anchors,
corruption).  The draws are then identical for every worker count —
including ``num_workers=1`` — which is what the parity battery asserts.

The helpers below draw per document on the document's own ``(m, t)``
arrays and assemble the results into the shapes the batched objectives
expect for an arbitrary collation.  Padding positions are never selected
(``token_mask`` gates the draw), so a per-document corruption block can
be placed into any padded collation unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.batching import DocumentBatch
from ..core.featurize import DocumentFeatures
from ..core.pretrain import masked_copy

__all__ = ["DocumentDraw", "draw_document", "draw_documents", "assemble_batch_randomness"]


@dataclass
class DocumentDraw:
    """Frozen randomness for one document at one pre-training step."""

    slots: Optional[np.ndarray]       # (m,) bool, None when m < 2
    anchors: Optional[np.ndarray]     # DNSP anchor positions, None when m < 3
    corrupted: np.ndarray             # (m, t) corrupted token ids
    selected: np.ndarray              # (m, t) bool MLLM prediction mask


def _document_rng(
    seed: int, step: int, doc_index: int, dynamic: bool
) -> np.random.Generator:
    if dynamic:
        return np.random.default_rng([seed, step, doc_index])
    # Static sentence masking freezes each document's draws across steps
    # (the w/o-dynamic ablation): the stream ignores the step entirely.
    return np.random.default_rng([seed, doc_index])


def _mask_slots(
    m: int, ratio: float, rng: np.random.Generator
) -> Optional[np.ndarray]:
    """Mirror of ``Pretrainer._mask_slots`` on an injected generator."""
    count = max(int(round(ratio * m)), 1)
    if m < 2:
        return None
    count = min(count, m - 1)
    slots = np.zeros(m, dtype=bool)
    slots[rng.choice(m, size=count, replace=False)] = True
    return slots


def _anchors(
    m: int, ratio: float, rng: np.random.Generator
) -> Optional[np.ndarray]:
    """Mirror of ``Pretrainer.sample_dnsp_anchors`` for one document."""
    if m < 3:
        return None
    count = max(int(round(ratio * m)), 1)
    count = min(count, m - 1)
    return rng.choice(m - 1, size=count, replace=False)


def draw_document(
    features: DocumentFeatures,
    doc_index: int,
    step: int,
    seed: int,
    config,
    mask_id: int,
    vocab_size: int,
    random_floor: int,
    dynamic: bool = True,
) -> DocumentDraw:
    """All randomness for one document at one step, in a fixed draw order."""
    rng = _document_rng(seed, step, doc_index, dynamic)
    m = features.num_sentences
    slots = _mask_slots(m, config.sentence_mask_ratio, rng)
    anchors = _anchors(m, config.next_sentence_ratio, rng)
    corrupted, selected = masked_copy(
        features.token_ids,
        features.token_mask,
        config.token_mask_prob,
        mask_id,
        vocab_size,
        rng,
        random_floor=random_floor,
    )
    return DocumentDraw(
        slots=slots, anchors=anchors, corrupted=corrupted, selected=selected
    )


def draw_documents(
    features: Sequence[DocumentFeatures],
    doc_indices: Sequence[int],
    step: int,
    seed: int,
    config,
    mask_id: int,
    vocab_size: int,
    random_floor: int,
    dynamic: bool = True,
) -> List[DocumentDraw]:
    return [
        draw_document(
            f, int(index), step, seed, config, mask_id, vocab_size,
            random_floor, dynamic=dynamic,
        )
        for f, index in zip(features, doc_indices)
    ]


def assemble_batch_randomness(
    batch: DocumentBatch, draws: Sequence[DocumentDraw]
) -> Tuple[Optional[np.ndarray], List[Optional[np.ndarray]], Tuple[np.ndarray, np.ndarray]]:
    """Lay per-document draws into the shapes one collation expects.

    Returns ``(slots, anchors, corruption)`` ready for
    :meth:`Pretrainer.pretrain_losses`-style consumption:

    * ``slots`` — padded ``(B, m_max)`` bool, or None when no document is
      maskable;
    * ``anchors`` — per-document anchor list, entries None for documents
      that must not contribute (no slots, or fewer than 3 sentences) —
      mirroring the ``lengths`` zeroing of the single-process path;
    * ``corruption`` — collated ``(n, t_max)`` ``(corrupted, selected)``
      pair over the flat sentence block.
    """
    slots = np.zeros((batch.batch_size, batch.max_sentences), dtype=bool)
    any_masked = False
    anchors: List[Optional[np.ndarray]] = []
    corrupted = batch.token_ids.copy()
    selected = np.zeros(batch.token_ids.shape, dtype=bool)
    offset = 0
    for row, (features, draw) in enumerate(zip(batch.features, draws)):
        m, t = features.num_sentences, features.max_tokens
        if draw.slots is not None:
            slots[row, :m] = draw.slots
            any_masked = True
            anchors.append(draw.anchors)
        else:
            # Only slot-masked documents ran through the single-process
            # per-document loop, so only they contribute DNSP anchors.
            anchors.append(None)
        rows = slice(offset, offset + m)
        corrupted[rows, :t] = draw.corrupted
        selected[rows, :t] = draw.selected
        offset += m
    return (
        slots if any_masked else None,
        anchors,
        (corrupted, selected),
    )
