"""The data-parallel all-reduce engine shared by the three trainers.

One optimizer step in parallel mode:

1. **broadcast** — serialise the parent model into the shared parameter
   slab (workers copy it into their replicas at task start);
2. **dispatch** — shard the effective batch with
   :func:`~repro.parallel.sharding.shard_evenly` and send one gradient
   task per worker (the ``parallel.shard_imbalance`` gauge tracks how
   even the split was);
3. **reduce + apply** — sum the per-worker gradient slabs (the
   ``parallel.allreduce`` span), normalise by the total shard weight,
   install the result on the parent's parameters, and run the same
   clip-then-step sequence as :class:`~repro.core.training.GradAccumulator`
   (via :func:`~repro.core.training.apply_weighted_step`).

Because workers publish *weight-scaled* gradients, the reduced vector is
the exact weighted mean over every document of the effective batch —
the same contract the accumulator keeps across micro-batches.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .. import obs
from ..core.training import apply_weighted_step
from .grads import param_vector, set_grads_from
from .sharding import shard_evenly, shard_imbalance

__all__ = ["DataParallelEngine", "publish_cache_hit_rates"]


def publish_cache_hit_rates(results: Sequence[dict]) -> None:
    """Per-worker ``parallel.feature_cache.hit_rate{worker=}`` gauges."""
    telemetry = obs.get_telemetry()
    if telemetry is None:
        return
    gauge = telemetry.metrics.gauge("parallel.feature_cache.hit_rate")
    for worker_id, result in enumerate(results):
        if isinstance(result, dict) and "cache_hit_rate" in result:
            gauge.set(result["cache_hit_rate"], worker=str(worker_id))


class DataParallelEngine:
    """Broadcast / dispatch / reduce / step over a parallel runner."""

    def __init__(
        self,
        runner,
        optimizer,
        parameters: Sequence,
        max_grad_norm: Optional[float] = None,
    ):
        self.runner = runner
        self.optimizer = optimizer
        self.parameters = list(parameters)
        self.max_grad_norm = max_grad_norm
        #: Pre-clip gradient norm of the latest step (None before the
        #: first, or when clipping is disabled) — mirrors GradAccumulator.
        self.last_grad_norm: Optional[float] = None
        self.steps = 0

    # ------------------------------------------------------------------
    def broadcast(self) -> None:
        """Write the parent's current parameters into the shared slab."""
        param_vector(self.parameters, out=self.runner.params)

    def shard(self, indices: Sequence[int]) -> List[List[int]]:
        """Split one effective batch across the workers (gauged)."""
        shards = shard_evenly(indices, self.runner.num_workers)
        telemetry = obs.get_telemetry()
        if telemetry is not None:
            telemetry.metrics.gauge("parallel.shard_imbalance").set(
                shard_imbalance(shards)
            )
        return shards

    def dispatch(
        self,
        task: str,
        shards: Sequence[Sequence[int]],
        extras: Optional[Sequence[dict]] = None,
    ) -> List[object]:
        """One task per worker over its shard (plus optional extras)."""
        payloads = []
        for worker_id, shard in enumerate(shards):
            payload = {"indices": list(shard)}
            if extras is not None:
                payload.update(extras[worker_id])
            payloads.append(payload)
        return self.runner.run(task, payloads)

    def apply(self, total_weight: Optional[float] = None) -> Optional[float]:
        """Reduce the worker slabs and take one optimizer step."""
        reduced = self.runner.reduce(total_weight)
        set_grads_from(self.parameters, reduced)
        self.last_grad_norm = apply_weighted_step(
            self.optimizer, self.parameters, max_grad_norm=self.max_grad_norm
        )
        self.steps += 1
        return self.last_grad_norm

    # ------------------------------------------------------------------
    def grad_step(
        self,
        task: str,
        indices: Sequence[int],
        extras: Optional[Sequence[dict]] = None,
    ):
        """One full broadcast→dispatch→reduce→step cycle.

        Expects worker results shaped ``{"loss": float, "weight": float}``
        (the contract of ``task_grad`` / ``task_kl_grad``).  Returns
        ``(results, batch_loss)`` where ``batch_loss`` is the
        weight-averaged loss over the whole effective batch, or None when
        no shard contributed (no step taken).
        """
        self.broadcast()
        results = self.dispatch(task, self.shard(indices), extras)
        total_weight = sum(result["weight"] for result in results)
        if total_weight <= 0:
            return results, None
        self.apply(total_weight)
        batch_loss = (
            sum(result["loss"] * result["weight"] for result in results)
            / total_weight
        )
        return results, batch_loss
