"""``repro.parallel`` — multi-process data-parallel training and corpus work.

The package turns the single-process trainers into synchronous
data-parallel ones without changing their math:

* :mod:`~repro.parallel.sharding` — the deterministic sharding contract
  (global batch order drawn once, contiguous order-preserving shards);
* :mod:`~repro.parallel.pool` — a spawn-safe :class:`WorkerPool` over
  shared-memory float64 slabs, its in-process twin :class:`LocalRunner`,
  and :func:`make_runner` (honouring ``REPRO_PARALLEL_BACKEND``);
* :mod:`~repro.parallel.grads` — flat parameter/gradient vectors and the
  closed-form cross-worker InfoNCE gradient;
* :mod:`~repro.parallel.randomness` — per-document seeded draws that make
  pre-training randomness worker-count invariant;
* :mod:`~repro.parallel.workers` — worker contexts for the three trainers
  plus corpus generation/featurization;
* :mod:`~repro.parallel.data_parallel` — the broadcast → dispatch →
  all-reduce → step engine;
* :mod:`~repro.parallel.corpus` — parallel document generation and
  featurization helpers.

Entry points for users are the ``num_workers`` knobs on
:meth:`repro.core.BlockTrainer.fit`, :meth:`repro.core.Pretrainer.fit`,
:class:`repro.ner.SelfTrainConfig`, and
:meth:`repro.corpus.ResumeGenerator.batch` — see ``docs/API.md`` §14.
"""

from .data_parallel import DataParallelEngine, publish_cache_hit_rates
from .corpus import featurize_documents, generate_documents
from .grads import (
    info_nce_grads,
    load_param_vector,
    param_layout,
    param_size,
    param_vector,
    set_grads_from,
    write_grad_vector,
)
from .pool import (
    BACKEND_ENV,
    LocalRunner,
    ParallelWorkerError,
    WorkerPool,
    make_runner,
)
from .randomness import (
    DocumentDraw,
    assemble_batch_randomness,
    draw_document,
    draw_documents,
)
from .sharding import shard_evenly, shard_imbalance
from .workers import (
    init_block_worker,
    init_corpus_worker,
    init_featurize_worker,
    init_ner_worker,
    init_pretrain_worker,
    init_probe_worker,
)

__all__ = [
    "BACKEND_ENV",
    "DataParallelEngine",
    "DocumentDraw",
    "LocalRunner",
    "ParallelWorkerError",
    "WorkerPool",
    "assemble_batch_randomness",
    "draw_document",
    "draw_documents",
    "featurize_documents",
    "generate_documents",
    "info_nce_grads",
    "init_block_worker",
    "init_corpus_worker",
    "init_featurize_worker",
    "init_ner_worker",
    "init_pretrain_worker",
    "init_probe_worker",
    "load_param_vector",
    "make_runner",
    "param_layout",
    "param_size",
    "param_vector",
    "publish_cache_hit_rates",
    "set_grads_from",
    "shard_evenly",
    "shard_imbalance",
    "write_grad_vector",
]
