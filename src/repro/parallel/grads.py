"""Flat parameter/gradient vectors and the cross-worker SCL gradient.

Data-parallel training moves two kinds of float64 vectors through shared
memory: the broadcast parameter vector (parent -> workers before every
step) and one gradient vector per worker (workers -> parent for the
all-reduce).  Both use the same layout: every parameter of the model, in
``Module.parameters()`` order, raveled C-order and concatenated.  Parent
and workers rebuild structurally identical modules, so the order matches
by construction; :func:`param_layout` gives a shape fingerprint the pool
handshake compares to fail fast on a drifted replica.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..nn.tensor import no_grad

__all__ = [
    "param_layout",
    "param_size",
    "param_vector",
    "load_param_vector",
    "write_grad_vector",
    "set_grads_from",
    "info_nce_grads",
]


def param_layout(parameters: Sequence) -> List[Tuple[int, ...]]:
    """Shape fingerprint of a parameter list (pool handshake check)."""
    return [tuple(int(s) for s in p.data.shape) for p in parameters]


def param_size(parameters: Sequence) -> int:
    """Total number of scalar parameters (= flat vector length)."""
    return int(sum(p.data.size for p in parameters))


def param_vector(parameters: Sequence, out: np.ndarray = None) -> np.ndarray:
    """Concatenate every parameter into one flat float64 vector."""
    if out is None:
        out = np.empty(param_size(parameters), dtype=np.float64)
    offset = 0
    for param in parameters:
        size = param.data.size
        out[offset : offset + size] = param.data.ravel()
        offset += size
    return out


def load_param_vector(parameters: Sequence, flat: np.ndarray) -> None:
    """Write a flat vector back into ``param.data`` (in place, copying).

    Runs under ``no_grad`` for the same reason optimizer steps do: the
    broadcast happens between steps, when no live graph references the
    parameter buffers.
    """
    offset = 0
    with no_grad():
        for param in parameters:
            size = param.data.size
            np.copyto(
                param.data, flat[offset : offset + size].reshape(param.data.shape)
            )
            offset += size


def write_grad_vector(parameters: Sequence, out: np.ndarray) -> None:
    """Serialise gradients into ``out`` (zeros where ``grad`` is None).

    Every position is written, so a worker's shared-memory slab never
    carries residue from a previous step — an empty shard publishes an
    exact zero contribution.
    """
    offset = 0
    for param in parameters:
        size = param.data.size
        if param.grad is None:
            out[offset : offset + size] = 0.0
        else:
            out[offset : offset + size] = param.grad.ravel()
        offset += size


def set_grads_from(parameters: Sequence, flat: np.ndarray) -> None:
    """Install a reduced flat gradient onto the parent's parameters."""
    offset = 0
    for param in parameters:
        size = param.data.size
        param.grad = flat[offset : offset + size].reshape(param.data.shape).copy()
        offset += size


def info_nce_grads(
    predicted: np.ndarray, targets: np.ndarray, temperature: float
) -> Tuple[float, np.ndarray, np.ndarray]:
    """Closed-form value and row gradients of the Eq. 3-4 InfoNCE loss.

    The SCL objective pools masked sentence slots *across the whole
    effective batch* (Eq. 4's ``N = b*k``), so it cannot be computed
    shard-locally.  Instead each worker ships its predicted/fused rows,
    the parent evaluates the global loss here, and the returned per-row
    gradients flow back for the workers' backward pass — the exact chain
    rule, so splitting the batch changes nothing about the objective.

    With ``S = P @ T.T`` and ``L = -(1/n) sum_i log softmax(S/tau)_ii``:
    ``dL/dS = (softmax(S/tau) - I) / (n * tau)``, ``dL/dP = dL/dS @ T``
    and ``dL/dT = dL/dS.T @ P``.
    """
    if predicted.shape != targets.shape:
        raise ValueError(
            f"row blocks disagree: {predicted.shape} vs {targets.shape}"
        )
    n = predicted.shape[0]
    scores = (predicted @ targets.T) / temperature
    # Numerically stable row softmax + diagonal log-probability.
    scores -= scores.max(axis=-1, keepdims=True)
    exp = np.exp(scores)
    denom = exp.sum(axis=-1, keepdims=True)
    softmax = exp / denom
    diagonal = np.arange(n)
    log_prob = scores[diagonal, diagonal] - np.log(denom[:, 0])
    loss = -float(log_prob.mean())
    d_scores = softmax.copy()
    d_scores[diagonal, diagonal] -= 1.0
    d_scores /= n * temperature
    return loss, d_scores @ targets, d_scores.T @ predicted
