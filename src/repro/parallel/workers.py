"""Worker-side contexts for the data-parallel runners.

Each ``init_*`` function is a top-level (hence spawn-picklable) factory
the pool calls once per worker: it rebuilds the model replica from config
+ tokenizer payloads (never from pickled modules — featurizers hold
weakref-keyed caches that cannot cross a process boundary, and a fresh
per-process :class:`~repro.core.featurize.FeatureCache` *is* the
shard-local cache story), checks the parameter layout against the
parent's fingerprint, and returns a context whose ``task_*`` methods the
pool dispatches to.

Replica protocol, shared by every gradient task:

1. copy the broadcast parameter slab into the replica
   (:func:`~repro.parallel.grads.load_param_vector`),
2. run the shard's forward/backward,
3. serialise the gradients into the worker's slab — every position, so
   an empty shard publishes an exact zero contribution.

The model replicas are *structural* rebuilds: their random init is
thrown away on the first broadcast, so only shapes (checked) and
parameter order (fixed by ``Module.parameters()`` insertion order) must
match the parent.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

import numpy as np

from .._threads import blas_thread_counts
from ..nn.tensor import Tensor
from .grads import (
    load_param_vector,
    param_layout,
    write_grad_vector,
)
from .randomness import assemble_batch_randomness, draw_documents

__all__ = [
    "init_block_worker",
    "init_pretrain_worker",
    "init_ner_worker",
    "init_corpus_worker",
    "init_featurize_worker",
    "init_probe_worker",
]


class _GradContext:
    """Shared slab plumbing for the model-replica contexts."""

    def __init__(self, worker_id: int, params_view, grad_view, parameters, layout):
        self.worker_id = worker_id
        self._params_view = params_view
        self._grad_view = grad_view
        self.parameters = list(parameters)
        if layout is not None and param_layout(self.parameters) != [
            tuple(shape) for shape in layout
        ]:
            raise RuntimeError(
                f"worker {worker_id} rebuilt a model whose parameter layout "
                "does not match the parent's"
            )

    def refresh(self) -> None:
        load_param_vector(self.parameters, self._params_view)

    def zero_grads(self) -> None:
        for parameter in self.parameters:
            parameter.grad = None

    def publish_grads(self) -> None:
        write_grad_vector(self.parameters, self._grad_view)

    def publish_zeros(self) -> None:
        self._grad_view[:] = 0.0


# ----------------------------------------------------------------------
# Block classification
# ----------------------------------------------------------------------
class BlockWorkerContext(_GradContext):
    """Per-shard CRF gradients for :class:`~repro.core.BlockTrainer`."""

    def __init__(self, worker_id: int, payload: dict, params_view, grad_view):
        from ..core.block_classifier import BlockClassifier
        from ..core.featurize import Featurizer
        from ..core.hierarchical import HierarchicalEncoder

        config = payload["config"]
        encoder = HierarchicalEncoder(config)
        featurizer = Featurizer(payload["tokenizer"], config)
        self.model = BlockClassifier(
            encoder,
            featurizer,
            payload["scheme"],
            lstm_hidden=payload["lstm_hidden"],
        )
        self.documents = payload["documents"]
        self.labels = payload["labels"]
        super().__init__(
            worker_id, params_view, grad_view,
            self.model.parameters(), payload.get("layout"),
        )

    def task_grad(self, payload: dict) -> dict:
        """Gradient of ``shard_mean_loss * shard_size`` into the slab."""
        from ..core.batching import collate_documents, collate_labels

        indices = payload["indices"]
        self.refresh()
        if not indices:
            self.publish_zeros()
            return {"loss": 0.0, "weight": 0.0, "cache_hit_rate": 0.0}
        features = [
            self.model.featurizer.featurize(self.documents[i]) for i in indices
        ]
        batch = collate_documents(features)
        labels = collate_labels(features, [self.labels[i] for i in indices])
        self.model.train()
        loss = self.model.loss_batch(batch, labels)
        self.zero_grads()
        (loss * float(len(indices))).backward()
        self.publish_grads()
        cache = self.model.featurizer.cache
        return {
            "loss": float(loss.data),
            "weight": float(len(indices)),
            "cache_hit_rate": cache.hit_rate if cache is not None else 0.0,
        }


def init_block_worker(worker_id: int, payload: dict, params_view, grad_view):
    return BlockWorkerContext(worker_id, payload, params_view, grad_view)


# ----------------------------------------------------------------------
# Pre-training (two-phase: forward/gather, then backward on surrogate)
# ----------------------------------------------------------------------
class PretrainWorkerContext(_GradContext):
    """Shard forward + surrogate backward for :class:`~repro.core.Pretrainer`.

    The SCL objective pools masked slots across the whole effective batch,
    so a shard cannot finish its own backward: ``task_forward`` keeps the
    shard's graph alive (predicted/fused slot rows plus the shard-local
    MLLM/DNSP loss terms) and ships the row *values*; the parent computes
    the global InfoNCE and sends back per-row gradients, and
    ``task_backward`` backprops the exact-chain-rule surrogate::

        (P · G_P).sum() + (F · G_F).sum()
          + mllm_scale * D_local * wp_mean + dnsp_scale * C_local * ns_mean

    where the parent picks ``mllm_scale = λ_wp / D_global`` (and the DNSP
    analogue), so the summed worker slabs equal the gradient of the
    single-process Eq. 7 total over the full batch.
    """

    def __init__(self, worker_id: int, payload: dict, params_view, grad_view):
        from ..core.featurize import Featurizer
        from ..core.hierarchical import HierarchicalEncoder
        from ..core.pretrain import Pretrainer

        config = payload["config"]
        encoder = HierarchicalEncoder(config)
        featurizer = Featurizer(payload["tokenizer"], config)
        self.pretrainer = Pretrainer(
            encoder,
            featurizer,
            objectives=payload["objectives"],
            seed=payload["seed"],
            dynamic_sentence_masking=payload["dynamic"],
        )
        self.seed = payload["seed"]
        self.dynamic = payload["dynamic"]
        self.documents = payload["documents"]
        self._pending: Optional[dict] = None
        super().__init__(
            worker_id, params_view, grad_view,
            encoder.parameters() + self.pretrainer.heads.parameters(),
            payload.get("layout"),
        )

    def task_forward(self, payload: dict) -> dict:
        from ..core.batching import collate_documents

        indices = payload["indices"]
        step = payload["step"]
        self.refresh()
        self._pending = {}
        result: Dict[str, object] = {
            "documents": len(indices),
            "predicted": None,
            "targets": None,
            "mllm": None,
            "mllm_docs": 0,
            "dnsp": None,
            "dnsp_docs": 0,
        }
        if not indices:
            return result
        pretrainer = self.pretrainer
        config = pretrainer.config
        vocab = pretrainer.featurizer.tokenizer.vocab
        features = [
            pretrainer.featurizer.featurize(self.documents[i]) for i in indices
        ]
        draws = draw_documents(
            features, indices, step, self.seed, config,
            vocab.mask_id, len(vocab), pretrainer._random_token_floor,
            dynamic=self.dynamic,
        )
        batch = collate_documents(features)
        slots, anchors, corruption = assemble_batch_randomness(batch, draws)
        pretrainer.encoder.train()
        objectives = pretrainer.objectives

        if (objectives.scl or objectives.dnsp) and slots is not None:
            encoded = pretrainer.encoder.encode_batch_pretrain(
                batch, mask_slots=slots
            )
            if objectives.scl:
                rows, cols = np.nonzero(slots)
                predicted = encoded.contextual[rows, cols]
                targets = encoded.fused[rows, cols]
                self._pending["scl"] = (predicted, targets)
                result["predicted"] = np.array(predicted.data, copy=True)
                result["targets"] = np.array(targets.data, copy=True)
            if objectives.dnsp:
                term = pretrainer.dnsp_loss_batch(
                    encoded.contextual, batch.lengths, anchors=anchors
                )
                if term is not None:
                    contributing = sum(
                        1 for a in anchors if a is not None and len(a)
                    )
                    self._pending["dnsp"] = (term, contributing)
                    result["dnsp"] = float(term.data)
                    result["dnsp_docs"] = contributing

        if objectives.wmp:
            term = pretrainer.mllm_loss_batch(batch, corruption=corruption)
            if term is not None:
                selected = corruption[1]
                contributing = 0
                offset = 0
                for doc_features in batch.features:
                    m = doc_features.num_sentences
                    if selected[offset : offset + m].any():
                        contributing += 1
                    offset += m
                self._pending["mllm"] = (term, contributing)
                result["mllm"] = float(term.data)
                result["mllm_docs"] = contributing

        cache = pretrainer.featurizer.cache
        result["cache_hit_rate"] = cache.hit_rate if cache is not None else 0.0
        return result

    def task_backward(self, payload: dict) -> dict:
        pending = self._pending
        if pending is None:
            raise RuntimeError("task_backward without a pending forward")
        self._pending = None
        total: Optional[Tensor] = None

        def add(term: Optional[Tensor]):
            nonlocal total
            if term is not None:
                total = term if total is None else total + term

        g_pred = payload.get("g_pred")
        if "scl" in pending and g_pred is not None and g_pred.size:
            predicted, targets = pending["scl"]
            add(
                (predicted * Tensor(g_pred)).sum()
                + (targets * Tensor(payload["g_tgt"])).sum()
            )
        if "mllm" in pending and payload.get("mllm_scale"):
            term, contributing = pending["mllm"]
            add(term * (payload["mllm_scale"] * contributing))
        if "dnsp" in pending and payload.get("dnsp_scale"):
            term, contributing = pending["dnsp"]
            add(term * (payload["dnsp_scale"] * contributing))

        self.zero_grads()
        if total is not None:
            total.backward()
            self.publish_grads()
        else:
            self.publish_zeros()
        return {}


def init_pretrain_worker(worker_id: int, payload: dict, params_view, grad_view):
    return PretrainWorkerContext(worker_id, payload, params_view, grad_view)


# ----------------------------------------------------------------------
# NER self-training
# ----------------------------------------------------------------------
class NerWorkerContext(_GradContext):
    """Shard gradients (supervised + KL) for :class:`~repro.ner.SelfTrainer`.

    One replica serves both roles of Algorithm 2: whichever parameters the
    parent broadcasts before a task (teacher for ``task_frequency``,
    student for the gradient tasks) are the parameters the task runs with.
    """

    def __init__(self, worker_id: int, payload: dict, params_view, grad_view):
        from ..ner.model import NerTagger

        self.model = NerTagger(
            payload["config"], payload["tokenizer"], payload["scheme"]
        )
        self.examples = payload["examples"]
        super().__init__(
            worker_id, params_view, grad_view,
            self.model.parameters(), payload.get("layout"),
        )

    def task_grad(self, payload: dict) -> dict:
        """Gradient of ``token_mean_loss * shard_tokens`` into the slab."""
        indices = payload["indices"]
        self.refresh()
        if not indices:
            self.publish_zeros()
            return {"loss": 0.0, "weight": 0.0}
        features = self.model.featurizer.featurize(
            [self.examples[i] for i in indices]
        )
        self.model.train()
        loss = self.model.loss(features)
        weight = float(features.word_mask.sum())
        self.zero_grads()
        (loss * weight).backward()
        self.publish_grads()
        return {"loss": float(loss.data), "weight": weight}

    def task_kl_grad(self, payload: dict) -> dict:
        """KL distillation gradient against parent-computed soft labels.

        ``targets``/``mask`` rows are the parent's global-batch slices for
        this shard; trimming their word axis to the shard's featurised
        extent is lossless because the dropped columns are padding
        (mask 0) for every shard row.
        """
        from ..nn.functional import kl_div_loss

        indices = payload["indices"]
        self.refresh()
        if not indices:
            self.publish_zeros()
            return {"loss": 0.0, "weight": 0.0}
        features = self.model.featurizer.featurize(
            [self.examples[i] for i in indices]
        )
        width = features.word_mask.shape[1]
        targets = payload["targets"][:, :width]
        mask = payload["mask"][:, :width]
        weight = float(mask.sum())
        if weight == 0.0:
            self.publish_zeros()
            return {"loss": 0.0, "weight": 0.0}
        self.model.train()
        loss = kl_div_loss(self.model.logits(features), targets, mask=mask)
        self.zero_grads()
        (loss * weight).backward()
        self.publish_grads()
        return {"loss": float(loss.data), "weight": weight}

    def task_frequency(self, payload: dict) -> np.ndarray:
        """Per-example masked probability sums under the broadcast teacher.

        Returns an ``(shard_size, C)`` array; the parent stacks shards in
        global order and sums once, so Eq. 9's ``p_c`` is bit-identical
        for every worker count.
        """
        indices = payload["indices"]
        chunk = payload.get("chunk", 64)
        self.refresh()
        num_labels = self.model.scheme.num_labels
        if not indices:
            return np.zeros((0, num_labels))
        self.model.eval()
        parts: List[np.ndarray] = []
        for start in range(0, len(indices), chunk):
            batch = [self.examples[i] for i in indices[start : start + chunk]]
            probs = self.model.predict_probs(batch)
            features = self.model.featurizer.featurize(batch)
            masked = probs * features.word_mask[..., None]
            parts.append(masked.sum(axis=1))
        return np.concatenate(parts, axis=0)


def init_ner_worker(worker_id: int, payload: dict, params_view, grad_view):
    return NerWorkerContext(worker_id, payload, params_view, grad_view)


# ----------------------------------------------------------------------
# Corpus generation / featurization (no gradients, no slabs)
# ----------------------------------------------------------------------
class CorpusWorkerContext:
    """Generates documents by corpus index (see ``ResumeGenerator.generate_at``)."""

    def __init__(self, worker_id: int, payload: dict):
        self.worker_id = worker_id
        self.generator = payload["generator"]

    def task_generate(self, payload: dict) -> list:
        prefix = payload.get("prefix", "resume")
        return [self.generator.generate_at(i, prefix) for i in payload["indices"]]


def init_corpus_worker(worker_id: int, payload: dict, params_view, grad_view):
    return CorpusWorkerContext(worker_id, payload)


class FeaturizeWorkerContext:
    """Featurizes a document shard through a worker-local FeatureCache."""

    def __init__(self, worker_id: int, payload: dict):
        from ..core.featurize import Featurizer

        self.worker_id = worker_id
        self.documents = payload["documents"]
        self.featurizer = Featurizer(
            payload["tokenizer"],
            payload["config"],
            cache_size=payload.get("cache_size", 256),
        )

    def task_featurize(self, payload: dict) -> dict:
        features = self.featurizer.featurize_many(
            [self.documents[i] for i in payload["indices"]],
            repeats=payload.get("repeats", 1),
        )
        cache = self.featurizer.cache
        return {
            "features": features,
            "cache": cache.info() if cache is not None else None,
        }


def init_featurize_worker(worker_id: int, payload: dict, params_view, grad_view):
    return FeaturizeWorkerContext(worker_id, payload)


# ----------------------------------------------------------------------
# Probe (tests)
# ----------------------------------------------------------------------
class ProbeWorkerContext:
    """Minimal context for exercising the pool machinery in tests."""

    def __init__(self, worker_id: int, payload: dict, grad_view):
        self.worker_id = worker_id
        self._grad_view = grad_view

    def task_echo(self, payload: dict) -> dict:
        return {"worker": self.worker_id, "payload": payload}

    def task_pid(self, payload: dict) -> int:
        return os.getpid()

    def task_blas(self, payload: dict) -> dict:
        return blas_thread_counts()

    def task_fill(self, payload: dict) -> float:
        """Fill this worker's grad slab with a constant (reduce tests)."""
        self._grad_view[:] = payload["value"]
        return payload["value"]

    def task_traced(self, payload: dict) -> float:
        """Emit a span + counter under the worker's child telemetry session
        (relay round-trip tests assert they surface in the parent log)."""
        from .. import obs

        repeats = int(payload.get("repeats", 2000))
        with obs.trace("probe.work", repeats=repeats):
            total = float(sum(i * i for i in range(repeats)))
        telemetry = obs.get_telemetry()
        if telemetry is not None:
            telemetry.metrics.counter("probe.tasks").inc()
        return total

    def task_fail(self, payload: dict):
        raise RuntimeError(payload.get("message", "probe failure"))

    def task_die(self, payload: dict):
        """Exit abruptly without reporting (dead-worker detection tests)."""
        os._exit(int(payload.get("code", 3)))


def init_probe_worker(worker_id: int, payload: dict, params_view, grad_view):
    return ProbeWorkerContext(worker_id, payload, grad_view)
