"""Parallel synthetic-corpus generation and featurization.

Both outer loops are embarrassingly parallel once the randomness is
index-addressed: :meth:`ResumeGenerator.generate_at` seeds a fresh
generator from ``[seed, index]`` per document, so any worker can produce
any document — the output is identical for every worker count (and the
index set can be sharded contiguously without re-seeding anything).

Featurization runs each document shard through a worker-local
:class:`~repro.core.featurize.FeatureCache` (caches never cross process
boundaries — see the fork-guard notes on ``FeatureCache``) and reports
per-shard hit rates as ``parallel.feature_cache.hit_rate{worker=}``.
"""

from __future__ import annotations

from typing import List, Sequence

from .. import obs
from .pool import make_runner
from .sharding import shard_evenly, shard_imbalance
from .workers import init_corpus_worker, init_featurize_worker

__all__ = ["generate_documents", "featurize_documents"]


def _publish_imbalance(shards) -> None:
    telemetry = obs.get_telemetry()
    if telemetry is not None:
        telemetry.metrics.gauge("parallel.shard_imbalance").set(
            shard_imbalance(shards)
        )


def generate_documents(
    generator, count: int, prefix: str = "resume", num_workers: int = 1
) -> list:
    """Generate ``count`` documents across ``num_workers`` processes.

    Uses the index-seeded discipline (``generator.generate_at``), so the
    result is deterministic in ``(seed, count, prefix)`` and identical
    for every worker count.  Documents return in index order.
    """
    shards = shard_evenly(list(range(count)), num_workers)
    _publish_imbalance(shards)
    with obs.trace("parallel.generate", documents=count, workers=num_workers):
        with make_runner(
            num_workers, init_corpus_worker, {"generator": generator}
        ) as runner:
            results = runner.run(
                "generate",
                [{"indices": shard, "prefix": prefix} for shard in shards],
            )
    return [document for shard in results for document in shard]


def featurize_documents(
    documents: Sequence,
    tokenizer,
    config,
    num_workers: int = 1,
    cache_size: int = 256,
    repeats: int = 1,
) -> List[object]:
    """Featurize ``documents`` across worker-local feature caches.

    Returns features in document order.  ``repeats`` re-runs each shard
    through its cache that many times (benchmarks use it to measure
    warm-cache throughput); the extra passes are cache hits, visible in
    the per-worker hit-rate gauges.
    """
    shards = shard_evenly(list(range(len(documents))), num_workers)
    _publish_imbalance(shards)
    payload = {
        "documents": list(documents),
        "tokenizer": tokenizer,
        "config": config,
        "cache_size": cache_size,
    }
    with obs.trace(
        "parallel.featurize", documents=len(documents), workers=num_workers
    ):
        with make_runner(num_workers, init_featurize_worker, payload) as runner:
            results = runner.run(
                "featurize",
                [{"indices": shard, "repeats": repeats} for shard in shards],
            )
    telemetry = obs.get_telemetry()
    if telemetry is not None:
        gauge = telemetry.metrics.gauge("parallel.feature_cache.hit_rate")
        for worker_id, result in enumerate(results):
            if result["cache"] is not None:
                gauge.set(result["cache"]["hit_rate"], worker=str(worker_id))
    return [features for result in results for features in result["features"]]
