"""``repro.eval`` — the paper's evaluation metrics and reporting.

* Area-based per-tag P/R/F1 for block classification (Eq. 13–15).
* Entity-level IOB P/R/F1 for information extraction (Eq. 16–18).
* Inference timing (Time/Resume) and paper-style table formatting.
"""

from .confusion import confusion_matrix, format_confusion, most_confused_pairs
from .area_metrics import AreaEvaluation, area_prf_by_tag, area_prf_micro
from .reporting import format_prf_table, format_stats_table, format_table
from .seq_metrics import PrfScore, entity_prf, entity_prf_by_tag, token_accuracy
from .timing import LatencyStats, StageProfile, measure_latency, time_per_resume

__all__ = [
    "PrfScore",
    "entity_prf",
    "entity_prf_by_tag",
    "token_accuracy",
    "AreaEvaluation",
    "area_prf_by_tag",
    "area_prf_micro",
    "time_per_resume",
    "LatencyStats",
    "StageProfile",
    "measure_latency",
    "format_table",
    "format_prf_table",
    "format_stats_table",
    "confusion_matrix",
    "format_confusion",
    "most_confused_pairs",
]
