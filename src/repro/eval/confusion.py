"""Confusion-matrix analysis for block classification errors."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .reporting import format_table

__all__ = ["confusion_matrix", "format_confusion", "most_confused_pairs"]


def confusion_matrix(
    gold: Sequence[Sequence[Optional[str]]],
    predicted: Sequence[Sequence[Optional[str]]],
    tags: Sequence[str],
) -> np.ndarray:
    """Token-count confusion matrix; rows = gold, columns = predicted.

    The last row/column aggregates 'O'/untagged.
    """
    index = {tag: i for i, tag in enumerate(tags)}
    outside = len(tags)
    matrix = np.zeros((len(tags) + 1, len(tags) + 1), dtype=np.int64)
    for gold_tags, pred_tags in zip(gold, predicted):
        if len(gold_tags) != len(pred_tags):
            raise ValueError("gold/predicted length mismatch")
        for g, p in zip(gold_tags, pred_tags):
            gi = index.get(g, outside) if g else outside
            pi = index.get(p, outside) if p else outside
            matrix[gi, pi] += 1
    return matrix


def format_confusion(matrix: np.ndarray, tags: Sequence[str]) -> str:
    """Render the confusion matrix as an ASCII table."""
    labels = list(tags) + ["O"]
    if matrix.shape != (len(labels), len(labels)):
        raise ValueError("matrix does not match tag list")
    rows = [
        [labels[i]] + [str(int(v)) for v in matrix[i]]
        for i in range(len(labels))
    ]
    return format_table(["gold \\ pred"] + labels, rows)


def most_confused_pairs(
    matrix: np.ndarray, tags: Sequence[str], top: int = 5
) -> List[Tuple[str, str, int]]:
    """The largest off-diagonal cells as ``(gold, predicted, count)``."""
    labels = list(tags) + ["O"]
    pairs: List[Tuple[str, str, int]] = []
    for i, gold_tag in enumerate(labels):
        for j, pred_tag in enumerate(labels):
            if i != j and matrix[i, j] > 0:
                pairs.append((gold_tag, pred_tag, int(matrix[i, j])))
    pairs.sort(key=lambda item: -item[2])
    return pairs[:top]
