"""Entity-level IOB evaluation (Eq. 16–18, used by Table IV/V).

Precision = true-positive entity predictions / all predicted entities;
recall = true positives / all gold entities; an entity counts as correct
only when its span boundaries *and* tag both match (the standard CoNLL
criterion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..docmodel.labels import ENTITY_SCHEME, IobScheme, iob_to_spans

__all__ = ["PrfScore", "entity_prf", "entity_prf_by_tag", "token_accuracy"]


@dataclass
class PrfScore:
    """Precision/recall/F1 with the underlying counts."""

    precision: float
    recall: float
    f1: float
    true_positives: int = 0
    predicted: int = 0
    gold: int = 0

    @classmethod
    def from_counts(cls, tp: int, predicted: int, gold: int) -> "PrfScore":
        precision = tp / predicted if predicted else 0.0
        recall = tp / gold if gold else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        return cls(precision, recall, f1, tp, predicted, gold)


def _spans(labels: Sequence[str], scheme: IobScheme):
    ids = [
        scheme.label_id(label) if label in scheme.labels else scheme.outside_id
        for label in labels
    ]
    return set(iob_to_spans(ids, scheme))


def entity_prf(
    gold: Sequence[Sequence[str]],
    predicted: Sequence[Sequence[str]],
    scheme: IobScheme = ENTITY_SCHEME,
) -> PrfScore:
    """Micro-averaged entity P/R/F1 over a corpus of label sequences."""
    if len(gold) != len(predicted):
        raise ValueError("gold and predicted corpora differ in size")
    tp = n_pred = n_gold = 0
    for gold_labels, pred_labels in zip(gold, predicted):
        gold_spans = _spans(gold_labels, scheme)
        pred_spans = _spans(pred_labels, scheme)
        tp += len(gold_spans & pred_spans)
        n_pred += len(pred_spans)
        n_gold += len(gold_spans)
    return PrfScore.from_counts(tp, n_pred, n_gold)


def entity_prf_by_tag(
    gold: Sequence[Sequence[str]],
    predicted: Sequence[Sequence[str]],
    scheme: IobScheme = ENTITY_SCHEME,
) -> Dict[str, PrfScore]:
    """Per-tag entity P/R/F1 (the rows of Table IV)."""
    if len(gold) != len(predicted):
        raise ValueError("gold and predicted corpora differ in size")
    counts: Dict[str, List[int]] = {}
    for gold_labels, pred_labels in zip(gold, predicted):
        gold_spans = _spans(gold_labels, scheme)
        pred_spans = _spans(pred_labels, scheme)
        tags = {tag for *_, tag in gold_spans | pred_spans}
        for tag in tags:
            g = {s for s in gold_spans if s[2] == tag}
            p = {s for s in pred_spans if s[2] == tag}
            entry = counts.setdefault(tag, [0, 0, 0])
            entry[0] += len(g & p)
            entry[1] += len(p)
            entry[2] += len(g)
    return {
        tag: PrfScore.from_counts(tp, n_pred, n_gold)
        for tag, (tp, n_pred, n_gold) in sorted(counts.items())
    }


def token_accuracy(
    gold: Sequence[Sequence[str]], predicted: Sequence[Sequence[str]]
) -> float:
    """Plain per-token label accuracy (used for early stopping)."""
    correct = total = 0
    for gold_labels, pred_labels in zip(gold, predicted):
        if len(gold_labels) != len(pred_labels):
            raise ValueError("sequence length mismatch")
        correct += sum(1 for g, p in zip(gold_labels, pred_labels) if g == p)
        total += len(gold_labels)
    return correct / total if total else 0.0
