"""Area-based layout-analysis metrics (Eq. 13–15, used by Table II).

Following DocBank's document-layout evaluation, block classification is
scored by *token area*: for each semantic tag, precision is the area of
correctly-tagged tokens over the area of all tokens the model assigned that
tag, recall the same over the gold area.  Because every token carries its
bounding box, this weights big tokens (titles) more than small ones —
exactly the paper's choice of metric for 2-D documents.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..docmodel.document import ResumeDocument
from .seq_metrics import PrfScore

__all__ = ["area_prf_by_tag", "area_prf_micro", "AreaEvaluation"]


def _tag_areas(
    documents: Sequence[ResumeDocument],
    gold: Sequence[Sequence[Optional[str]]],
    predicted: Sequence[Sequence[Optional[str]]],
) -> Dict[str, List[float]]:
    """Accumulate (intersection, predicted, gold) areas per tag."""
    if not (len(documents) == len(gold) == len(predicted)):
        raise ValueError("documents, gold and predictions differ in size")
    areas: Dict[str, List[float]] = {}
    for document, gold_tags, pred_tags in zip(documents, gold, predicted):
        tokens = document.tokens()
        if not (len(tokens) == len(gold_tags) == len(pred_tags)):
            raise ValueError(
                f"token/label misalignment in {document.doc_id}: "
                f"{len(tokens)} tokens, {len(gold_tags)} gold, {len(pred_tags)} predicted"
            )
        for token, gold_tag, pred_tag in zip(tokens, gold_tags, pred_tags):
            area = token.bbox.area
            for tag in {gold_tag, pred_tag}:
                if tag in (None, "O"):
                    continue
                entry = areas.setdefault(tag, [0.0, 0.0, 0.0])
                if gold_tag == tag and pred_tag == tag:
                    entry[0] += area
                if pred_tag == tag:
                    entry[1] += area
                if gold_tag == tag:
                    entry[2] += area
    return areas


def _score(intersection: float, predicted: float, gold: float) -> PrfScore:
    precision = intersection / predicted if predicted else 0.0
    recall = intersection / gold if gold else 0.0
    f1 = (
        2 * precision * recall / (precision + recall) if precision + recall else 0.0
    )
    return PrfScore(precision, recall, f1)


def area_prf_by_tag(
    documents: Sequence[ResumeDocument],
    gold: Sequence[Sequence[Optional[str]]],
    predicted: Sequence[Sequence[Optional[str]]],
) -> Dict[str, PrfScore]:
    """Per-tag area P/R/F1 — the rows of Table II.

    ``gold`` and ``predicted`` are per-document token-level tag sequences
    (bare tags, ``None``/'O' meaning untagged).
    """
    areas = _tag_areas(documents, gold, predicted)
    return {
        tag: _score(*entry) for tag, entry in sorted(areas.items())
    }


def area_prf_micro(
    documents: Sequence[ResumeDocument],
    gold: Sequence[Sequence[Optional[str]]],
    predicted: Sequence[Sequence[Optional[str]]],
) -> PrfScore:
    """Micro-average over all tags (summed areas)."""
    areas = _tag_areas(documents, gold, predicted)
    sums = [0.0, 0.0, 0.0]
    for entry in areas.values():
        for i in range(3):
            sums[i] += entry[i]
    return _score(*sums)


class AreaEvaluation:
    """Convenience wrapper: evaluate a block classifier on documents."""

    def __init__(self, documents: Sequence[ResumeDocument]):
        self.documents = list(documents)
        self.gold = [d.token_block_tags() for d in self.documents]

    def evaluate(self, predictor) -> Dict[str, PrfScore]:
        """``predictor`` maps a document to token-level bare tags."""
        predicted = [predictor.predict_token_tags(d) for d in self.documents]
        return area_prf_by_tag(self.documents, self.gold, predicted)

    def evaluate_micro(self, predictor) -> PrfScore:
        predicted = [predictor.predict_token_tags(d) for d in self.documents]
        return area_prf_micro(self.documents, self.gold, predicted)
