"""Inference timing and profiling (the Time/Resume row of Table II).

Three layers of measurement:

* :func:`time_per_resume` — the original scalar: mean seconds per document.
* :func:`measure_latency` + :class:`LatencyStats` — distributional view
  (p50/p95 per-unit latency, docs/sec throughput) over repeated passes.
* :class:`StageProfile` — wall-time breakdown across named pipeline stages
  (``featurize`` / ``encode`` / ``decode``), fed to
  :meth:`repro.core.BlockClassifier.predict_batch` via its ``profile``
  argument.  Since the :mod:`repro.obs` telemetry layer landed this is a
  deprecated shim over :class:`repro.obs.Tracer`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..docmodel.document import ResumeDocument

__all__ = ["LatencyStats", "StageProfile", "measure_latency", "time_per_resume"]


def time_per_resume(
    predict: Callable[[ResumeDocument], object],
    documents: Sequence[ResumeDocument],
    repeats: int = 1,
    warmup: int = 1,
) -> float:
    """Average wall-clock seconds to process one resume.

    Runs ``warmup`` unmeasured passes first (BLAS/page-cache warmup), then
    times ``repeats`` passes over the document list.
    """
    if not documents:
        raise ValueError("need at least one document to time")
    for _ in range(warmup):
        predict(documents[0])
    started = time.perf_counter()
    for _ in range(repeats):
        for document in documents:
            predict(document)
    elapsed = time.perf_counter() - started
    return elapsed / (repeats * len(documents))


@dataclass
class LatencyStats:
    """Summary statistics over per-unit latency samples (seconds)."""

    count: int
    total_seconds: float
    mean: float
    p50: float
    p95: float
    throughput: float  # units per second, over the whole measured span

    @classmethod
    def from_samples(
        cls, samples: Sequence[float], units: Optional[Sequence[int]] = None
    ) -> "LatencyStats":
        """Build from raw wall-time samples.

        ``samples[i]`` is the wall time of one measured call; ``units[i]``
        (default 1 each) is how many documents that call processed.  The
        percentiles are over per-unit latency — each sample normalised by
        its unit count — so batched and per-document runs are comparable.
        """
        if not samples:
            raise ValueError("need at least one timing sample")
        samples = np.asarray(samples, dtype=np.float64)
        if units is None:
            units = np.ones(len(samples), dtype=np.float64)
        else:
            units = np.asarray(units, dtype=np.float64)
            if units.shape != samples.shape:
                raise ValueError("units must align with samples")
            if (units <= 0).any():
                raise ValueError("unit counts must be positive")
        per_unit = samples / units
        total = float(samples.sum())
        total_units = float(units.sum())
        return cls(
            count=len(samples),
            total_seconds=total,
            mean=float(per_unit.mean()),
            p50=float(np.percentile(per_unit, 50)),
            p95=float(np.percentile(per_unit, 95)),
            throughput=total_units / total if total > 0 else float("inf"),
        )

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean,
            "p50_seconds": self.p50,
            "p95_seconds": self.p95,
            "throughput_per_second": self.throughput,
        }


class StageProfile:
    """Accumulates wall time per named pipeline stage.

    .. deprecated::
        ``StageProfile`` is now a thin shim over :class:`repro.obs.Tracer`
        — there is one tracing implementation in the codebase.  New code
        should use :func:`repro.obs.trace` (or a :class:`repro.obs.Tracer`
        directly), which additionally records span nesting, attributes and
        exception status.  The shim keeps the historical surface
        (``stage()`` / ``seconds`` / ``calls`` / ``total_seconds`` /
        ``breakdown()``) for existing callers.

    Any code can wrap a region with ``with profile.stage("encode"): ...``;
    repeated entries into the same stage accumulate.  The object satisfies
    the duck-typed ``profile`` argument of
    :meth:`repro.core.BlockClassifier.predict_batch`.
    """

    def __init__(self) -> None:
        from ..obs import Tracer

        self._tracer = Tracer()

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        with self._tracer.span(name):
            yield

    @property
    def seconds(self) -> Dict[str, float]:
        return self._tracer.seconds_by_name()

    @property
    def calls(self) -> Dict[str, int]:
        return self._tracer.calls_by_name()

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def breakdown(self) -> Dict[str, Dict[str, float]]:
        """Per-stage seconds, call counts, and share of the total."""
        return self._tracer.breakdown()


def measure_latency(
    fn: Callable[[Sequence[ResumeDocument]], object],
    inputs: Sequence[Sequence[ResumeDocument]],
    repeats: int = 1,
    warmup: int = 1,
    unit_counts: Optional[Sequence[int]] = None,
) -> LatencyStats:
    """Time ``fn`` over each element of ``inputs``, ``repeats`` times.

    ``inputs`` is a list of call arguments (e.g. one document, or one batch
    of documents); ``unit_counts[i]`` says how many documents ``inputs[i]``
    carries (default 1).  Returns per-document latency percentiles and
    overall documents/second throughput.
    """
    if not inputs:
        raise ValueError("need at least one input to time")
    if unit_counts is not None and len(unit_counts) != len(inputs):
        raise ValueError("unit_counts must align with inputs")
    for _ in range(warmup):
        fn(inputs[0])
    samples: List[float] = []
    units: List[int] = []
    for _ in range(repeats):
        for index, item in enumerate(inputs):
            started = time.perf_counter()
            fn(item)
            samples.append(time.perf_counter() - started)
            units.append(1 if unit_counts is None else unit_counts[index])
    return LatencyStats.from_samples(samples, units)
