"""Inference timing (the Time/Resume row of Table II)."""

from __future__ import annotations

import time
from typing import Callable, Sequence

from ..docmodel.document import ResumeDocument

__all__ = ["time_per_resume"]


def time_per_resume(
    predict: Callable[[ResumeDocument], object],
    documents: Sequence[ResumeDocument],
    repeats: int = 1,
    warmup: int = 1,
) -> float:
    """Average wall-clock seconds to process one resume.

    Runs ``warmup`` unmeasured passes first (BLAS/page-cache warmup), then
    times ``repeats`` passes over the document list.
    """
    if not documents:
        raise ValueError("need at least one document to time")
    for _ in range(warmup):
        predict(documents[0])
    started = time.perf_counter()
    for _ in range(repeats):
        for document in documents:
            predict(document)
    elapsed = time.perf_counter() - started
    return elapsed / (repeats * len(documents))
