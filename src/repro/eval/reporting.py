"""ASCII table rendering for benchmark reports (paper-style tables)."""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from .seq_metrics import PrfScore

__all__ = ["format_table", "format_prf_table", "format_stats_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: Optional[str] = None,
) -> str:
    """Render a plain fixed-width table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def line(cells):
        return " | ".join(str(c).ljust(w) for c, w in zip(cells, widths))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("-+-".join("-" * w for w in widths))
    parts.extend(line(row) for row in rows)
    return "\n".join(parts)


def format_prf_table(
    results: Mapping[str, Mapping[str, PrfScore]],
    tags: Sequence[str],
    title: Optional[str] = None,
    extra_rows: Optional[Mapping[str, Mapping[str, str]]] = None,
) -> str:
    """Paper-style table: rows = tags, columns = methods.

    Each cell shows ``F1 (R / P)`` in percent, matching Tables II-V.
    ``extra_rows`` appends rows such as Time/Resume keyed the same way.
    """
    methods = list(results)
    headers = ["Tag"] + methods
    rows: List[List[str]] = []
    for tag in tags:
        row = [tag]
        best = None
        cells = []
        for method in methods:
            score = results[method].get(tag)
            if score is None:
                cells.append("-")
                continue
            cells.append(
                f"{score.f1 * 100:.2f} ({score.recall * 100:.2f} / "
                f"{score.precision * 100:.2f})"
            )
            if best is None or score.f1 > best:
                best = score.f1
        rows.append(row + cells)
    if extra_rows:
        for name, values in extra_rows.items():
            rows.append([name] + [values.get(m, "-") for m in methods])
    return format_table(headers, rows, title=title)


def format_stats_table(
    stats: Mapping[str, Mapping[str, object]], title: Optional[str] = None
) -> str:
    """Table-I/VI style statistics: rows = metrics, columns = splits."""
    splits = list(stats)
    metrics: List[str] = []
    for split in splits:
        for metric in stats[split]:
            if metric not in metrics:
                metrics.append(metric)
    rows = []
    for metric in metrics:
        row = [metric]
        for split in splits:
            value = stats[split].get(metric, "-")
            row.append(f"{value:,.2f}" if isinstance(value, float) else f"{value:,}")
        rows.append(row)
    return format_table(["Metric"] + splits, rows, title=title)
