"""Self-distillation based self-training (Section IV-B4–5, Algorithm 2).

1. Train a teacher on the distantly supervised set with early stopping.
2. Initialise a student with the teacher's parameters.
3. Each iteration: the teacher labels a minibatch; labels become
   **soft pseudo-labels** with squared re-weighting (Eq. 9); optionally only
   **high-confidence tokens** (Eq. 11, threshold γ) contribute; the student
   minimises the KL loss (Eq. 10 / Eq. 12).
4. When the student improves on the validation set, the teacher is
   re-initialised from the student — the virtuous cycle.

The ablation toggles reproduce Table V: ``use_confidence_selection=False``
is *w/o HCS*, ``use_soft_labels=False`` is *w/o SL*, and
``use_self_distillation=False`` (teacher only, early-stopped) is *w/o SD*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import obs
from ..core.training import GradAccumulator
from ..corpus.datasets import NerExample
from ..eval.seq_metrics import entity_prf
from ..nn import AdamW, ParamGroup, clip_grad_norm
from ..nn.functional import kl_div_loss
from .model import NerTagger

__all__ = ["SelfTrainConfig", "soft_pseudo_labels", "confidence_mask", "SelfTrainer"]


@dataclass
class SelfTrainConfig:
    """Knobs of Algorithm 2 and its ablations."""

    teacher_epochs: int = 8
    teacher_patience: int = 2
    iterations: int = 12           # T of Algorithm 2
    batch_size: int = 16
    #: Mini-batches accumulated into each teacher optimizer step; raises
    #: the effective batch to ``batch_size * grad_accumulation`` without
    #: growing the padded forward pass.
    grad_accumulation: int = 1
    learning_rate: float = 1e-3
    #: Student steps use a gentler rate than supervised teacher training —
    #: KL fine-tuning against the teacher's own outputs at full rate
    #: destabilises the calibration it is meant to consolidate.  ``None``
    #: falls back to ``learning_rate``.
    student_learning_rate: Optional[float] = None
    weight_decay: float = 0.01
    max_grad_norm: float = 5.0
    gamma: float = 0.8             # high-confidence threshold (Eq. 11)
    use_soft_labels: bool = True       # w/o SL ablation
    use_confidence_selection: bool = True  # w/o HCS ablation
    use_self_distillation: bool = True     # w/o SD ablation
    eval_every: int = 2
    #: ``>= 1`` shards every gradient step (teacher supervision, KL
    #: distillation) and the Eq. 9 frequency sweep across data-parallel
    #: workers (``repro.parallel``); 0 keeps the single-process path.
    num_workers: int = 0


def soft_pseudo_labels(
    probs: np.ndarray,
    word_mask: np.ndarray,
    frequency: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Squared re-weighted soft labels (Eq. 9).

    ``probs``: teacher distributions ``(b, w, C)``.  The unnormalised class
    frequency ``p_c`` sums teacher probabilities over all valid tokens —
    per Eq. 9 over the *whole training set* (pass ``frequency``); the batch
    itself is used as a fallback approximation.  Each distribution is
    re-weighted by ``f^2 / p`` then re-normalised, sharpening towards
    confident classes while boosting rare ones.
    """
    if frequency is None:
        masked = probs * word_mask[..., None]
        frequency = masked.reshape(-1, probs.shape[-1]).sum(axis=0)
    frequency = np.maximum(frequency, 1e-8)
    weighted = probs**2 / frequency
    weighted_sum = weighted.sum(axis=-1, keepdims=True)
    return weighted / np.maximum(weighted_sum, 1e-12)


def confidence_mask(
    soft: np.ndarray, word_mask: np.ndarray, gamma: float
) -> np.ndarray:
    """High-confidence token selection (Eq. 11): keep max_c S > γ."""
    confident = soft.max(axis=-1) > gamma
    return word_mask * confident


def hard_to_onehot(soft: np.ndarray) -> np.ndarray:
    """Collapse soft labels to one-hot (the *w/o SL* ablation)."""
    hard = np.zeros_like(soft)
    idx = soft.argmax(axis=-1)
    rows = np.indices(idx.shape)
    hard[(*rows, idx)] = 1.0
    return hard


class SelfTrainer:
    """Runs Algorithm 2 over a distantly supervised training set."""

    def __init__(
        self,
        model: NerTagger,
        config: Optional[SelfTrainConfig] = None,
        seed: int = 0,
    ):
        self.model = model
        self.config = config or SelfTrainConfig()
        self.rng = np.random.default_rng(seed)
        self.history: List[Dict[str, float]] = []

    # ------------------------------------------------------------------
    def _optimizer(self, model: NerTagger, learning_rate: float = None) -> AdamW:
        return AdamW(
            [
                ParamGroup(
                    model.parameters(),
                    learning_rate or self.config.learning_rate,
                )
            ],
            weight_decay=self.config.weight_decay,
        )

    def _validation_f1(self, model: NerTagger, validation: Sequence[NerExample]) -> float:
        if not validation:
            return 0.0
        predicted = model.predict(validation)
        gold = [e.labels for e in validation]
        return entity_prf(gold, predicted, model.scheme).f1

    # ------------------------------------------------------------------
    def train_teacher(
        self,
        train: Sequence[NerExample],
        validation: Sequence[NerExample],
    ) -> NerTagger:
        """Step 1: supervised training on distant labels with early stopping."""
        if self.config.num_workers:
            return self._train_teacher_parallel(train, validation)
        model = self.model
        engine = GradAccumulator(
            self._optimizer(model),
            model.parameters(),
            max_grad_norm=self.config.max_grad_norm,
            accumulation=self.config.grad_accumulation,
        )
        best_f1 = -1.0
        best_state = None
        bad = 0
        for epoch in range(self.config.teacher_epochs):
            model.train()
            epoch_loss = 0.0
            batches = 0
            for features, _ in model.featurizer.batches(
                train, self.config.batch_size, rng=self.rng
            ):
                loss = model.loss(features)
                # Unit weight keeps grad_accumulation=1 bit-identical to the
                # classic per-batch step; accumulated windows average the
                # micro-batch losses evenly (they are token-means already).
                engine.backward(loss)
                epoch_loss += float(loss.data)
                batches += 1
            engine.flush()
            score = self._validation_f1(model, validation)
            self.history.append(
                {"stage": 0.0, "epoch": float(epoch),
                 "loss": epoch_loss / max(batches, 1), "val_f1": score}
            )
            telemetry = obs.get_telemetry()
            if telemetry is not None:
                telemetry.event(
                    "epoch", phase="ner_teacher", epoch=epoch,
                    loss=epoch_loss / max(batches, 1),
                )
                telemetry.event(
                    "eval", phase="ner_teacher", epoch=epoch, val_f1=score
                )
            if score > best_f1:
                best_f1, bad = score, 0
                best_state = model.state_dict()
            else:
                bad += 1
                if bad >= self.config.teacher_patience:
                    break
        if best_state is not None:
            model.load_state_dict(best_state)
        return model

    # ------------------------------------------------------------------
    # Data-parallel variants (repro.parallel)
    # ------------------------------------------------------------------
    def _worker_payload(self, model: NerTagger, train: Sequence[NerExample]):
        from ..parallel import param_layout

        return {
            "config": model.config,
            "tokenizer": model.featurizer.tokenizer,
            "scheme": model.scheme,
            "examples": list(train),
            "layout": param_layout(model.parameters()),
        }

    def _train_teacher_parallel(
        self,
        train: Sequence[NerExample],
        validation: Sequence[NerExample],
    ) -> NerTagger:
        """Data-parallel :meth:`train_teacher`: sharded token-weighted steps.

        Each mini-batch loss is a token-mean, so shards reduce with their
        valid-token counts as weights — the all-reduced gradient is the
        exact global token-mean gradient for every worker count.
        """
        from ..parallel import (
            DataParallelEngine,
            init_ner_worker,
            make_runner,
            param_size,
        )

        model = self.model
        parameters = model.parameters()
        best_f1 = -1.0
        best_state = None
        bad = 0
        with make_runner(
            self.config.num_workers,
            init_ner_worker,
            self._worker_payload(model, train),
            param_size(parameters),
        ) as runner:
            engine = DataParallelEngine(
                runner,
                self._optimizer(model),
                parameters,
                max_grad_norm=self.config.max_grad_norm,
            )
            for epoch in range(self.config.teacher_epochs):
                order = self.rng.permutation(len(train))
                epoch_loss = 0.0
                batches = 0
                for start in range(0, len(train), self.config.batch_size):
                    chunk = [
                        int(i)
                        for i in order[start : start + self.config.batch_size]
                    ]
                    _, batch_loss = engine.grad_step("grad", chunk)
                    if batch_loss is not None:
                        epoch_loss += batch_loss
                    batches += 1
                score = self._validation_f1(model, validation)
                self.history.append(
                    {"stage": 0.0, "epoch": float(epoch),
                     "loss": epoch_loss / max(batches, 1), "val_f1": score}
                )
                telemetry = obs.get_telemetry()
                if telemetry is not None:
                    telemetry.event(
                        "epoch", phase="ner_teacher", epoch=epoch,
                        loss=epoch_loss / max(batches, 1),
                    )
                    telemetry.event(
                        "eval", phase="ner_teacher", epoch=epoch, val_f1=score
                    )
                if score > best_f1:
                    best_f1, bad = score, 0
                    best_state = model.state_dict()
                else:
                    bad += 1
                    if bad >= self.config.teacher_patience:
                        break
        if best_state is not None:
            model.load_state_dict(best_state)
        return model

    def _self_train_parallel(
        self,
        initial_teacher: NerTagger,
        train: Sequence[NerExample],
        validation: Sequence[NerExample],
    ) -> NerTagger:
        """Data-parallel :meth:`self_train`.

        The teacher side of Algorithm 2 (pseudo-labeling, Eq. 9 soft
        labels, Eq. 11 selection) stays parent-side so the targets are
        global; only the student's KL gradient is sharded.  The Eq. 9
        frequency sweep broadcasts the *teacher* through the parameter
        slab and fans the corpus out across the same workers.
        """
        from ..parallel import (
            DataParallelEngine,
            init_ner_worker,
            make_runner,
            param_size,
        )

        teacher = initial_teacher.clone()
        student = teacher.clone()
        parameters = student.parameters()
        best_f1 = self._validation_f1(student, validation)
        frequency = None
        telemetry = obs.get_telemetry()
        with make_runner(
            self.config.num_workers,
            init_ner_worker,
            self._worker_payload(student, train),
            param_size(parameters),
        ) as runner:
            engine = DataParallelEngine(
                runner,
                self._optimizer(student, self.config.student_learning_rate),
                parameters,
                max_grad_norm=self.config.max_grad_norm,
            )
            for iteration in range(1, self.config.iterations + 1):
                with obs.trace(
                    "self_train.iteration", iteration=iteration,
                    workers=self.config.num_workers,
                ):
                    batch_idx = self.rng.choice(
                        len(train),
                        size=min(self.config.batch_size, len(train)),
                        replace=False,
                    )
                    batch = [train[i] for i in batch_idx]
                    features = student.featurizer.featurize(batch)

                    probs = teacher.predict_probs(batch)
                    if frequency is None:
                        frequency = self._class_frequency(
                            teacher, train, engine=engine
                        )
                    soft = soft_pseudo_labels(
                        probs, features.word_mask, frequency
                    )
                    if self.config.use_soft_labels:
                        targets = soft
                    else:
                        targets = hard_to_onehot(probs)
                    mask = features.word_mask
                    valid_tokens = float(features.word_mask.sum())
                    selection_rate = 1.0
                    if self.config.use_confidence_selection:
                        selected = confidence_mask(
                            soft, mask, self.config.gamma
                        )
                        if selected.sum() == 0:
                            selected = self._top_half_mask(soft, mask)
                        selection_rate = (
                            float(selected.sum()) / valid_tokens
                            if valid_tokens else 0.0
                        )
                        mask = selected

                    engine.broadcast()
                    row_shards = engine.shard(list(range(len(batch))))
                    shards = [
                        [int(batch_idx[row]) for row in rows]
                        for rows in row_shards
                    ]
                    extras = [
                        {"targets": targets[rows], "mask": mask[rows]}
                        for rows in row_shards
                    ]
                    results = engine.dispatch("kl_grad", shards, extras)
                    total_weight = sum(r["weight"] for r in results)
                    loss_value = 0.0
                    if total_weight > 0:
                        engine.apply(total_weight)
                        loss_value = (
                            sum(r["loss"] * r["weight"] for r in results)
                            / total_weight
                        )

                record = {"stage": 1.0, "epoch": float(iteration),
                          "loss": loss_value, "val_f1": best_f1}
                teacher_refreshed = False
                if iteration % self.config.eval_every == 0:
                    score = self._validation_f1(student, validation)
                    record["val_f1"] = score
                    if telemetry is not None:
                        telemetry.event(
                            "eval", phase="self_train", iteration=iteration,
                            val_f1=score,
                        )
                    if score > best_f1:
                        best_f1 = score
                        teacher.load_state_dict(student.state_dict())
                        frequency = None
                        teacher_refreshed = True
                self.history.append(record)
                if telemetry is not None:
                    telemetry.metrics.gauge("self_train.selection_rate").set(
                        selection_rate
                    )
                    telemetry.metrics.counter("self_train.iterations").inc()
                    if teacher_refreshed:
                        telemetry.metrics.counter(
                            "self_train.teacher_refreshes"
                        ).inc()
                    telemetry.event(
                        "step",
                        phase="self_train",
                        step=iteration,
                        losses={"kl": loss_value},
                        selection_rate=selection_rate,
                        selected_tokens=float(mask.sum()),
                        valid_tokens=valid_tokens,
                        teacher_refreshed=teacher_refreshed,
                    )
        return student

    @staticmethod
    def _top_half_mask(soft: np.ndarray, word_mask: np.ndarray) -> np.ndarray:
        """Select the most confident half of the valid tokens."""
        confidence = soft.max(axis=-1)
        valid = word_mask > 0
        if not valid.any():
            return word_mask
        threshold = np.median(confidence[valid])
        return word_mask * (confidence >= threshold)

    # ------------------------------------------------------------------
    def train(
        self,
        train: Sequence[NerExample],
        validation: Sequence[NerExample],
    ) -> NerTagger:
        """Full Algorithm 2; returns the final student (or teacher w/o SD)."""
        teacher = self.train_teacher(train, validation)
        if not self.config.use_self_distillation:
            return teacher
        return self.self_train(teacher, train, validation)

    def self_train(
        self,
        initial_teacher: NerTagger,
        train: Sequence[NerExample],
        validation: Sequence[NerExample],
    ) -> NerTagger:
        """Steps 2–11 of Algorithm 2 from an already-trained teacher.

        The caller's teacher is cloned, never mutated, so one teacher can
        seed several student runs (ablations, threshold sweeps).

        With ``config.num_workers >= 1`` the student's KL gradients are
        sharded across data-parallel workers (teacher pseudo-labeling
        stays parent-side so the Eq. 9–11 targets remain global).

        Each iteration emits a ``step`` event (phase ``self_train``) whose
        ``selection_rate`` field becomes the ``self_train.selection_rate``
        alert series — a custom ``Rule("low-selection",
        "self_train.selection_rate", below(0.05))`` catches a collapsing
        Eq. 11–12 confidence selection long before validation F1 moves.
        """
        if self.config.num_workers:
            return self._self_train_parallel(initial_teacher, train, validation)
        teacher = initial_teacher.clone()
        student = teacher.clone()
        optimizer = self._optimizer(
            student, self.config.student_learning_rate
        )
        best_f1 = self._validation_f1(student, validation)
        frequency = None  # Eq. 9's corpus-level p_c; refreshed with the teacher
        telemetry = obs.get_telemetry()
        for iteration in range(1, self.config.iterations + 1):
            with obs.trace("self_train.iteration", iteration=iteration):
                batch_idx = self.rng.choice(
                    len(train), size=min(self.config.batch_size, len(train)),
                    replace=False,
                )
                batch = [train[i] for i in batch_idx]
                features = student.featurizer.featurize(batch)

                probs = teacher.predict_probs(batch)
                if frequency is None:
                    frequency = self._class_frequency(teacher, train)
                soft = soft_pseudo_labels(probs, features.word_mask, frequency)
                if self.config.use_soft_labels:
                    targets = soft
                else:
                    targets = hard_to_onehot(probs)
                mask = features.word_mask
                valid_tokens = float(features.word_mask.sum())
                selection_rate = 1.0
                if self.config.use_confidence_selection:
                    selected = confidence_mask(soft, mask, self.config.gamma)
                    if selected.sum() == 0:
                        # Early in training no token may clear γ; fall back to
                        # the most confident half so the student still learns.
                        selected = self._top_half_mask(soft, mask)
                    # Eq. 11–12: share of valid tokens that cleared the
                    # confidence threshold and feed the KL loss.
                    selection_rate = (
                        float(selected.sum()) / valid_tokens if valid_tokens else 0.0
                    )
                    mask = selected

                student.train()
                optimizer.zero_grad()
                loss = kl_div_loss(student.logits(features), targets, mask=mask)
                loss.backward()
                clip_grad_norm(student.parameters(), self.config.max_grad_norm)
                optimizer.step()

            record = {"stage": 1.0, "epoch": float(iteration),
                      "loss": float(loss.data), "val_f1": best_f1}
            teacher_refreshed = False
            if iteration % self.config.eval_every == 0:
                score = self._validation_f1(student, validation)
                record["val_f1"] = score
                if telemetry is not None:
                    telemetry.event(
                        "eval", phase="self_train", iteration=iteration,
                        val_f1=score,
                    )
                if score > best_f1:
                    # The improved student re-initialises the teacher.
                    best_f1 = score
                    teacher.load_state_dict(student.state_dict())
                    frequency = None  # p_c must track the new teacher
                    teacher_refreshed = True
            self.history.append(record)
            if telemetry is not None:
                telemetry.metrics.gauge("self_train.selection_rate").set(
                    selection_rate
                )
                telemetry.metrics.counter("self_train.iterations").inc()
                if teacher_refreshed:
                    telemetry.metrics.counter("self_train.teacher_refreshes").inc()
                telemetry.event(
                    "step",
                    phase="self_train",
                    step=iteration,
                    losses={"kl": float(loss.data)},
                    selection_rate=selection_rate,
                    selected_tokens=float(mask.sum()),
                    valid_tokens=valid_tokens,
                    teacher_refreshed=teacher_refreshed,
                )
        return student

    def _class_frequency(
        self,
        teacher: NerTagger,
        train: Sequence[NerExample],
        chunk: int = 64,
        engine=None,
    ) -> np.ndarray:
        """Eq. 9's unnormalised class frequency over the full training set.

        With a data-parallel ``engine`` the sweep broadcasts the teacher
        through the shared parameter slab and fans the corpus across the
        workers; the per-example partial sums come back in global order
        and are reduced in one :func:`numpy.sum`, so the result does not
        depend on the worker count.
        """
        if engine is not None:
            from ..parallel import param_vector

            param_vector(teacher.parameters(), out=engine.runner.params)
            shards = engine.shard(list(range(len(train))))
            results = engine.dispatch(
                "frequency", shards, [{"chunk": chunk}] * len(shards)
            )
            return np.concatenate(results, axis=0).sum(axis=0)
        num_labels = teacher.scheme.num_labels
        frequency = np.zeros(num_labels)
        for start in range(0, len(train), chunk):
            batch = list(train[start : start + chunk])
            probs = teacher.predict_probs(batch)
            features = teacher.featurizer.featurize(batch)
            masked = probs * features.word_mask[..., None]
            frequency += masked.reshape(-1, num_labels).sum(axis=0)
        return frequency
