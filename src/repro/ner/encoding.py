"""Featurisation for intra-block NER (word-level labels over WordPiece).

The paper's NER model is a text-only BERT: blocks are WordPiece-tokenised,
the encoder contextualises the pieces, and word-level labels are predicted
at each word's *first* sub-word position (the standard alignment scheme).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..corpus.datasets import NerExample
from ..docmodel.labels import ENTITY_SCHEME, IobScheme
from ..text.wordpiece import WordPieceTokenizer

__all__ = ["NerFeatures", "NerFeaturizer", "SHAPE_DIM", "word_shape"]

#: Dimension of the per-piece surface-shape descriptor.
SHAPE_DIM = 8


def word_shape(word: str, position: int, total: int, is_initial: bool) -> np.ndarray:
    """Surface-shape features of a word (classic NER character features).

    Resume entities are format-heavy — phone numbers are digit runs, emails
    contain ``@``, names sit at the block head.  Large pre-trained encoders
    absorb these cues from raw sub-words; at this reproduction's scale we
    expose them explicitly, as the CNN-character channels of the paper's
    BiLSTM+CNN+CRF baselines do.
    """
    n = max(len(word), 1)
    digits = sum(c.isdigit() for c in word)
    return np.array(
        [
            1.0 if digits else 0.0,
            1.0 if digits == n else 0.0,
            digits / n,
            1.0 if "@" in word else 0.0,
            1.0 if any(not c.isalnum() for c in word) else 0.0,
            min(n / 20.0, 1.0),
            1.0 if is_initial else 0.0,
            position / max(total, 1),
        ]
    )


@dataclass
class NerFeatures:
    """Padded batch arrays for ``b`` examples.

    ``first_piece`` maps each word slot to the index of its first WordPiece
    in the piece sequence (0, the [CLS] slot, for padding words —
    ``word_mask`` distinguishes real words).
    """

    piece_ids: np.ndarray     # (b, p) int
    piece_mask: np.ndarray    # (b, p) 0/1
    first_piece: np.ndarray   # (b, w) int
    word_mask: np.ndarray     # (b, w) 0/1
    label_ids: np.ndarray     # (b, w) int (scheme ids; 0 where padded)
    piece_shape: np.ndarray = None  # (b, p, SHAPE_DIM) float

    @property
    def batch_size(self) -> int:
        return self.piece_ids.shape[0]

    @property
    def max_words(self) -> int:
        return self.first_piece.shape[1]


class NerFeaturizer:
    """Tokenise and batch :class:`NerExample` lists."""

    def __init__(
        self,
        tokenizer: WordPieceTokenizer,
        scheme: IobScheme = ENTITY_SCHEME,
        max_words: int = 96,
        max_pieces: int = 192,
    ):
        self.tokenizer = tokenizer
        self.scheme = scheme
        self.max_words = max_words
        self.max_pieces = max_pieces

    def featurize(self, examples: Sequence[NerExample]) -> NerFeatures:
        """Batch a list of examples into padded arrays."""
        if not examples:
            raise ValueError("cannot featurize an empty batch")
        b = len(examples)
        piece_ids = np.zeros((b, self.max_pieces), dtype=np.int64)
        piece_mask = np.zeros((b, self.max_pieces), dtype=np.float64)
        first_piece = np.zeros((b, self.max_words), dtype=np.int64)
        word_mask = np.zeros((b, self.max_words), dtype=np.float64)
        label_ids = np.zeros((b, self.max_words), dtype=np.int64)
        piece_shape = np.zeros((b, self.max_pieces, SHAPE_DIM))

        vocab = self.tokenizer.vocab
        for row, example in enumerate(examples):
            pieces: List[int] = [vocab.cls_id]
            shapes: List[np.ndarray] = [np.zeros(SHAPE_DIM)]
            total = len(example.words)
            for w, word in enumerate(example.words[: self.max_words]):
                sub = self.tokenizer.tokenize_word(word.lower())
                ids = vocab.encode(sub)
                if len(pieces) + len(ids) > self.max_pieces:
                    break
                first_piece[row, w] = len(pieces)
                word_mask[row, w] = 1.0
                label = example.labels[w]
                label_ids[row, w] = (
                    self.scheme.label_id(label)
                    if label in self.scheme.labels
                    else self.scheme.outside_id
                )
                pieces.extend(ids)
                shapes.extend(
                    word_shape(word, w, total, is_initial=(k == 0))
                    for k in range(len(ids))
                )
            piece_ids[row, : len(pieces)] = pieces
            piece_mask[row, : len(pieces)] = 1.0
            piece_shape[row, : len(shapes)] = np.stack(shapes)

        # Trim padding to the batch's actual extents — attention cost is
        # quadratic in the piece axis, so static max-size padding would
        # dominate compute for short blocks.
        max_p = max(int(piece_mask.sum(axis=1).max()), 1)
        max_w = max(int(word_mask.sum(axis=1).max()), 1)
        return NerFeatures(
            piece_ids[:, :max_p],
            piece_mask[:, :max_p],
            first_piece[:, :max_w],
            word_mask[:, :max_w],
            label_ids[:, :max_w],
            piece_shape[:, :max_p],
        )

    def batches(
        self,
        examples: Sequence[NerExample],
        batch_size: int,
        rng: Optional[np.random.Generator] = None,
    ):
        """Yield featurised mini-batches, optionally shuffled."""
        order = np.arange(len(examples))
        if rng is not None:
            order = rng.permutation(order)
        for start in range(0, len(order), batch_size):
            chunk = [examples[i] for i in order[start : start + batch_size]]
            yield self.featurize(chunk), chunk
