"""Entity dictionary construction (Section IV-B1).

The paper builds per-class dictionaries from name databases, web
encyclopedias and recruitment sites.  Here the dictionaries sample from the
same banks that generate the corpus — *partially*, controlled by
``coverage``: a 70% dictionary misses 30% of real mentions, reproducing the
incomplete-dictionary noise that motivates the self-training framework.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from ..corpus import names

__all__ = ["EntityDictionaries", "build_dictionaries"]


@dataclass
class EntityDictionaries:
    """Surface-form dictionaries per entity class.

    Multi-word entries are stored as lowercase word tuples for n-gram
    matching.  ``first_names``/``last_names`` support the paper's name
    heuristic ("starts with a common family name ... at the beginning of
    the document").
    """

    first_names: FrozenSet[str]
    last_names: FrozenSet[str]
    colleges: FrozenSet[Tuple[str, ...]]
    majors: FrozenSet[Tuple[str, ...]]
    companies: FrozenSet[Tuple[str, ...]]
    positions: FrozenSet[Tuple[str, ...]]
    project_names: FrozenSet[Tuple[str, ...]]
    degrees: FrozenSet[str] = frozenset(names.DEGREES)
    genders: FrozenSet[str] = frozenset(names.GENDERS)

    def phrase_dictionaries(self) -> Dict[str, FrozenSet[Tuple[str, ...]]]:
        """The multi-word dictionaries keyed by their entity tag."""
        return {
            "College": self.colleges,
            "Major": self.majors,
            "Company": self.companies,
            "Position": self.positions,
            "ProjName": self.project_names,
        }

    def max_phrase_length(self) -> int:
        lengths = [
            len(phrase)
            for dictionary in self.phrase_dictionaries().values()
            for phrase in dictionary
        ]
        return max(lengths, default=1)


def _sample(
    values: Sequence[str], coverage: float, rng: np.random.Generator
) -> List[str]:
    count = max(int(round(coverage * len(values))), 1)
    picked = rng.choice(len(values), size=count, replace=False)
    return [values[i] for i in sorted(picked)]


def _phrases(values: Sequence[str]) -> FrozenSet[Tuple[str, ...]]:
    return frozenset(tuple(v.lower().split()) for v in values)


#: Distractor entries injected by ``noise``: plausible-looking gazetteer
#: pollution (scraped lists contain generic words) that collides with plain
#: resume prose — e.g. "communication" is both a major and a soft skill.
_DISTRACTORS: Dict[str, Tuple[str, ...]] = {
    "Major": ("communication", "finance", "marketing", "statistics"),
    "Position": ("specialist", "manager"),
    "Company": ("solutions", "networks"),
    "ProjName": ("machine learning models", "internal reporting tools"),
}


def build_dictionaries(
    coverage: float = 0.7,
    seed: int = 0,
    noise: float = 0.0,
    name_coverage: Optional[float] = None,
) -> EntityDictionaries:
    """Sample dictionaries covering a fraction of each value bank.

    ``coverage=1.0`` gives oracle dictionaries (no misses); lower values
    leave realistic gaps.  ``noise`` in [0, 1] controls how many distractor
    entries pollute each phrase dictionary (scraped gazetteers contain
    generic words), producing the false-positive side of distant-supervision
    noise.  Composite values (colleges, companies, projects) are enumerated
    by composing the sampled stems with all suffixes, the way a scraped
    gazetteer lists every branch of an institution.

    ``name_coverage`` defaults to ``min(1, coverage + 0.25)``: public name
    databases (the paper's source for person names) cover common given and
    family names far better than scraped institution/company gazetteers.
    """
    if not 0.0 < coverage <= 1.0:
        raise ValueError(f"coverage must be in (0, 1]: {coverage}")
    if not 0.0 <= noise <= 1.0:
        raise ValueError(f"noise must be in [0, 1]: {noise}")
    if name_coverage is None:
        name_coverage = min(1.0, coverage + 0.25)
    if not 0.0 < name_coverage <= 1.0:
        raise ValueError(f"name_coverage must be in (0, 1]: {name_coverage}")
    rng = np.random.default_rng(seed)

    college_stems = _sample(names.COLLEGE_STEMS, coverage, rng)
    company_stems = _sample(names.COMPANY_STEMS, coverage, rng)
    project_stems = _sample(names.PROJECT_STEMS, coverage, rng)
    colleges = [
        f"{stem} {suffix}"
        for stem in college_stems
        for suffix in names.COLLEGE_SUFFIXES
    ]
    companies = [
        f"{stem} {suffix}"
        for stem in company_stems
        for suffix in names.COMPANY_SUFFIXES
    ]
    projects = [
        f"{stem} {suffix}"
        for stem in project_stems
        for suffix in names.PROJECT_SUFFIXES
    ]
    def polluted(tag: str, base: List[str]) -> FrozenSet[Tuple[str, ...]]:
        entries = list(base)
        pool = _DISTRACTORS.get(tag, ())
        if noise > 0.0 and pool:
            count = min(max(int(round(noise * len(pool))), 1), len(pool))
            picked = rng.choice(len(pool), size=count, replace=False)
            entries.extend(pool[i] for i in picked)
        return _phrases(entries)

    return EntityDictionaries(
        first_names=frozenset(_sample(names.FIRST_NAMES, name_coverage, rng)),
        last_names=frozenset(_sample(names.LAST_NAMES, name_coverage, rng)),
        colleges=polluted("College", colleges),
        majors=polluted("Major", _sample(names.MAJORS, coverage, rng)),
        companies=polluted("Company", companies),
        positions=polluted("Position", _sample(names.POSITIONS, coverage, rng)),
        project_names=polluted("ProjName", projects),
    )
