"""Training-data augmentation for distant supervision (Section IV-B2).

Two operations from the paper:

* **mention replacement** — swap an annotated entity's surface form for
  another dictionary value of the same class (labels resized accordingly);
* **field reordering** — swap the order of two adjacent entity mentions
  (e.g. company name and work date), diversifying field layouts.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..corpus.datasets import NerExample
from ..docmodel.labels import ENTITY_SCHEME, iob_to_spans
from .dictionaries import EntityDictionaries, build_dictionaries

__all__ = ["replace_mentions", "reorder_fields", "augment_examples"]


def _spans(example: NerExample):
    ids = [
        ENTITY_SCHEME.label_id(l) if l in ENTITY_SCHEME.labels else 0
        for l in example.labels
    ]
    return iob_to_spans(ids, ENTITY_SCHEME)


def replace_mentions(
    example: NerExample,
    dictionaries: EntityDictionaries,
    rng: np.random.Generator,
) -> Optional[NerExample]:
    """Replace one dictionary-backed mention with another dictionary value."""
    replaceable = {
        tag: sorted(phrases)
        for tag, phrases in dictionaries.phrase_dictionaries().items()
    }
    candidates = [s for s in _spans(example) if s[2] in replaceable]
    if not candidates:
        return None
    start, stop, tag = candidates[int(rng.integers(0, len(candidates)))]
    pool = replaceable[tag]
    replacement = list(pool[int(rng.integers(0, len(pool)))])

    words = (
        list(example.words[:start]) + replacement + list(example.words[stop:])
    )
    labels = (
        list(example.labels[:start])
        + [f"B-{tag}"] + [f"I-{tag}"] * (len(replacement) - 1)
        + list(example.labels[stop:])
    )
    return NerExample(words, labels, example.block_tag, example.doc_id)


def reorder_fields(
    example: NerExample, rng: np.random.Generator
) -> Optional[NerExample]:
    """Swap two adjacent entity mentions separated by at most two words."""
    spans = _spans(example)
    adjacent = [
        (a, b)
        for a, b in zip(spans, spans[1:])
        if b[0] - a[1] <= 2 and a[2] != b[2]
    ]
    if not adjacent:
        return None
    (s1, e1, t1), (s2, e2, t2) = adjacent[int(rng.integers(0, len(adjacent)))]

    words = list(example.words)
    labels = list(example.labels)
    middle_words = words[e1:s2]
    middle_labels = labels[e1:s2]
    new_words = (
        words[:s1] + words[s2:e2] + middle_words + words[s1:e1] + words[e2:]
    )
    new_labels = (
        labels[:s1] + labels[s2:e2] + middle_labels + labels[s1:e1] + labels[e2:]
    )
    return NerExample(new_words, new_labels, example.block_tag, example.doc_id)


def augment_examples(
    examples: Sequence[NerExample],
    dictionaries: Optional[EntityDictionaries] = None,
    replacement_factor: float = 0.5,
    reorder_factor: float = 0.3,
    seed: int = 0,
) -> List[NerExample]:
    """Return the originals plus augmented variants.

    ``replacement_factor``/``reorder_factor`` control how many augmented
    copies are drawn per original (in expectation).
    """
    dictionaries = dictionaries or build_dictionaries()
    rng = np.random.default_rng(seed)
    out: List[NerExample] = list(examples)
    for example in examples:
        if rng.random() < replacement_factor:
            replaced = replace_mentions(example, dictionaries, rng)
            if replaced is not None:
                out.append(replaced)
        if rng.random() < reorder_factor:
            reordered = reorder_fields(example, rng)
            if reordered is not None:
                out.append(reordered)
    return out
