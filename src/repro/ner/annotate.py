"""Automatic distant-supervision annotation (Section IV-B2).

Labels raw block text by combining, in priority order:

1. **regular expressions** — emails, phone numbers, dates/date ranges;
2. **prefix heuristics** — ``email :``, ``phone :``, ``age :``,
   ``gender :`` field labels;
3. **closed value sets** — genders, degrees;
4. **dictionary string matching** — longest-match-first n-gram lookup in
   the entity dictionaries (colleges, majors, companies, positions,
   project names);
5. **heuristic rules** — person-name bigrams near the document head and
   company-suffix patterns (``... co. ltd``).

The result is deliberately *noisy and incomplete* — exactly the supervision
regime the paper's self-distillation framework targets.  Each annotation
also records which positions the annotator *committed* on; the fuzzy-CRF
and AutoNER baselines treat uncommitted positions as unconstrained.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..corpus.datasets import NerExample
from .dictionaries import EntityDictionaries, build_dictionaries

__all__ = ["DistantAnnotation", "DistantAnnotator", "annotate_examples"]

_EMAIL_RE = re.compile(r"^[\w.+-]+@[\w-]+\.[\w.]+$")
_PHONE_COMPACT_RE = re.compile(r"^\d{10}$")
_PHONE_DASHED_RE = re.compile(r"^\d{3}-\d{3}-\d{4}$")
_PHONE_PAREN_RE = re.compile(r"^\(\d{3}\)$")
_DIGITS3_RE = re.compile(r"^\d{3}$")
_DIGITS4_RE = re.compile(r"^\d{4}$")
_DATE_RE = re.compile(r"^\d{4}[./-]\d{2}$")
_AGE_RE = re.compile(r"^\d{2}$")

_FIELD_PREFIXES = {
    "email": "Email",
    "phone": "PhoneNum",
    "age": "Age",
    "gender": "Gender",
}


@dataclass
class DistantAnnotation:
    """IOB labels plus the annotator's commitment mask."""

    labels: List[str]
    matched: List[bool]

    @property
    def num_entities(self) -> int:
        return sum(1 for label in self.labels if label.startswith("B-"))


class DistantAnnotator:
    """Annotates word sequences with distant entity labels."""

    def __init__(self, dictionaries: Optional[EntityDictionaries] = None):
        self.dictionaries = dictionaries or build_dictionaries()
        self._phrase_index = self._build_phrase_index()
        self._company_suffixes = self._build_company_suffixes()

    def _build_phrase_index(self):
        """(length-sorted) list of (phrase_tuple, tag), longest first."""
        entries: List[Tuple[Tuple[str, ...], str]] = []
        for tag, phrases in self.dictionaries.phrase_dictionaries().items():
            entries.extend((phrase, tag) for phrase in phrases)
        entries.sort(key=lambda item: -len(item[0]))
        return entries

    def _build_company_suffixes(self):
        # Only the unambiguous legal-form suffixes from the paper's example
        # ("... often ends with 'Co. LTD'"); generic suffixes like
        # "technologies" stay dictionary-only, keeping the heuristic's
        # precision high and its recall partial.
        return (("co.", "ltd"), ("inc",))

    # ------------------------------------------------------------------
    def annotate(self, words: Sequence[str]) -> DistantAnnotation:
        """Produce distant IOB labels for one block's words."""
        lowered = [w.lower() for w in words]
        n = len(words)
        labels = ["O"] * n
        matched = [False] * n

        def claim(start: int, stop: int, tag: str) -> bool:
            if any(matched[start:stop]):
                return False
            labels[start] = f"B-{tag}"
            for i in range(start + 1, stop):
                labels[i] = f"I-{tag}"
            for i in range(start, stop):
                matched[i] = True
            return True

        self._match_regexes(lowered, claim)
        self._match_prefixes(lowered, claim, matched)
        self._match_value_sets(lowered, claim)
        self._match_phrases(lowered, claim, matched)
        self._match_name_bigram(lowered, claim)
        self._match_company_suffix(lowered, claim, matched)
        return DistantAnnotation(labels, matched)

    # ------------------------------------------------------------------
    def _match_regexes(self, words, claim):
        n = len(words)
        i = 0
        while i < n:
            word = words[i]
            if _EMAIL_RE.match(word):
                claim(i, i + 1, "Email")
            elif _PHONE_COMPACT_RE.match(word) or _PHONE_DASHED_RE.match(word):
                claim(i, i + 1, "PhoneNum")
            elif (
                _PHONE_PAREN_RE.match(word)
                and i + 2 < n
                and _DIGITS3_RE.match(words[i + 1])
                and _DIGITS4_RE.match(words[i + 2])
            ):
                claim(i, i + 3, "PhoneNum")
                i += 3
                continue
            elif _DATE_RE.match(word):
                stop = i + 1
                if stop < n and words[stop] == "-":
                    after = stop + 1
                    if after < n and (
                        _DATE_RE.match(words[after]) or words[after] == "present"
                    ):
                        stop = after + 1
                claim(i, stop, "Date")
                i = stop
                continue
            i += 1

    def _match_prefixes(self, words, claim, matched):
        for i, word in enumerate(words):
            tag = _FIELD_PREFIXES.get(word)
            if tag is None:
                continue
            j = i + 1
            if j < len(words) and words[j] == ":":
                j += 1
            if j >= len(words) or matched[j]:
                continue
            if tag == "Age" and not _AGE_RE.match(words[j]):
                continue
            claim(j, j + 1, tag)

    def _match_value_sets(self, words, claim):
        for i, word in enumerate(words):
            if word in self.dictionaries.genders:
                claim(i, i + 1, "Gender")
            elif word in self.dictionaries.degrees:
                claim(i, i + 1, "Degree")

    def _match_phrases(self, words, claim, matched):
        n = len(words)
        for phrase, tag in self._phrase_index:
            length = len(phrase)
            if length > n:
                continue
            for start in range(n - length + 1):
                if matched[start]:
                    continue
                if tuple(words[start : start + length]) == phrase:
                    claim(start, start + length, tag)

    def _match_name_bigram(self, words, claim, head_window: int = 8):
        limit = min(len(words) - 1, head_window)
        for i in range(limit):
            if (
                words[i] in self.dictionaries.first_names
                and words[i + 1] in self.dictionaries.last_names
            ):
                if claim(i, i + 2, "Name"):
                    return

    def _match_company_suffix(self, words, claim, matched):
        n = len(words)
        for suffix in self._company_suffixes:
            length = len(suffix)
            for start in range(1, n - length + 1):
                if tuple(words[start : start + length]) != suffix:
                    continue
                begin = start - 1
                if matched[begin] or matched[start]:
                    continue
                claim(begin, start + length, "Company")


def annotate_examples(
    examples: Sequence[NerExample],
    annotator: Optional[DistantAnnotator] = None,
    require_entity: bool = True,
) -> List[NerExample]:
    """Re-label examples with distant labels (gold stays in the originals).

    With ``require_entity`` (Section V-B1), blocks where the annotator found
    nothing are dropped, matching the paper's "each training instance has at
    least one matched entity mention".
    """
    annotator = annotator or DistantAnnotator()
    annotated: List[NerExample] = []
    for example in examples:
        annotation = annotator.annotate(example.words)
        if require_entity and annotation.num_entities == 0:
            continue
        annotated.append(
            NerExample(
                words=list(example.words),
                labels=annotation.labels,
                block_tag=example.block_tag,
                doc_id=example.doc_id,
            )
        )
    return annotated
