"""The intra-block NER tagger: encoder + BiLSTM + MLP (Section IV-B3).

``NerEncoder`` is the from-scratch stand-in for the paper's pre-trained
RoBERTa (the environment has no pretrained checkpoints); ``NerTagger``
stacks the BiLSTM and MLP prediction head on top, exactly the architecture
the paper trains under distant supervision.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .. import obs
from ..corpus.datasets import NerExample
from ..docmodel.labels import ENTITY_SCHEME, IobScheme
from ..nn import BiLstm, Dropout, Mlp, Module, Tensor, TransformerEncoder, no_grad
from ..nn import init as nn_init
from ..nn.functional import cross_entropy, softmax
from ..text.wordpiece import WordPieceTokenizer
from .encoding import NerFeatures, NerFeaturizer

__all__ = ["NerConfig", "NerEncoder", "NerTagger"]


class NerConfig:
    """Hyper-parameters for the NER stack (paper: 12 layers, 768 hidden,
    BiLSTM 256; defaults here are the CPU-scale rendition)."""

    def __init__(
        self,
        vocab_size: int,
        hidden_dim: int = 64,
        layers: int = 2,
        heads: int = 4,
        lstm_hidden: int = 32,
        dropout: float = 0.1,
        max_pieces: int = 192,
        max_words: int = 96,
        ffn_multiplier: int = 2,
        inference_precision: str = "float64",
    ):
        if hidden_dim % heads:
            raise ValueError("hidden_dim must divide heads")
        if inference_precision not in ("float64", "float32", "int8"):
            raise ValueError(
                "inference_precision must be 'float64', 'float32' or "
                f"'int8': {inference_precision!r}"
            )
        self.vocab_size = vocab_size
        self.hidden_dim = hidden_dim
        self.layers = layers
        self.heads = heads
        self.lstm_hidden = lstm_hidden
        self.dropout = dropout
        self.max_pieces = max_pieces
        self.max_words = max_words
        self.ffn_multiplier = ffn_multiplier
        self.inference_precision = inference_precision


class NerEncoder(Module):
    """Text Transformer encoder over WordPiece sequences.

    Besides sub-word embeddings it consumes the surface-shape descriptors
    of :func:`repro.ner.encoding.word_shape` — explicit character-level
    cues (digit runs, ``@``, punctuation, block position) standing in for
    what web-scale pre-training gives the paper's RoBERTa for free.
    """

    def __init__(self, config: NerConfig, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or nn_init.default_rng()
        from ..core.embeddings import TextEmbedding
        from ..nn import Linear
        from .encoding import SHAPE_DIM

        self.config = config
        self.embedding = TextEmbedding(
            config.vocab_size,
            config.hidden_dim,
            max_positions=config.max_pieces,
            rng=rng,
        )
        self.shape_project = Linear(SHAPE_DIM, config.hidden_dim, rng=rng)
        self.encoder = TransformerEncoder(
            config.layers,
            config.hidden_dim,
            config.heads,
            ffn_dim=config.hidden_dim * config.ffn_multiplier,
            dropout=config.dropout,
            rng=rng,
        )

    def forward(
        self,
        piece_ids: np.ndarray,
        piece_mask: np.ndarray,
        piece_shape: Optional[np.ndarray] = None,
    ) -> Tensor:
        segments = np.zeros_like(piece_ids)
        embedded = self.embedding(piece_ids, segments)
        if piece_shape is not None:
            embedded = embedded + self.shape_project(
                Tensor(np.asarray(piece_shape, dtype=np.float64))
            )
        return self.encoder(embedded, attention_mask=piece_mask)


class NerTagger(Module):
    """Encoder + BiLSTM + MLP word-level tagger."""

    def __init__(
        self,
        config: NerConfig,
        tokenizer: WordPieceTokenizer,
        scheme: IobScheme = ENTITY_SCHEME,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or nn_init.default_rng()
        self.config = config
        self.scheme = scheme
        self.featurizer = NerFeaturizer(
            tokenizer, scheme, max_words=config.max_words, max_pieces=config.max_pieces
        )
        self.encoder = NerEncoder(config, rng=rng)
        self.dropout = Dropout(config.dropout, rng=rng)
        self.bilstm = BiLstm(config.hidden_dim, config.lstm_hidden, rng=rng)
        self.mlp = Mlp(
            [2 * config.lstm_hidden, config.lstm_hidden, scheme.num_labels], rng=rng
        )
        self._quantized = False

    # ------------------------------------------------------------------
    # Inference precision (see NerConfig.inference_precision)
    # ------------------------------------------------------------------
    def quantize_for_inference(
        self, calibration_examples: Sequence[NerExample] = ()
    ) -> int:
        """Swap Linears for int8 kernels; calibrate on held-out examples."""
        from ..nn import quantize as nn_quantize

        count = nn_quantize.quantize_model(self)
        self._quantized = True
        if calibration_examples:
            self.eval()
            features = self.featurizer.featurize(calibration_examples)
            with nn_quantize.calibration(self), no_grad():
                self.logits(features)
        return count

    def dequantize(self) -> int:
        """Restore the float layers swapped by :meth:`quantize_for_inference`."""
        from ..nn import quantize as nn_quantize

        self._quantized = False
        return nn_quantize.dequantize(self)

    def _ensure_inference_precision(
        self, examples: Sequence[NerExample]
    ) -> str:
        """Lazily apply ``config.inference_precision``; returns it."""
        precision = getattr(self.config, "inference_precision", "float64")
        if precision == "int8" and not self._quantized:
            self.quantize_for_inference(list(examples)[:8])
        elif precision == "float32" and not self._quantized:
            for module in self.modules():
                if hasattr(module, "inference_dtype"):
                    module.inference_dtype = np.float32
        return precision

    # ------------------------------------------------------------------
    def word_states(self, features: NerFeatures) -> Tensor:
        """Contextual state of each word's first sub-word, ``(b, w, d)``."""
        states = self.encoder(
            features.piece_ids, features.piece_mask, features.piece_shape
        )
        b = features.batch_size
        rows = np.arange(b)[:, None]
        return states[rows, features.first_piece]

    def logits(self, features: NerFeatures) -> Tensor:
        """Per-word label scores ``(b, w, num_labels)``.

        Padding word slots gather the [CLS] piece state, so they are zeroed
        and the BiLSTM runs masked — each example's scores depend only on
        its own words, not on how long its batch-mates are.
        """
        gathered = self.dropout(self.word_states(features))
        gathered = gathered * Tensor(features.word_mask[:, :, None])
        hidden = self.bilstm(gathered, mask=features.word_mask)
        return self.mlp(hidden)

    def loss(self, features: NerFeatures) -> Tensor:
        """Masked cross-entropy against ``features.label_ids``.

        Token-level mean over the whole batch: every valid word weighs the
        same regardless of which example it belongs to.
        """
        return cross_entropy(
            self.logits(features), features.label_ids, mask=features.word_mask
        )

    def loss_batch(self, features: NerFeatures) -> Tensor:
        """Example-mean masked cross-entropy for the mini-batch engine.

        Each example contributes the mean over its own valid words, then
        examples average — so the value equals the mean of per-example
        :meth:`loss` calls, the invariant the batched trainers and parity
        tests rely on (plain :meth:`loss` weighs long examples more).
        """
        counts = features.word_mask.sum(axis=1)
        active = counts > 0
        weights = np.zeros_like(features.word_mask, dtype=np.float64)
        if active.any():
            weights[active] = features.word_mask[active] / (
                counts[active][:, None] * int(active.sum())
            )
        return cross_entropy(
            self.logits(features), features.label_ids, mask=weights
        )

    # ------------------------------------------------------------------
    def predict_probs(self, examples: Sequence[NerExample]) -> np.ndarray:
        """Class distributions ``(b, w, num_labels)`` (eval mode, no grad)."""
        self._ensure_inference_precision(examples)
        features = self.featurizer.featurize(examples)
        self.eval()
        with no_grad():
            probs = softmax(self.logits(features), axis=-1)
        return probs.numpy()

    def predict(self, examples: Sequence[NerExample]) -> List[List[str]]:
        """IOB label strings per example (argmax decoding)."""
        self._ensure_inference_precision(examples)
        features = self.featurizer.featurize(examples)
        return self._decode_features(features, examples)

    def _decode_features(
        self, features: NerFeatures, examples: Sequence[NerExample]
    ) -> List[List[str]]:
        """Encode featurised examples and argmax-decode label strings."""
        return self._decode_with_scores(features, examples)[0]

    def _decode_with_scores(
        self, features: NerFeatures, examples: Sequence[NerExample]
    ):
        """Decoded labels plus the raw ``(b, w, num_labels)`` scores."""
        self.eval()
        precision = getattr(self.config, "inference_precision", "float64")
        with obs.trace("encode", batch=features.batch_size,
                       precision=precision), no_grad():
            scores = self.logits(features).numpy()
        predictions: List[List[str]] = []
        with obs.trace("decode", batch=features.batch_size):
            for row, example in enumerate(examples):
                n = len(example.words)
                ids = scores[row, : min(n, features.max_words)].argmax(axis=-1)
                labels = self.scheme.decode(list(ids))
                labels += ["O"] * (n - len(labels))
                predictions.append(labels)
        return predictions, scores

    def predict_batch(
        self, examples: Sequence[NerExample], batch_size: int = 32
    ) -> List[List[str]]:
        """Batched decoding over many examples.

        Examples are featurised and decoded in chunks of ``batch_size``:
        padding is trimmed per chunk, which keeps the quadratic attention
        cost bounded by each chunk's longest block instead of the corpus
        maximum.  Equivalent to concatenating per-chunk :meth:`predict`.
        An active :mod:`repro.obs` session records per-stage spans
        (``featurize`` / ``encode+decode``) plus batch-size and
        padding-waste histograms.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        precision = self._ensure_inference_precision(examples)
        telemetry = obs.get_telemetry()
        predictions: List[List[str]] = []
        with obs.trace("ner.predict_batch", examples=len(examples),
                       batch_size=batch_size, precision=precision):
            for start in range(0, len(examples), batch_size):
                chunk = examples[start : start + batch_size]
                with obs.trace("featurize", batch=len(chunk)):
                    features = self.featurizer.featurize(chunk)
                if telemetry is not None:
                    slots = features.word_mask.size
                    waste = (
                        1.0 - float(features.word_mask.sum()) / slots
                        if slots else 0.0
                    )
                    telemetry.metrics.histogram(
                        "ner.padding_waste",
                        buckets=tuple(i / 10 for i in range(1, 11)),
                    ).observe(waste)
                    telemetry.metrics.histogram(
                        "ner.batch_size", buckets=(1, 2, 4, 8, 16, 32, 64, 128)
                    ).observe(len(chunk))
                    telemetry.metrics.counter("ner.examples").inc(len(chunk))
                chunk_predictions, scores = self._decode_with_scores(
                    features, chunk
                )
                predictions.extend(chunk_predictions)
                if telemetry is not None and telemetry.drift is not None:
                    self._observe_drift(
                        telemetry.drift, chunk, features, scores,
                        chunk_predictions,
                    )
        return predictions

    def _observe_drift(
        self, monitor, chunk, features, scores, predictions
    ) -> None:
        """Feed one decoded chunk to the session's drift monitor.

        Softmax confidences are derived from the scores the decode already
        produced, and only when the reference tracks ``ner_confidence``.
        """
        from ..obs import drift as obs_drift

        confidences = None
        if monitor.wants("ner_confidence"):
            shifted = scores - scores.max(axis=-1, keepdims=True)
            probs = np.exp(shifted)
            probs /= probs.sum(axis=-1, keepdims=True)
            best = probs.max(axis=-1)
            confidences = [
                float(value)
                for row, example in zip(best, chunk)
                for value in row[: min(len(example.words), features.max_words)]
            ]
        monitor.observe(
            obs_drift.ner_observations(
                chunk, predictions=predictions, confidences=confidences
            )
        )

    def clone(self) -> "NerTagger":
        """A parameter-identical copy (used by the teacher-student loop)."""
        twin = NerTagger(
            self.config,
            self.featurizer.tokenizer,
            scheme=self.scheme,
            rng=nn_init.default_rng(0),
        )
        twin.load_state_dict(self.state_dict())
        return twin
