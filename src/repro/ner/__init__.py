"""``repro.ner`` — distantly supervised intra-block information extraction.

The paper's second task: entity dictionaries, automatic annotation, data
augmentation, a BERT+BiLSTM+MLP tagger, and the self-distillation based
self-training framework (Algorithm 2) with soft labels and high-confidence
token selection.
"""

from .annotate import DistantAnnotation, DistantAnnotator, annotate_examples
from .augment import augment_examples, reorder_fields, replace_mentions
from .dictionaries import EntityDictionaries, build_dictionaries
from .encoding import NerFeatures, NerFeaturizer
from .model import NerConfig, NerEncoder, NerTagger
from .self_training import (
    SelfTrainConfig,
    SelfTrainer,
    confidence_mask,
    soft_pseudo_labels,
)

__all__ = [
    "EntityDictionaries",
    "build_dictionaries",
    "DistantAnnotation",
    "DistantAnnotator",
    "annotate_examples",
    "augment_examples",
    "replace_mentions",
    "reorder_fields",
    "NerFeatures",
    "NerFeaturizer",
    "NerConfig",
    "NerEncoder",
    "NerTagger",
    "SelfTrainConfig",
    "SelfTrainer",
    "soft_pseudo_labels",
    "confidence_mask",
]
