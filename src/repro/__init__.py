"""ResuFormer — semantic structure understanding for resumes.

A full reproduction of *"ResuFormer: Semantic Structure Understanding for
Resumes via Multi-Modal Pre-training"* (Yao et al., ICDE 2023), built on a
self-contained numpy neural substrate (:mod:`repro.nn`) and a synthetic
resume corpus (:mod:`repro.corpus`) standing in for the paper's proprietary
dataset.

Public entry points:

* :mod:`repro.core` — hierarchical multi-modal pre-training and the resume
  block classifier (paper task 1).
* :mod:`repro.ner` — distantly supervised intra-block information extraction
  with self-distillation based self-training (paper task 2).
* :mod:`repro.baselines` — every comparator evaluated in Tables II and IV.
* :mod:`repro.eval` — the paper's area-based and IOB metrics.
"""

# Importing the module applies the single-thread default (setdefault, so
# user-provided env values win); an explicit count here would override them.
from ._threads import limit_blas_threads

__version__ = "1.0.0"
