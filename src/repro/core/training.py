"""Mini-batch training engine shared by all three trainers.

The batched loss kernels (`BlockClassifier.loss_batch`,
`Pretrainer.pretrain_losses`, `NerTagger.loss_batch`) each return the
*mean of the per-document losses* in their mini-batch.  This module owns
the other half of the contract: turning those mean losses into optimizer
steps, with optional gradient accumulation so the effective batch size can
exceed what fits in one padded forward pass.

:class:`GradAccumulator` accumulates ``loss * weight`` gradients across
micro-batches and rescales by the total weight at step time, so the final
gradient is the exact weighted mean over every document in the window —
including ragged final windows where the last micro-batch is smaller.
"""

from __future__ import annotations

import time
from typing import Iterator, List, Optional, Sequence

import numpy as np

from .. import obs
from ..nn import clip_grad_norm
from ..nn.tensor import Tensor, no_grad

__all__ = ["GradAccumulator", "apply_weighted_step", "iter_minibatches"]


def apply_weighted_step(
    optimizer,
    parameters: Sequence,
    total_weight: Optional[float] = None,
    max_grad_norm: Optional[float] = None,
) -> Optional[float]:
    """Rescale accumulated gradients, clip, and take one optimizer step.

    The step half of the :class:`GradAccumulator` contract, shared with
    the data-parallel engine (which reduces weight-scaled worker
    gradients into ``parameter.grad`` and normalises during the
    all-reduce, so it passes ``total_weight=None``).  Returns the
    pre-clip gradient norm, or None when clipping is disabled.
    """
    started = time.perf_counter()
    grad_norm: Optional[float] = None
    with obs.trace("train.apply_step"):
        if total_weight is not None and total_weight != 1.0:
            scale = 1.0 / total_weight
            with no_grad():
                for parameter in parameters:
                    if parameter.grad is not None:
                        parameter.grad *= scale
        if max_grad_norm is not None:
            grad_norm = clip_grad_norm(parameters, max_grad_norm)
        optimizer.step()
    telemetry = obs.get_telemetry()
    if telemetry is not None:
        telemetry.metrics.counter("train.optimizer_steps").inc()
        telemetry.metrics.timer("train.apply_step_seconds").observe(
            time.perf_counter() - started
        )
        if grad_norm is not None:
            telemetry.metrics.gauge("train.grad_norm").set(grad_norm)
    return grad_norm


class GradAccumulator:
    """Accumulates micro-batch gradients into one optimizer step.

    Each :meth:`backward` call contributes ``loss * weight`` to the
    parameter gradients (``weight`` is typically the number of documents
    the mean loss covers).  Every ``accumulation`` calls the gradients are
    rescaled by ``1 / total_weight``, clipped, and applied — one step whose
    gradient equals the weighted mean of all accumulated losses.  With
    ``accumulation=1`` and ``weight=1`` this is exactly the classic
    ``zero_grad / backward / clip / step`` sequence.
    """

    def __init__(
        self,
        optimizer,
        parameters: Sequence,
        max_grad_norm: Optional[float] = None,
        accumulation: int = 1,
    ):
        if accumulation <= 0:
            raise ValueError("grad accumulation must be positive")
        self.optimizer = optimizer
        self.parameters = list(parameters)
        self.max_grad_norm = max_grad_norm
        self.accumulation = accumulation
        self.steps = 0
        #: Pre-clip global gradient norm of the most recent optimizer step
        #: (None until the first step, or when clipping is disabled).
        self.last_grad_norm: Optional[float] = None
        self._pending = 0
        self._weight = 0.0

    def backward(self, loss: Tensor, weight: float = 1.0) -> bool:
        """Backprop one micro-batch loss; returns True if a step was taken."""
        if weight <= 0:
            raise ValueError("loss weight must be positive")
        if self._pending == 0:
            self.optimizer.zero_grad()
        scaled = loss * float(weight) if weight != 1.0 else loss
        scaled.backward()
        self._pending += 1
        self._weight += float(weight)
        if self._pending >= self.accumulation:
            self._apply()
            return True
        return False

    def flush(self) -> bool:
        """Apply a pending partial window (end of epoch); True if stepped."""
        if self._pending == 0:
            return False
        self._apply()
        return True

    def _apply(self) -> None:
        grad_norm = apply_weighted_step(
            self.optimizer,
            self.parameters,
            total_weight=self._weight,
            max_grad_norm=self.max_grad_norm,
        )
        if grad_norm is not None:
            self.last_grad_norm = grad_norm
        self.steps += 1
        self._pending = 0
        self._weight = 0.0


def iter_minibatches(
    count: int,
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
    lengths: Optional[Sequence[int]] = None,
) -> Iterator[List[int]]:
    """Yield index lists covering ``range(count)`` in chunks of ``batch_size``.

    With ``rng`` the order is shuffled first (one permutation draw, matching
    the per-epoch shuffle the per-document loops used).

    ``lengths`` switches to length-bucketed batching: indices are sorted by
    length so each chunk groups similarly-sized items, then the *chunk*
    order is shuffled.  Padded batch kernels pay for the longest item in
    the chunk, so mixing a long document into a chunk of short ones makes
    every row pay the long document's quadratic attention cost — sorting
    first keeps the padding (and the wasted compute) minimal while the
    chunk-level shuffle preserves epoch-to-epoch stochasticity.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if lengths is not None:
        if len(lengths) != count:
            raise ValueError("lengths must have one entry per item")
        shuffled = np.arange(count) if rng is None else rng.permutation(count)
        order = shuffled[
            np.argsort(np.asarray(lengths)[shuffled], kind="stable")
        ]
        chunks = [
            order[start : start + batch_size]
            for start in range(0, count, batch_size)
        ]
        if rng is not None:
            chunks = [chunks[i] for i in rng.permutation(len(chunks))]
        for chunk in chunks:
            yield [int(i) for i in chunk]
        return
    order = np.arange(count) if rng is None else rng.permutation(count)
    for start in range(0, count, batch_size):
        yield [int(i) for i in order[start : start + batch_size]]
