"""Document-level Transformer encoder (Section IV-A1).

Consumes the sentence vectors from :class:`~repro.core.sentence_encoder.
SentenceEncoder`, fuses each with its visual descriptor (``h* = [h ; v]``),
adds sentence-level 2-D layout, 1-D position and segment embeddings, and
contextualises the sequence with a Transformer stack.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..nn import Embedding, LayerNorm, Linear, Module, Parameter, Tensor
from ..nn import TransformerEncoder, concat
from ..nn import init as nn_init
from .config import ResuFormerConfig
from .embeddings import LayoutEmbedding

__all__ = ["DocumentEncoder"]


class DocumentEncoder(Module):
    """Sentence vectors (+ visual, layout) → contextual block states."""

    def __init__(
        self, config: ResuFormerConfig, rng: Optional[np.random.Generator] = None
    ):
        super().__init__()
        config.validate()
        rng = rng or nn_init.default_rng()
        self.config = config
        dim = config.document_dim
        self.visual_project = Linear(config.visual_dim, config.visual_proj_dim, rng=rng)
        self.layout_embedding = LayoutEmbedding(dim, config.layout_buckets, rng=rng)
        self.position = Embedding(config.max_document_sentences, dim, rng=rng)
        self.segment = Embedding(config.num_segments, dim, rng=rng)
        self.norm = LayerNorm(dim)
        self.encoder = TransformerEncoder(
            config.document_layers,
            dim,
            config.document_heads,
            ffn_dim=dim * config.ffn_multiplier,
            dropout=config.dropout,
            rng=rng,
        )
        #: The learned replacement vector ĥ for masked sentence slots
        #: (Objective #2, Section IV-A2).
        self.sentence_mask_vector = Parameter(
            nn_init.normal((dim,), rng, std=0.02)
        )

    # ------------------------------------------------------------------
    def fuse(self, sentence_vectors: Tensor, visual: np.ndarray) -> Tensor:
        """Two-modal sentence embeddings ``h* = [h ; proj(v)]``."""
        projected = self.visual_project(Tensor(np.asarray(visual, dtype=np.float64)))
        return concat([sentence_vectors, projected], axis=-1)

    def contextualize(
        self,
        fused: Tensor,
        sentence_layout: np.ndarray,
        positions: np.ndarray,
        segments: np.ndarray,
    ) -> Tensor:
        """Add layout/position/segment embeddings and run the Transformer."""
        m = fused.shape[0]
        if m > self.config.max_document_sentences:
            raise ValueError(
                f"{m} sentences exceed limit {self.config.max_document_sentences}"
            )
        embedded = (
            fused
            + self.layout_embedding(sentence_layout)
            + self.position(np.asarray(positions, dtype=np.int64))
            + self.segment(np.asarray(segments, dtype=np.int64))
        )
        embedded = self.norm(embedded)
        # The document encoder sees one document: batch dimension of 1.
        batched = embedded.reshape(1, m, self.config.document_dim)
        states = self.encoder(batched, attention_mask=np.ones((1, m)))
        return states.reshape(m, self.config.document_dim)

    def contextualize_batch(
        self,
        fused: Tensor,
        sentence_layout: np.ndarray,
        positions: np.ndarray,
        segments: np.ndarray,
        sentence_mask: np.ndarray,
    ) -> Tensor:
        """Batched variant of :meth:`contextualize` over ``(B, m, D)``.

        ``sentence_mask`` (``(B, m)`` 0/1) marks valid sentence slots;
        padded slots are excluded from attention so each document's states
        match a solo pass at its true length.
        """
        batch, m, _ = fused.shape
        if m > self.config.max_document_sentences:
            raise ValueError(
                f"{m} sentences exceed limit {self.config.max_document_sentences}"
            )
        embedded = (
            fused
            + self.layout_embedding(sentence_layout)
            + self.position(np.asarray(positions, dtype=np.int64))
            + self.segment(np.asarray(segments, dtype=np.int64))
        )
        embedded = self.norm(embedded)
        return self.encoder(embedded, attention_mask=sentence_mask)

    def infer_batch(
        self,
        sentence_vectors: np.ndarray,
        visual: np.ndarray,
        sentence_layout: np.ndarray,
        positions: np.ndarray,
        segments: np.ndarray,
        sentence_mask: np.ndarray,
    ) -> np.ndarray:
        """Raw-array :meth:`forward_batch` without sentence masking.

        Same pipeline as the graph path (fuse → embedding sums → norm →
        encoder), matching it at float64 to one-ulp LayerNorm round-off;
        the pipeline
        dtype follows ``sentence_vectors`` so a single-precision or
        quantized serving stack never widens back to float64.
        """
        batch, m, _ = sentence_vectors.shape
        if m > self.config.max_document_sentences:
            raise ValueError(
                f"{m} sentences exceed limit {self.config.max_document_sentences}"
            )
        dtype = sentence_vectors.dtype
        projected = self.visual_project.infer(np.asarray(visual, dtype=dtype))
        embedded = np.concatenate([sentence_vectors, projected], axis=-1)
        embedded += self.layout_embedding.infer(sentence_layout, dtype=dtype)
        embedded += self.position.lookup(
            np.asarray(positions, dtype=np.int64), dtype=dtype
        )
        embedded += self.segment.lookup(
            np.asarray(segments, dtype=np.int64), dtype=dtype
        )
        embedded = self.norm.infer(embedded)
        return self.encoder.infer(embedded, attention_mask=sentence_mask)

    def forward_batch(
        self,
        sentence_vectors: Tensor,
        visual: np.ndarray,
        sentence_layout: np.ndarray,
        positions: np.ndarray,
        segments: np.ndarray,
        sentence_mask: np.ndarray,
        mask_slots: Optional[np.ndarray] = None,
    ) -> Tuple[Tensor, Tensor]:
        """Batched full pass over padded ``(B, m, …)`` inputs.

        ``mask_slots``, if given, is a boolean ``(B, m)`` array; True slots
        enter the Transformer as the learned mask vector (the batched form
        of dynamic sentence masking) while the returned ``fused`` targets
        stay unmasked, exactly as in the per-document :meth:`forward`.
        """
        fused = self.fuse(sentence_vectors, visual)
        inputs = fused
        if mask_slots is not None:
            from ..nn import where

            mask_slots = np.asarray(mask_slots, dtype=bool)
            batch, m = mask_slots.shape
            dim = self.config.document_dim
            broadcast = np.repeat(mask_slots[:, :, None], dim, axis=2)
            mask_matrix = self.sentence_mask_vector.reshape(1, 1, dim) + Tensor(
                np.zeros((batch, m, dim))
            )
            inputs = where(broadcast, mask_matrix, fused)
        states = self.contextualize_batch(
            inputs, sentence_layout, positions, segments, sentence_mask
        )
        return states, fused

    def forward(
        self,
        sentence_vectors: Tensor,
        visual: np.ndarray,
        sentence_layout: np.ndarray,
        positions: np.ndarray,
        segments: np.ndarray,
        mask_slots: Optional[np.ndarray] = None,
    ) -> Tuple[Tensor, Tensor]:
        """Full pass; optionally mask sentence slots for pre-training.

        Args:
            mask_slots: optional boolean ``(m,)`` array; True slots have
                their fused embedding replaced with the learned mask vector
                (dynamic sentence masking of Objective #2).

        Returns:
            ``(contextual_states, fused_targets)`` — both ``(m, D)``; the
            fused (unmasked) embeddings serve as contrastive ground truth.
        """
        fused = self.fuse(sentence_vectors, visual)
        inputs = fused
        if mask_slots is not None:
            mask_slots = np.asarray(mask_slots, dtype=bool)
            m = fused.shape[0]
            broadcast = np.repeat(mask_slots[:, None], self.config.document_dim, axis=1)
            from ..nn import where

            mask_matrix = self.sentence_mask_vector.reshape(
                1, self.config.document_dim
            ) + Tensor(np.zeros((m, self.config.document_dim)))
            inputs = where(broadcast, mask_matrix, fused)
        states = self.contextualize(inputs, sentence_layout, positions, segments)
        return states, fused
