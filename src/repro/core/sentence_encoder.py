"""Sentence-level Transformer encoder (Section IV-A1).

Encodes each sentence's WordPiece tokens with text + 2-D layout embeddings
(Eq. 1–2 summed), runs the Transformer stack, takes the ``[CLS]`` slot, and
applies the paper's extra dense layer with L2 normalisation to produce the
sentence representation ``h_j``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..nn import Linear, Module, Tensor, TransformerEncoder
from ..nn import init as nn_init
from ..nn.functional import l2_normalize
from .config import ResuFormerConfig
from .embeddings import LayoutEmbedding, TextEmbedding

__all__ = ["SentenceEncoder"]


class SentenceEncoder(Module):
    """Token sequences → contextual token states and sentence vectors."""

    def __init__(
        self, config: ResuFormerConfig, rng: Optional[np.random.Generator] = None
    ):
        super().__init__()
        config.validate()
        rng = rng or nn_init.default_rng()
        self.config = config
        self.text_embedding = TextEmbedding(
            config.vocab_size,
            config.hidden_dim,
            max_positions=config.max_sentence_tokens + 1,  # +1 for [CLS]
            num_segments=config.num_segments,
            rng=rng,
        )
        self.layout_embedding = LayoutEmbedding(
            config.hidden_dim, config.layout_buckets, rng=rng
        )
        self.encoder = TransformerEncoder(
            config.sentence_layers,
            config.hidden_dim,
            config.sentence_heads,
            ffn_dim=config.hidden_dim * config.ffn_multiplier,
            dropout=config.dropout,
            rng=rng,
        )
        self.pooler = Linear(config.hidden_dim, config.hidden_dim, rng=rng)

    def forward(
        self,
        token_ids: np.ndarray,
        token_mask: np.ndarray,
        token_layout: np.ndarray,
        token_segments: np.ndarray,
    ) -> Tuple[Tensor, Tensor]:
        """Encode a batch of sentences.

        Args:
            token_ids: ``(m, t)`` WordPiece ids with ``[CLS]`` first.
            token_mask: ``(m, t)`` validity mask.
            token_layout: ``(m, t, 7)`` bucketised layout tuples.
            token_segments: ``(m, t)`` segment symbols.

        Returns:
            ``(token_states, sentence_vectors)``: the contextual token
            representations ``(m, t, d)`` and the pooled, L2-normalised
            sentence vectors ``(m, d)``.
        """
        embedded = self.text_embedding(token_ids, token_segments)
        embedded = embedded + self.layout_embedding(token_layout)
        states = self.encoder(embedded, attention_mask=token_mask)
        cls = states[:, 0, :]
        pooled = self.pooler(cls).tanh()
        return states, l2_normalize(pooled, axis=-1)
