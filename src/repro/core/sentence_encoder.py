"""Sentence-level Transformer encoder (Section IV-A1).

Encodes each sentence's WordPiece tokens with text + 2-D layout embeddings
(Eq. 1–2 summed), runs the Transformer stack, takes the ``[CLS]`` slot, and
applies the paper's extra dense layer with L2 normalisation to produce the
sentence representation ``h_j``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..nn import Linear, Module, Tensor, TransformerEncoder
from ..nn import init as nn_init
from ..nn.functional import l2_normalize
from ..nn.tensor import is_grad_enabled
from .config import ResuFormerConfig
from .embeddings import LayoutEmbedding, TextEmbedding

__all__ = ["SentenceEncoder"]


class SentenceEncoder(Module):
    """Token sequences → contextual token states and sentence vectors."""

    def __init__(
        self, config: ResuFormerConfig, rng: Optional[np.random.Generator] = None
    ):
        super().__init__()
        config.validate()
        rng = rng or nn_init.default_rng()
        self.config = config
        self.text_embedding = TextEmbedding(
            config.vocab_size,
            config.hidden_dim,
            max_positions=config.max_sentence_tokens + 1,  # +1 for [CLS]
            num_segments=config.num_segments,
            rng=rng,
        )
        self.layout_embedding = LayoutEmbedding(
            config.hidden_dim, config.layout_buckets, rng=rng
        )
        self.encoder = TransformerEncoder(
            config.sentence_layers,
            config.hidden_dim,
            config.sentence_heads,
            ffn_dim=config.hidden_dim * config.ffn_multiplier,
            dropout=config.dropout,
            rng=rng,
        )
        self.pooler = Linear(config.hidden_dim, config.hidden_dim, rng=rng)

    def forward(
        self,
        token_ids: np.ndarray,
        token_mask: np.ndarray,
        token_layout: np.ndarray,
        token_segments: np.ndarray,
    ) -> Tuple[Tensor, Tensor]:
        """Encode a batch of sentences.

        Args:
            token_ids: ``(m, t)`` WordPiece ids with ``[CLS]`` first.
            token_mask: ``(m, t)`` validity mask.
            token_layout: ``(m, t, 7)`` bucketised layout tuples.
            token_segments: ``(m, t)`` segment symbols.

        Returns:
            ``(token_states, sentence_vectors)``: the contextual token
            representations ``(m, t, d)`` and the pooled, L2-normalised
            sentence vectors ``(m, d)``.
        """
        if (
            not is_grad_enabled()
            and self.encoder.fused_inference
            and self.encoder._dropout_inactive()
        ):
            states, vectors = self._forward_inference(
                token_ids, token_mask, token_layout, token_segments
            )
            return Tensor(states), Tensor(vectors)
        embedded = self.text_embedding(token_ids, token_segments)
        embedded = embedded + self.layout_embedding(token_layout)
        states = self.encoder(embedded, attention_mask=token_mask)
        cls = states[:, 0, :]
        pooled = self.pooler(cls).tanh()
        return states, l2_normalize(pooled, axis=-1)

    def _forward_inference(
        self,
        token_ids: np.ndarray,
        token_mask: np.ndarray,
        token_layout: np.ndarray,
        token_segments: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Whole-pipeline forward on raw arrays — embeddings through
        pooling without Tensor boxing.  At float64 the result matches
        the graph path to a few ulp of GEMM/LayerNorm round-off; under
        quantization the encoder stack (and its quantized GEMMs) runs in
        float32."""
        embedded = self.text_embedding.infer(token_ids, token_segments)
        embedded = embedded + self.layout_embedding.infer(token_layout)
        states = self.encoder.infer(embedded, attention_mask=token_mask)
        cls = states[:, 0, :]
        pooled = np.tanh(self.pooler.infer(cls))
        norm = np.sqrt((pooled * pooled).sum(axis=-1, keepdims=True) + 1e-12)
        return states, pooled / norm

    def infer_buckets(self, buckets) -> np.ndarray:
        """Sentence vectors for several width buckets in one ragged pass.

        ``buckets`` is an iterable of ``(token_ids, token_mask,
        token_layout, token_segments)`` groups, each padded to its own
        width.  All per-token work — embeddings, QKV/FFN projections,
        layer norms, the pooler — runs on one concatenated ``(Σ n·t, d)``
        buffer; only the attention core runs per bucket (see
        :meth:`TransformerEncoder.infer_block`).  Returns the ``(Σ n, d)``
        L2-normalised sentence vectors in bucket order, bitwise identical
        at float64 to encoding each bucket separately.
        """
        dtype = self.encoder.inference_dtype
        ids_parts, seg_parts, lay_parts, pos_parts = [], [], [], []
        blocks, masks = [], []
        offset = 0
        for token_ids, token_mask, token_layout, token_segments in buckets:
            token_ids = np.asarray(token_ids, dtype=np.int64)
            rows, width = token_ids.shape
            ids_parts.append(token_ids.reshape(-1))
            seg_parts.append(np.asarray(token_segments, dtype=np.int64).reshape(-1))
            lay_parts.append(
                np.asarray(token_layout, dtype=np.int64).reshape(rows * width, -1)
            )
            pos_parts.append(
                np.broadcast_to(np.arange(width), (rows, width)).reshape(-1)
            )
            blocks.append((offset, rows, width))
            masks.append(token_mask)
            offset += rows * width
        flat = self.text_embedding.infer(
            np.concatenate(ids_parts),
            np.concatenate(seg_parts),
            dtype=dtype,
            positions=np.concatenate(pos_parts),
        )
        flat += self.layout_embedding.infer(
            np.concatenate(lay_parts, axis=0), dtype=dtype
        )
        states = self.encoder.infer_block(flat, blocks, masks)
        cls_rows = [
            states[offset : offset + rows * width : width]
            for offset, rows, width in blocks
        ]
        cls = cls_rows[0] if len(cls_rows) == 1 else np.concatenate(cls_rows, axis=0)
        pooled = np.tanh(self.pooler.infer(cls))
        norm = np.sqrt((pooled * pooled).sum(axis=-1, keepdims=True) + 1e-12)
        return pooled / norm
