"""Knowledge distillation for block classification (Algorithm 1).

A token-level multimodal teacher (LayoutXLM in the paper;
:class:`repro.baselines.LayoutXlmLike` here) trained on the small labeled
set auto-annotates the unlabeled pool with hard pseudo sentence labels.
Our model then trains on the pseudo-labeled pool before a final fine-tune
on the human-labeled data.
"""

from __future__ import annotations

from typing import Dict, List, Protocol, Sequence

from .. import obs
from ..docmodel.document import ResumeDocument
from ..docmodel.labels import BLOCK_SCHEME, IobScheme
from .block_classifier import BlockTrainer, LabeledDocument

__all__ = ["SentenceLabeler", "pseudo_label", "run_distillation"]


class SentenceLabeler(Protocol):
    """Anything that can produce sentence-level IOB labels for a document."""

    def predict(self, document: ResumeDocument) -> List[str]:
        """Return one IOB label string per sentence."""
        ...


def pseudo_label(
    teacher: SentenceLabeler,
    documents: Sequence[ResumeDocument],
    scheme: IobScheme = BLOCK_SCHEME,
) -> List[LabeledDocument]:
    """Step 3 of Algorithm 1: hard pseudo-labels for the unlabeled pool.

    Token-level teachers predict per token; their ``predict`` implementations
    convert to sentence labels by majority vote (footnote 3 of the paper).
    """
    labeled: List[LabeledDocument] = []
    with obs.trace("distill.pseudo_label", documents=len(documents)):
        for document in documents:
            labels = teacher.predict(document)
            ids = [
                scheme.label_id(label) if label in scheme.labels else scheme.outside_id
                for label in labels
            ]
            labeled.append(LabeledDocument(document, ids))
    telemetry = obs.get_telemetry()
    if telemetry is not None:
        telemetry.metrics.counter("distill.pseudo_documents").inc(len(labeled))
    return labeled


def run_distillation(
    trainer: BlockTrainer,
    labeled: Sequence[LabeledDocument],
    pseudo: Sequence[LabeledDocument],
    validation: Sequence[LabeledDocument] = (),
    pseudo_epochs: int = 2,
    finetune_epochs: int = 4,
    patience: int = 4,
) -> Dict[str, List[float]]:
    """Steps 4–5 of Algorithm 1: pseudo-label training, then fine-tuning.

    Returns the merged training history of both stages.
    """
    history: Dict[str, List[float]] = {"loss": [], "val_accuracy": []}
    if pseudo:
        with obs.trace("distill.pseudo_train",
                       documents=len(pseudo) + len(labeled)):
            stage1 = trainer.fit(
                list(pseudo) + list(labeled),
                validation=validation,
                epochs=pseudo_epochs,
                patience=max(pseudo_epochs, 1),
            )
        for key in history:
            history[key].extend(stage1.get(key, []))
    with obs.trace("distill.finetune", documents=len(labeled)):
        stage2 = trainer.fit(
            labeled, validation=validation, epochs=finetune_epochs, patience=patience
        )
    for key in history:
        history[key].extend(stage2.get(key, []))
    return history
