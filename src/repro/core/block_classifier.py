"""Resume block classification: fine-tuning head and trainer (Section IV-A3).

A BiLSTM (Eq. 8) over the document-contextual sentence states feeds an MLP
that emits per-sentence tag scores; a linear-chain CRF provides the training
loss (forward algorithm) and test-time decoding (Viterbi).  Training uses
the paper's two-speed optimiser: a slow learning rate for the pre-trained
hierarchical encoder and a fast one for the randomly initialised head.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import obs
from ..docmodel.document import ResumeDocument
from ..docmodel.labels import BLOCK_SCHEME, IobScheme
from ..nn import AdamW, BiLstm, LinearChainCrf, Mlp, Module, ParamGroup, Tensor
from ..nn import no_grad
from ..nn.tensor import is_grad_enabled
from ..nn import init as nn_init
from ..nn import quantize as nn_quantize
from .batching import DocumentBatch, collate_documents, collate_labels
from .featurize import DocumentFeatures, Featurizer
from .hierarchical import HierarchicalEncoder
from .training import GradAccumulator, iter_minibatches

__all__ = ["BlockClassifier", "BlockTrainer", "LabeledDocument"]

#: Histogram boundaries for ratio-valued metrics (padding waste).
_RATIO_BUCKETS = tuple(i / 10 for i in range(1, 11))
#: Histogram boundaries for batch sizes.
_BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)


@dataclass
class LabeledDocument:
    """A document paired with sentence-level IOB label ids."""

    document: ResumeDocument
    labels: List[int]

    @classmethod
    def from_gold(
        cls, document: ResumeDocument, scheme: IobScheme = BLOCK_SCHEME
    ) -> "LabeledDocument":
        return cls(document, document.block_iob_labels(scheme))


class BlockClassifier(Module):
    """Hierarchical encoder + BiLSTM + MLP + CRF block tagger."""

    def __init__(
        self,
        encoder: HierarchicalEncoder,
        featurizer: Featurizer,
        scheme: IobScheme = BLOCK_SCHEME,
        lstm_hidden: int = 32,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or nn_init.default_rng()
        self.encoder = encoder
        self.featurizer = featurizer
        self.scheme = scheme
        #: Kept so data-parallel workers can rebuild a structurally
        #: identical replica from config-level payloads alone.
        self.lstm_hidden = lstm_hidden
        dim = encoder.config.document_dim
        self.bilstm = BiLstm(dim, lstm_hidden, rng=rng)
        self.mlp = Mlp(
            [2 * lstm_hidden, lstm_hidden, scheme.num_labels], rng=rng
        )
        self.crf = LinearChainCrf(scheme.num_labels, rng=rng)
        self._quantized = False

    # ------------------------------------------------------------------
    # Inference precision (see ResuFormerConfig.inference_precision)
    # ------------------------------------------------------------------
    def quantize_for_inference(
        self, calibration_documents: Sequence[ResumeDocument] = ()
    ) -> int:
        """Swap the model's Linears for int8 kernels and calibrate.

        The calibration pass pushes held-out documents through the
        quantized stack while it records activation ranges, freezing a
        per-layer activation scale so serving results are independent of
        batch composition.  Returns the number of quantized layers;
        idempotent.  Training requires :meth:`dequantize` first.
        """
        count = nn_quantize.quantize_model(self)
        self._quantized = True
        if calibration_documents:
            self.eval()
            features = [
                self.featurizer.featurize(d) for d in calibration_documents
            ]
            with nn_quantize.calibration(self), no_grad():
                self.emissions_batch(collate_documents(features))
        return count

    def dequantize(self) -> int:
        """Restore the float layers swapped out by :meth:`quantize_for_inference`."""
        self._quantized = False
        return nn_quantize.dequantize(self)

    def _ensure_inference_precision(
        self, documents: Sequence[ResumeDocument]
    ) -> str:
        """Lazily apply the configured serving precision; returns it.

        ``int8`` quantizes on first use, calibrating on a slice of the
        incoming documents; ``float32`` flips the fused encoder kernels
        to single precision; the default ``float64`` is a no-op (the
        fused kernels already serve at full precision).
        """
        precision = getattr(
            self.encoder.config, "inference_precision", "float64"
        )
        if precision == "int8" and not self._quantized:
            self.quantize_for_inference(documents[:8])
        elif precision == "float32" and not self._quantized:
            for module in self.modules():
                if hasattr(module, "inference_dtype"):
                    module.inference_dtype = np.float32
        return precision

    # ------------------------------------------------------------------
    def emissions(self, features: DocumentFeatures) -> Tensor:
        """Per-sentence tag scores ``(1, m, num_labels)``."""
        encoded = self.encoder(features)
        m = features.num_sentences
        hidden = self.bilstm(
            encoded.contextual.reshape(1, m, self.encoder.config.document_dim)
        )
        return self.mlp(hidden)

    def loss(self, features: DocumentFeatures, labels: Sequence[int]) -> Tensor:
        """CRF negative log-likelihood for one document."""
        labels = np.asarray(labels, dtype=np.int64)[: features.num_sentences]
        emissions = self.emissions(features)
        return self.crf.neg_log_likelihood(emissions, labels[None, :])

    # ------------------------------------------------------------------
    def _fused_inference_active(self) -> bool:
        """Whether every encoder stack routes no-grad calls to fused kernels."""
        from ..nn import TransformerEncoder

        stacks = [m for m in self.modules() if isinstance(m, TransformerEncoder)]
        return bool(stacks) and all(m.fused_inference for m in stacks)

    def predict(self, document: ResumeDocument) -> List[str]:
        """Sentence-level IOB labels for one document (Viterbi decode)."""
        self._ensure_inference_precision([document])
        features = self.featurizer.featurize(document)
        self.eval()
        with no_grad():
            emissions = self.emissions(features)
        path = self.crf.decode(emissions)[0]
        labels = self.scheme.decode(path)
        # Sentences beyond the encoder's cap inherit 'O'.
        labels += ["O"] * (document.num_sentences - len(labels))
        return labels

    def emissions_batch(self, batch: DocumentBatch) -> Tensor:
        """Per-sentence tag scores ``(B, m_max, num_labels)`` for a batch.

        Under ``no_grad`` with the fused kernels active, the entire
        pipeline — sentence encoder, document encoder, BiLSTM and MLP —
        runs on raw ndarrays in the serving dtype.  At float64 the
        result matches the graph path to GEMM and LayerNorm round-off
        (a few ulp).
        """
        if not is_grad_enabled() and self.encoder._inference_ready():
            contextual = self.encoder.infer_batch(batch)
            hidden = self.bilstm.infer(contextual, mask=batch.sentence_mask)
            return Tensor(self.mlp.infer(hidden))
        contextual = self.encoder.encode_batch(batch)
        hidden = self.bilstm(contextual, mask=batch.sentence_mask)
        return self.mlp(hidden)

    def loss_batch(self, batch: DocumentBatch, labels: np.ndarray) -> Tensor:
        """Masked batched CRF NLL over padded ``(B, m_max)`` label tensors.

        ``labels`` comes from :func:`repro.core.collate_labels`.  The CRF
        normalises by the batch size, so the value equals the mean of the
        per-document :meth:`loss` values — one padded forward/backward pass
        replaces B separate ones.
        """
        emissions = self.emissions_batch(batch)
        return self.crf.neg_log_likelihood(
            emissions, labels, mask=batch.sentence_mask
        )

    def predict_batch(
        self,
        documents: Sequence[ResumeDocument],
        batch_size: int = 8,
        profile=None,
    ) -> List[List[str]]:
        """Sentence-level IOB labels for many documents at once.

        Documents are featurised (through the cache), padded into
        cross-document batches of ``batch_size``, and pushed through the
        batched encoder/BiLSTM/Viterbi kernels — one python-level time loop
        per batch instead of one per document.  Results are identical to
        per-document :meth:`predict`.

        ``profile``, if given, is a :class:`repro.eval.timing.StageProfile`
        (or any object with a ``stage(name)`` context manager) that
        accumulates per-stage wall time under the keys ``featurize``,
        ``encode`` and ``decode``.  Independently, an active
        :mod:`repro.obs` telemetry session records the same stages as
        nested spans plus batch-size and padding-waste histograms.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")

        def stage(name: str):
            if profile is None:
                return contextlib.nullcontext()
            return profile.stage(name)

        precision = self._ensure_inference_precision(documents)
        self.eval()
        telemetry = obs.get_telemetry()
        fused = self._fused_inference_active()
        # Chunk documents in ascending sentence-count order so each padded
        # batch is near-homogeneous (results land back in input order; each
        # document's labels are invariant to its batch-mates).
        order = sorted(range(len(documents)), key=lambda i: documents[i].num_sentences)
        results: List[Optional[List[str]]] = [None] * len(documents)
        with obs.trace("predict_batch", documents=len(documents),
                       batch_size=batch_size, precision=precision,
                       fused=fused):
            for start in range(0, len(order), batch_size):
                indices = order[start : start + batch_size]
                chunk = [documents[i] for i in indices]
                with stage("featurize"), obs.trace("featurize", batch=len(chunk)):
                    features = [self.featurizer.featurize(d) for d in chunk]
                    batch = collate_documents(features)
                if telemetry is not None:
                    # Fraction of padded sentence slots that are wasted on
                    # padding — the price of ragged batching.
                    slots = batch.sentence_mask.size
                    waste = 1.0 - float(batch.lengths.sum()) / slots if slots else 0.0
                    telemetry.metrics.histogram(
                        "inference.padding_waste", buckets=_RATIO_BUCKETS
                    ).observe(waste)
                    telemetry.metrics.histogram(
                        "inference.batch_size", buckets=_BATCH_BUCKETS
                    ).observe(len(chunk))
                    telemetry.metrics.counter("inference.documents").inc(len(chunk))
                with stage("encode"), obs.trace(
                    "encode", batch=len(chunk), fused=fused, precision=precision
                ), no_grad():
                    emissions = self.emissions_batch(batch)
                if telemetry is not None and fused:
                    telemetry.metrics.counter("encode.fused.batches").inc()
                with stage("decode"), obs.trace("decode", batch=len(chunk)):
                    paths = self.crf.decode(emissions, batch.sentence_mask)
                chunk_labels: List[List[str]] = []
                for index, document, path in zip(indices, chunk, paths):
                    labels = self.scheme.decode(path)
                    labels += ["O"] * (document.num_sentences - len(labels))
                    results[index] = labels
                    chunk_labels.append(labels)
                if telemetry is not None and telemetry.drift is not None:
                    self._observe_drift(
                        telemetry.drift, chunk, features, batch, emissions,
                        chunk_labels,
                    )
        if telemetry is not None and self._quantized:
            for name, value in nn_quantize.quantization_report(self).items():
                telemetry.metrics.gauge(name).set(value)
        return results

    def _observe_drift(
        self, monitor, chunk, features, batch, emissions, predictions
    ) -> None:
        """Feed one decoded chunk to the session's drift monitor.

        CRF confidences come from forward-backward marginals — an extra
        pass over the emissions — so they are computed only when the
        reference profile actually tracks ``crf_confidence``.
        """
        from ..obs import drift as obs_drift

        confidences = None
        if monitor.wants("crf_confidence"):
            with obs.trace("drift.crf_marginals", batch=len(chunk)):
                marginals = self.crf.marginals(emissions, batch.sentence_mask)
            best = marginals.max(axis=2)
            lengths = batch.sentence_mask.sum(axis=1).astype(np.int64)
            confidences = [
                float(value)
                for row, length in zip(best, lengths)
                for value in row[:length]
            ]
        monitor.observe(
            obs_drift.document_observations(
                chunk,
                features=features,
                unk_id=self.featurizer.tokenizer.vocab.unk_id,
                predictions=predictions,
                confidences=confidences,
            )
        )

    def predict_block_tags(self, document: ResumeDocument) -> List[str]:
        """Bare block tag per sentence ('O' outside any block)."""
        return [
            label if label == "O" else label[2:]
            for label in self.predict(document)
        ]

    def predict_token_tags(self, document: ResumeDocument) -> List[str]:
        """Expand sentence predictions to token level (area metrics)."""
        sentence_tags = self.predict_block_tags(document)
        token_tags: List[str] = []
        for sentence, tag in zip(document.sentences, sentence_tags):
            token_tags.extend([tag] * len(sentence.tokens))
        return token_tags


class BlockTrainer:
    """Two-speed fine-tuning with early stopping on validation accuracy."""

    def __init__(
        self,
        model: BlockClassifier,
        encoder_lr: float = 1e-3,
        head_lr: float = 5e-3,
        weight_decay: float = 0.01,
        max_grad_norm: float = 5.0,
        seed: int = 0,
    ):
        self.model = model
        self.rng = np.random.default_rng(seed)
        encoder_params = model.encoder.parameters()
        head_params = (
            model.bilstm.parameters()
            + model.mlp.parameters()
            + model.crf.parameters()
        )
        self.optimizer = AdamW(
            [ParamGroup(encoder_params, encoder_lr), ParamGroup(head_params, head_lr)],
            weight_decay=weight_decay,
        )
        self.max_grad_norm = max_grad_norm

    # ------------------------------------------------------------------
    def fit(
        self,
        train: Sequence[LabeledDocument],
        validation: Sequence[LabeledDocument] = (),
        epochs: int = 5,
        patience: int = 2,
        batch_size: int = 4,
        grad_accumulation: int = 1,
        num_workers: int = 0,
    ) -> Dict[str, List[float]]:
        """Train with mini-batch optimizer steps; restores the best-validation
        parameters before returning.

        Each step collates ``batch_size`` documents into one padded
        :class:`DocumentBatch` and backprops the masked batched CRF loss —
        one optimizer step per mini-batch instead of per document.
        ``grad_accumulation`` accumulates that many mini-batches before
        stepping, so the effective batch is ``batch_size *
        grad_accumulation`` without growing the padded forward pass.

        ``num_workers >= 1`` switches to synchronous data-parallel steps
        (``repro.parallel``): each mini-batch is sharded across worker
        replicas and the weighted-mean all-reduce reproduces the exact
        single-replica gradient, so the trained parameters are identical
        for every worker count (with ``dropout=0``; see docs/API.md §14).
        """
        if num_workers:
            if grad_accumulation != 1:
                raise ValueError(
                    "grad_accumulation is not supported with num_workers; "
                    "raise batch_size instead (shards keep the padded "
                    "forward pass small)"
                )
            return self._fit_parallel(
                train, validation, epochs=epochs, patience=patience,
                batch_size=batch_size, num_workers=num_workers,
            )
        features = [
            (self.model.featurizer.featurize(item.document), item.labels)
            for item in train
        ]
        # Chunks of similarly-sized documents keep the padded kernels from
        # paying the longest document's cost on every row.
        lengths = [f.num_sentences for f, _ in features]
        engine = GradAccumulator(
            self.optimizer,
            self.model.parameters(),
            max_grad_norm=self.max_grad_norm,
            accumulation=grad_accumulation,
        )
        history: Dict[str, List[float]] = {"loss": [], "val_accuracy": []}
        best_score = -np.inf
        best_state = None
        bad_epochs = 0
        telemetry = obs.get_telemetry()
        step_index = 0
        for epoch_index in range(epochs):
            epoch_loss = 0.0
            self.model.train()
            with obs.trace("block_train.epoch", epoch=epoch_index):
                for chunk in iter_minibatches(
                    len(features), batch_size, rng=self.rng, lengths=lengths
                ):
                    docs = [features[i][0] for i in chunk]
                    batch = collate_documents(docs)
                    labels = collate_labels(docs, [features[i][1] for i in chunk])
                    loss = self.model.loss_batch(batch, labels)
                    stepped = engine.backward(loss, weight=len(chunk))
                    epoch_loss += float(loss.data) * len(chunk)
                    if telemetry is not None:
                        step_index += 1
                        telemetry.metrics.counter("train.documents").inc(len(chunk))
                        telemetry.event(
                            "step",
                            phase="block_train",
                            step=step_index,
                            epoch=epoch_index,
                            losses={"crf": float(loss.data)},
                            documents=len(chunk),
                            grad_norm=engine.last_grad_norm if stepped else None,
                        )
                engine.flush()
            history["loss"].append(epoch_loss / max(len(features), 1))
            if telemetry is not None:
                telemetry.event(
                    "epoch",
                    phase="block_train",
                    epoch=epoch_index,
                    loss=history["loss"][-1],
                )

            if validation:
                score = self.sentence_accuracy(validation)
                history["val_accuracy"].append(score)
                if telemetry is not None:
                    telemetry.event(
                        "eval",
                        phase="block_train",
                        epoch=epoch_index,
                        val_accuracy=score,
                    )
                if score > best_score:
                    best_score, bad_epochs = score, 0
                    best_state = self.model.state_dict()
                else:
                    bad_epochs += 1
                    if bad_epochs >= patience:
                        break
        if best_state is not None:
            self.model.load_state_dict(best_state)
        return history

    def _fit_parallel(
        self,
        train: Sequence[LabeledDocument],
        validation: Sequence[LabeledDocument],
        epochs: int,
        patience: int,
        batch_size: int,
        num_workers: int,
    ) -> Dict[str, List[float]]:
        """Data-parallel :meth:`fit`: same batch order, sharded gradients.

        The mini-batch sequence comes from the parent's RNG exactly as in
        single-process training; each batch is sharded across the workers
        and reduced into one weighted-mean step, so the optimizer sees
        the same per-batch gradient for every worker count.  Validation
        sweeps and early stopping stay parent-side.
        """
        from ..parallel import (
            DataParallelEngine,
            init_block_worker,
            make_runner,
            param_layout,
            param_size,
            publish_cache_hit_rates,
        )

        model = self.model
        documents = [item.document for item in train]
        cap = model.encoder.config.max_document_sentences
        lengths = [min(d.num_sentences, cap) for d in documents]
        parameters = model.parameters()
        payload = {
            "config": model.encoder.config,
            "tokenizer": model.featurizer.tokenizer,
            "scheme": model.scheme,
            "lstm_hidden": model.lstm_hidden,
            "documents": documents,
            "labels": [item.labels for item in train],
            "layout": param_layout(parameters),
        }
        history: Dict[str, List[float]] = {"loss": [], "val_accuracy": []}
        best_score = -np.inf
        best_state = None
        bad_epochs = 0
        telemetry = obs.get_telemetry()
        step_index = 0
        with make_runner(
            num_workers, init_block_worker, payload, param_size(parameters)
        ) as runner:
            engine = DataParallelEngine(
                runner, self.optimizer, parameters,
                max_grad_norm=self.max_grad_norm,
            )
            for epoch_index in range(epochs):
                epoch_loss = 0.0
                with obs.trace(
                    "block_train.epoch", epoch=epoch_index, workers=num_workers
                ):
                    for chunk in iter_minibatches(
                        len(documents), batch_size, rng=self.rng, lengths=lengths
                    ):
                        results, batch_loss = engine.grad_step("grad", chunk)
                        publish_cache_hit_rates(results)
                        if batch_loss is not None:
                            epoch_loss += batch_loss * len(chunk)
                        if telemetry is not None:
                            step_index += 1
                            telemetry.metrics.counter("train.documents").inc(
                                len(chunk)
                            )
                            telemetry.event(
                                "step",
                                phase="block_train",
                                step=step_index,
                                epoch=epoch_index,
                                losses={"crf": batch_loss},
                                documents=len(chunk),
                                grad_norm=engine.last_grad_norm,
                            )
                history["loss"].append(epoch_loss / max(len(documents), 1))
                if telemetry is not None:
                    telemetry.event(
                        "epoch",
                        phase="block_train",
                        epoch=epoch_index,
                        loss=history["loss"][-1],
                    )
                if validation:
                    score = self.sentence_accuracy(validation)
                    history["val_accuracy"].append(score)
                    if telemetry is not None:
                        telemetry.event(
                            "eval",
                            phase="block_train",
                            epoch=epoch_index,
                            val_accuracy=score,
                        )
                    if score > best_score:
                        best_score, bad_epochs = score, 0
                        best_state = self.model.state_dict()
                    else:
                        bad_epochs += 1
                        if bad_epochs >= patience:
                            break
        if best_state is not None:
            self.model.load_state_dict(best_state)
        return history

    def sentence_accuracy(
        self, items: Sequence[LabeledDocument], batch_size: int = 8
    ) -> float:
        """Fraction of sentences whose predicted label id is correct.

        Runs through :meth:`BlockClassifier.predict_batch`, so per-epoch
        validation sweeps reuse cached features and the batched kernels.
        """
        predictions = self.model.predict_batch(
            [item.document for item in items], batch_size=batch_size
        )
        correct = 0
        total = 0
        for item, predicted in zip(items, predictions):
            gold = self.model.scheme.decode(
                item.labels[: len(predicted)]
            )
            correct += sum(1 for p, g in zip(predicted, gold) if p == g)
            total += len(gold)
        return correct / max(total, 1)
