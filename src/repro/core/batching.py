"""Cross-document batching for the batched inference engine.

Variable-length documents are packed two ways at once:

* **Token level** — every sentence of every document is stacked into one
  flat ``(n, t_max)`` block so the sentence encoder runs a single batched
  pass over the whole group of documents instead of one pass per document.
* **Sentence level** — per-document sentence arrays are padded to
  ``(B, m_max, …)`` with a 0/1 validity mask, the shape the document
  encoder, BiLSTM head and batched CRF consume.

``gather_index`` links the two: it maps each padded ``(document, slot)``
cell to its row in the flat sentence block (slot 0 for padding, which the
mask then zeroes), so un-flattening is a single fancy-index gather that
stays inside the autograd graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .featurize import DocumentFeatures

__all__ = ["DocumentBatch", "collate_documents", "collate_labels"]


@dataclass
class DocumentBatch:
    """Padded feature tensors for ``B`` documents (``n`` total sentences)."""

    features: List[DocumentFeatures]
    token_ids: np.ndarray        # (n, t_max) int
    token_mask: np.ndarray       # (n, t_max) 0/1
    token_layout: np.ndarray     # (n, t_max, 7) int
    token_segments: np.ndarray   # (n, t_max) int
    gather_index: np.ndarray     # (B, m_max) int — flat sentence row per slot
    sentence_mask: np.ndarray    # (B, m_max) 0/1 — valid sentence slots
    sentence_layout: np.ndarray  # (B, m_max, 7) int
    sentence_visual: np.ndarray  # (B, m_max, V) float
    sentence_positions: np.ndarray  # (B, m_max) int
    sentence_segments: np.ndarray   # (B, m_max) int
    lengths: np.ndarray          # (B,) sentences per document

    @property
    def batch_size(self) -> int:
        return self.sentence_mask.shape[0]

    @property
    def max_sentences(self) -> int:
        return self.sentence_mask.shape[1]

    @property
    def num_sentences(self) -> int:
        return self.token_ids.shape[0]


def collate_documents(features: Sequence[DocumentFeatures]) -> DocumentBatch:
    """Pad a group of featurised documents into one :class:`DocumentBatch`."""
    if not features:
        raise ValueError("cannot collate an empty batch")
    lengths = np.array([f.num_sentences for f in features], dtype=np.int64)
    batch = len(features)
    m_max = int(lengths.max())
    t_max = max(f.max_tokens for f in features)
    total = int(lengths.sum())
    visual_dim = features[0].sentence_visual.shape[1]

    token_ids = np.zeros((total, t_max), dtype=np.int64)
    token_mask = np.zeros((total, t_max), dtype=np.float64)
    token_layout = np.zeros((total, t_max, 7), dtype=np.int64)
    token_segments = np.zeros((total, t_max), dtype=np.int64)
    gather_index = np.zeros((batch, m_max), dtype=np.int64)
    sentence_mask = np.zeros((batch, m_max), dtype=np.float64)
    sentence_layout = np.zeros((batch, m_max, 7), dtype=np.int64)
    sentence_visual = np.zeros((batch, m_max, visual_dim), dtype=np.float64)
    sentence_positions = np.zeros((batch, m_max), dtype=np.int64)
    sentence_segments = np.zeros((batch, m_max), dtype=np.int64)

    offset = 0
    for row, f in enumerate(features):
        m, t = f.num_sentences, f.max_tokens
        flat = slice(offset, offset + m)
        token_ids[flat, :t] = f.token_ids
        token_mask[flat, :t] = f.token_mask
        token_layout[flat, :t] = f.token_layout
        token_segments[flat, :t] = f.token_segments
        gather_index[row, :m] = np.arange(offset, offset + m)
        sentence_mask[row, :m] = 1.0
        sentence_layout[row, :m] = f.sentence_layout
        sentence_visual[row, :m] = f.sentence_visual
        sentence_positions[row, :m] = f.sentence_positions
        sentence_segments[row, :m] = f.sentence_segments
        offset += m

    return DocumentBatch(
        features=list(features),
        token_ids=token_ids,
        token_mask=token_mask,
        token_layout=token_layout,
        token_segments=token_segments,
        gather_index=gather_index,
        sentence_mask=sentence_mask,
        sentence_layout=sentence_layout,
        sentence_visual=sentence_visual,
        sentence_positions=sentence_positions,
        sentence_segments=sentence_segments,
        lengths=lengths,
    )


def collate_labels(
    features: Sequence[DocumentFeatures],
    labels: Sequence[Sequence[int]],
    pad_value: int = 0,
) -> np.ndarray:
    """Pad per-document sentence label lists to ``(B, m_max)`` int64.

    Labels beyond a document's featurised sentence count are truncated
    (documents past the encoder cap), and padded slots get ``pad_value`` —
    the batched CRF masks them out, so the value never influences the loss.
    """
    if len(features) != len(labels):
        raise ValueError("features and labels must align one-to-one")
    m_max = max(f.num_sentences for f in features)
    out = np.full((len(features), m_max), pad_value, dtype=np.int64)
    for row, (f, item) in enumerate(zip(features, labels)):
        m = f.num_sentences
        ids = np.asarray(item, dtype=np.int64)[:m]
        if ids.shape[0] < m:
            raise ValueError(
                f"document {row} has {m} sentences but only {ids.shape[0]} labels"
            )
        out[row, :m] = ids
    return out
