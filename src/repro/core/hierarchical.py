"""The hierarchical multi-modal encoder (Figure 2).

Chains the sentence-level and document-level encoders over a featurised
document, exposing everything downstream consumers need: contextual token
states (for the masked layout-language model), fused sentence embeddings
(contrastive targets), and contextual sentence states (for block
classification and the other pre-training objectives).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..nn import Module, Tensor, concat
from ..nn import init as nn_init
from .batching import DocumentBatch
from .config import ResuFormerConfig
from .document_encoder import DocumentEncoder
from .featurize import DocumentFeatures
from .sentence_encoder import SentenceEncoder

__all__ = ["HierarchicalEncoder", "EncodedDocument"]


@dataclass
class EncodedDocument:
    """All intermediate representations for one document."""

    token_states: Tensor       # (m, t, d)   contextual WordPiece states
    sentence_vectors: Tensor   # (m, d)      pooled sentence representations
    fused: Tensor              # (m, D)      two-modal sentence embeddings h*
    contextual: Tensor         # (m, D)      document-contextual states h'


class HierarchicalEncoder(Module):
    """Sentence encoder + document encoder, end to end."""

    def __init__(
        self, config: ResuFormerConfig, rng: Optional[np.random.Generator] = None
    ):
        super().__init__()
        config.validate()
        rng = rng or nn_init.default_rng()
        self.config = config
        self.sentence_encoder = SentenceEncoder(config, rng=rng)
        self.document_encoder = DocumentEncoder(config, rng=rng)

    def forward(
        self,
        features: DocumentFeatures,
        sentence_mask_slots: Optional[np.ndarray] = None,
    ) -> EncodedDocument:
        token_states, sentence_vectors = self.sentence_encoder(
            features.token_ids,
            features.token_mask,
            features.token_layout,
            features.token_segments,
        )
        contextual, fused = self.document_encoder(
            sentence_vectors,
            features.sentence_visual,
            features.sentence_layout,
            features.sentence_positions,
            features.sentence_segments,
            mask_slots=sentence_mask_slots,
        )
        return EncodedDocument(
            token_states=token_states,
            sentence_vectors=sentence_vectors,
            fused=fused,
            contextual=contextual,
        )

    def _sentence_vectors_bucketed(
        self, batch: DocumentBatch, rows_per_bucket: int = 20, max_buckets: int = 16
    ) -> Tensor:
        """Sentence vectors ``(n, d)`` for the flat cross-document block.

        Attention cost is quadratic in the padded token width, so encoding
        every sentence at the chunk-global maximum wastes most of the work
        on padding.  Rows are sorted by true token count, encoded in up to
        ``max_buckets`` groups trimmed to each group's own maximum width,
        and scattered back into original order.  Trailing padding is inert
        (masked keys get exactly zero attention weight and pooling reads the
        ``[CLS]`` slot), so the result is identical to one untrimmed pass.
        """
        widths = batch.token_mask.sum(axis=1).astype(np.int64)
        order = np.argsort(widths, kind="stable")
        buckets = max(1, min(max_buckets, len(order) // rows_per_bucket))
        pieces = []
        for bucket in np.array_split(order, buckets):
            if bucket.size == 0:
                continue
            t = max(int(widths[bucket].max()), 1)
            _, vectors = self.sentence_encoder(
                batch.token_ids[bucket, :t],
                batch.token_mask[bucket, :t],
                batch.token_layout[bucket, :t],
                batch.token_segments[bucket, :t],
            )
            pieces.append(vectors)
        flat = pieces[0] if len(pieces) == 1 else concat(pieces, axis=0)
        inverse = np.empty(len(order), dtype=np.int64)
        inverse[order] = np.arange(len(order))
        return flat[inverse]

    def encode_batch(self, batch: DocumentBatch) -> Tensor:
        """Contextual sentence states ``(B, m_max, D)`` for a padded batch.

        The sentence encoder runs over the flat cross-document sentence
        block in length buckets; the gather back to ``(B, m_max, d)`` is a
        fancy-index on the autograd tensor, so the path is differentiable
        end to end.
        """
        sentence_vectors = self._sentence_vectors_bucketed(batch)
        padded = sentence_vectors[batch.gather_index]
        padded = padded * Tensor(batch.sentence_mask[:, :, None])
        contextual, _ = self.document_encoder.forward_batch(
            padded,
            batch.sentence_visual,
            batch.sentence_layout,
            batch.sentence_positions,
            batch.sentence_segments,
            batch.sentence_mask,
        )
        return contextual

    def summary(self) -> str:
        """Architecture overview string (the Figure-2 bench prints this)."""
        c = self.config
        lines = [
            "HierarchicalEncoder",
            f"  sentence encoder : {c.sentence_layers} layers x "
            f"{c.sentence_heads} heads, dim {c.hidden_dim}, "
            f"<= {c.max_sentence_tokens} tokens/sentence",
            "    inputs         : word + 1D-position + segment (Eq. 1)",
            "                     + 2D layout [page; x; y] (Eq. 2)",
            f"  document encoder : {c.document_layers} layers x "
            f"{c.document_heads} heads, dim {c.document_dim}, "
            f"<= {c.max_document_sentences} sentences/document",
            f"    inputs         : [h ; visual({c.visual_dim}->"
            f"{c.visual_proj_dim})] + sentence layout + 1D pos + segment",
            f"  parameters       : {self.num_parameters():,}",
        ]
        return "\n".join(lines)
