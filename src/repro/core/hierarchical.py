"""The hierarchical multi-modal encoder (Figure 2).

Chains the sentence-level and document-level encoders over a featurised
document, exposing everything downstream consumers need: contextual token
states (for the masked layout-language model), fused sentence embeddings
(contrastive targets), and contextual sentence states (for block
classification and the other pre-training objectives).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..nn import Module, Tensor, concat
from ..nn import init as nn_init
from ..nn.tensor import is_grad_enabled
from .batching import DocumentBatch
from .config import ResuFormerConfig
from .document_encoder import DocumentEncoder
from .featurize import DocumentFeatures
from .sentence_encoder import SentenceEncoder

__all__ = ["HierarchicalEncoder", "EncodedDocument", "EncodedBatch"]


@dataclass
class EncodedDocument:
    """All intermediate representations for one document."""

    token_states: Tensor       # (m, t, d)   contextual WordPiece states
    sentence_vectors: Tensor   # (m, d)      pooled sentence representations
    fused: Tensor              # (m, D)      two-modal sentence embeddings h*
    contextual: Tensor         # (m, D)      document-contextual states h'


@dataclass
class EncodedBatch:
    """Batched pre-training representations for a padded document batch."""

    fused: Tensor              # (B, m_max, D) unmasked two-modal embeddings
    contextual: Tensor         # (B, m_max, D) contextual states (slots masked)


class HierarchicalEncoder(Module):
    """Sentence encoder + document encoder, end to end."""

    def __init__(
        self, config: ResuFormerConfig, rng: Optional[np.random.Generator] = None
    ):
        super().__init__()
        config.validate()
        rng = rng or nn_init.default_rng()
        self.config = config
        self.sentence_encoder = SentenceEncoder(config, rng=rng)
        self.document_encoder = DocumentEncoder(config, rng=rng)

    def forward(
        self,
        features: DocumentFeatures,
        sentence_mask_slots: Optional[np.ndarray] = None,
    ) -> EncodedDocument:
        token_states, sentence_vectors = self.sentence_encoder(
            features.token_ids,
            features.token_mask,
            features.token_layout,
            features.token_segments,
        )
        contextual, fused = self.document_encoder(
            sentence_vectors,
            features.sentence_visual,
            features.sentence_layout,
            features.sentence_positions,
            features.sentence_segments,
            mask_slots=sentence_mask_slots,
        )
        return EncodedDocument(
            token_states=token_states,
            sentence_vectors=sentence_vectors,
            fused=fused,
            contextual=contextual,
        )

    def iter_sentence_buckets(
        self,
        token_ids: np.ndarray,
        token_mask: np.ndarray,
        token_layout: np.ndarray,
        token_segments: np.ndarray,
        rows_per_bucket: int = 20,
        max_buckets: int = 16,
    ):
        """Run the sentence encoder over a flat sentence block in buckets.

        Attention cost is quadratic in the padded token width, so encoding
        every sentence at the block-global maximum wastes most of the work
        on padding.  Rows are sorted by true token count and encoded in up
        to ``max_buckets`` groups trimmed to each group's own maximum width.
        Yields ``(rows, token_states, sentence_vectors)`` per bucket, where
        ``rows`` indexes the original block and the states are trimmed to
        the bucket width.  Trailing padding is inert (masked keys get
        exactly zero attention weight and pooling reads the ``[CLS]``
        slot), so results are identical to one untrimmed pass.
        """
        for bucket, t in self._bucket_groups(token_mask, rows_per_bucket, max_buckets):
            token_states, vectors = self.sentence_encoder(
                token_ids[bucket, :t],
                token_mask[bucket, :t],
                token_layout[bucket, :t],
                token_segments[bucket, :t],
            )
            yield bucket, token_states, vectors

    @staticmethod
    def _bucket_groups(token_mask, rows_per_bucket, max_buckets):
        """Width-sorted row groups and their trimmed widths."""
        widths = token_mask.sum(axis=1).astype(np.int64)
        order = np.argsort(widths, kind="stable")
        buckets = max(1, min(max_buckets, len(order) // rows_per_bucket))
        return [
            (bucket, max(int(widths[bucket].max()), 1))
            for bucket in np.array_split(order, buckets)
            if bucket.size > 0
        ]

    def _sentence_vectors_bucketed(
        self, batch: DocumentBatch, rows_per_bucket: int = 20, max_buckets: int = 16
    ) -> tuple:
        """Sentence vectors for the flat cross-document block.

        Returns ``(flat, inverse)`` where ``flat`` is the ``(n, d)`` tensor
        in *bucket* order and ``inverse[row]`` locates original block row
        ``row`` inside it.  Callers compose ``inverse`` into their own
        gather instead of materialising the reordered tensor — one fancy
        index (and one scatter on the way back) instead of two.
        """
        encoder = self.sentence_encoder
        groups = self._bucket_groups(batch.token_mask, rows_per_bucket, max_buckets)
        if (
            not is_grad_enabled()
            and encoder.encoder.fused_inference
            and encoder.encoder._dropout_inactive()
        ):
            # Forward-only ragged pass: one per-token buffer for every
            # bucket, attention per bucket (results identical — see
            # SentenceEncoder.infer_buckets).
            flat = Tensor(self._infer_bucket_vectors(batch, groups))
        else:
            pieces = []
            for bucket, t in groups:
                _, vectors = encoder(
                    batch.token_ids[bucket, :t],
                    batch.token_mask[bucket, :t],
                    batch.token_layout[bucket, :t],
                    batch.token_segments[bucket, :t],
                )
                pieces.append(vectors)
            flat = pieces[0] if len(pieces) == 1 else concat(pieces, axis=0)
        order = np.concatenate([bucket for bucket, _ in groups])
        inverse = np.empty(len(order), dtype=np.int64)
        inverse[order] = np.arange(len(order))
        return flat, inverse

    def _infer_bucket_vectors(self, batch: DocumentBatch, groups) -> np.ndarray:
        """Raw ragged sentence-vector pass over precomputed width groups."""
        return self.sentence_encoder.infer_buckets(
            (
                batch.token_ids[bucket, :t],
                batch.token_mask[bucket, :t],
                batch.token_layout[bucket, :t],
                batch.token_segments[bucket, :t],
            )
            for bucket, t in groups
        )

    def _inference_ready(self) -> bool:
        """Whether both stacks can run the raw forward-only kernels."""
        stacks = (self.sentence_encoder.encoder, self.document_encoder.encoder)
        return all(s.fused_inference and s._dropout_inactive() for s in stacks)

    def infer_batch(self, batch: DocumentBatch) -> np.ndarray:
        """Raw-array contextual sentence states ``(B, m_max, D)``.

        The whole pipeline — ragged sentence encoding, the gather back to
        padded shape, and the document encoder — runs on plain ndarrays:
        no graph bookkeeping and no float64 round trip between the two
        stacks.  Callers guard on ``no_grad`` + :meth:`_inference_ready`;
        the float64 result matches :meth:`encode_batch` to GEMM
        round-off (a few ulp).
        """
        groups = self._bucket_groups(batch.token_mask, 20, 16)
        flat = self._infer_bucket_vectors(batch, groups)
        order = np.concatenate([bucket for bucket, _ in groups])
        inverse = np.empty(len(order), dtype=np.int64)
        inverse[order] = np.arange(len(order))
        padded = flat[inverse[batch.gather_index]]
        padded *= batch.sentence_mask[:, :, None].astype(padded.dtype)
        return self.document_encoder.infer_batch(
            padded,
            batch.sentence_visual,
            batch.sentence_layout,
            batch.sentence_positions,
            batch.sentence_segments,
            batch.sentence_mask,
        )

    def encode_batch(self, batch: DocumentBatch) -> Tensor:
        """Contextual sentence states ``(B, m_max, D)`` for a padded batch.

        The sentence encoder runs over the flat cross-document sentence
        block in length buckets; the gather back to ``(B, m_max, d)`` is a
        fancy-index on the autograd tensor, so the path is differentiable
        end to end.
        """
        return self._encode_batch(batch).contextual

    def encode_batch_pretrain(
        self, batch: DocumentBatch, mask_slots: Optional[np.ndarray] = None
    ) -> EncodedBatch:
        """Batched masked encoding for the SCL/DNSP objectives.

        ``mask_slots`` (boolean ``(B, m_max)``) marks the sentence slots the
        document encoder sees as the learned mask vector; the returned
        ``fused`` embeddings stay unmasked and serve as the contrastive
        targets, mirroring the per-document ``forward(...,
        sentence_mask_slots=...)`` path document for document.
        """
        return self._encode_batch(batch, mask_slots=mask_slots)

    def _encode_batch(
        self, batch: DocumentBatch, mask_slots: Optional[np.ndarray] = None
    ) -> EncodedBatch:
        flat, inverse = self._sentence_vectors_bucketed(batch)
        padded = flat[inverse[batch.gather_index]]
        padded = padded * Tensor(batch.sentence_mask[:, :, None])
        contextual, fused = self.document_encoder.forward_batch(
            padded,
            batch.sentence_visual,
            batch.sentence_layout,
            batch.sentence_positions,
            batch.sentence_segments,
            batch.sentence_mask,
            mask_slots=mask_slots,
        )
        return EncodedBatch(fused=fused, contextual=contextual)

    def summary(self) -> str:
        """Architecture overview string (the Figure-2 bench prints this)."""
        c = self.config
        lines = [
            "HierarchicalEncoder",
            f"  sentence encoder : {c.sentence_layers} layers x "
            f"{c.sentence_heads} heads, dim {c.hidden_dim}, "
            f"<= {c.max_sentence_tokens} tokens/sentence",
            "    inputs         : word + 1D-position + segment (Eq. 1)",
            "                     + 2D layout [page; x; y] (Eq. 2)",
            f"  document encoder : {c.document_layers} layers x "
            f"{c.document_heads} heads, dim {c.document_dim}, "
            f"<= {c.max_document_sentences} sentences/document",
            f"    inputs         : [h ; visual({c.visual_dim}->"
            f"{c.visual_proj_dim})] + sentence layout + 1D pos + segment",
            f"  parameters       : {self.num_parameters():,}",
        ]
        return "\n".join(lines)
