"""Convert :class:`~repro.docmodel.ResumeDocument` into model input arrays.

Implements the input pipeline of Section IV-A1: WordPiece-tokenise each
sentence, prepend ``[CLS]``, normalise every token's bounding box to the
``[0, 1000]`` grid, and assemble the seven-tuple layout features
``(x_min, y_min, x_max, y_max, width, height, page)`` at both the token and
the sentence level, plus 1-D positions, segment symbols and the sentence
visual descriptors.
"""

from __future__ import annotations

import os
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..corpus.render import VISUAL_DIM, sentence_visual_features
from ..docmodel.document import ResumeDocument, Sentence
from ..docmodel.geometry import BBox
from ..text.wordpiece import WordPieceTokenizer
from .config import ResuFormerConfig

__all__ = ["DocumentFeatures", "FeatureCache", "Featurizer", "LAYOUT_FEATURES"]

#: Order of the per-token/per-sentence layout features.
LAYOUT_FEATURES = ("x_min", "y_min", "x_max", "y_max", "width", "height", "page")

_MAX_PAGES = 16

#: Every live FeatureCache, for the fork guard below.  Weak references:
#: registration must not keep discarded caches (and their features) alive.
_LIVE_CACHES: "weakref.WeakSet" = weakref.WeakSet()


def _clear_caches_after_fork() -> None:
    """Empty every inherited cache in a freshly forked child.

    Cache keys are parent-process object identities; in the child they
    alias whatever the child's allocator later places at those addresses,
    so an inherited entry could serve a *stale hit* for a different
    document.  Clearing on fork (stats preserved — the child continues
    the parent's counters) makes identity keying per-process by
    construction.  Spawned workers never inherit caches and are
    unaffected; the guard exists for ``fork``-start users.
    """
    for cache in list(_LIVE_CACHES):
        # The fork may have happened while another parent thread held the
        # cache lock; that holder does not exist in the child, so the
        # inherited lock could be permanently stuck.  Replace it before
        # taking it.
        cache._lock = threading.Lock()
        cache.clear(preserve_stats=True)


if hasattr(os, "register_at_fork"):  # not available on Windows
    os.register_at_fork(after_in_child=_clear_caches_after_fork)


@dataclass
class DocumentFeatures:
    """Dense arrays for one document (``m`` sentences, ``t`` token slots)."""

    token_ids: np.ndarray       # (m, t) int
    token_mask: np.ndarray      # (m, t) 0/1
    token_layout: np.ndarray    # (m, t, 7) int, bucketised
    token_segments: np.ndarray  # (m, t) int
    sentence_layout: np.ndarray  # (m, 7) int
    sentence_visual: np.ndarray  # (m, VISUAL_DIM) float
    sentence_positions: np.ndarray  # (m,) int
    sentence_segments: np.ndarray   # (m,) int

    @property
    def num_sentences(self) -> int:
        return self.token_ids.shape[0]

    @property
    def max_tokens(self) -> int:
        return self.token_ids.shape[1]


class FeatureCache:
    """LRU cache of :class:`DocumentFeatures` keyed by document identity.

    Keys are object identities guarded by a weak reference: a recycled
    ``id()`` from a garbage-collected document can never alias a live entry.
    Features are deterministic for a given document object, so repeated
    ``predict`` calls and per-epoch validation sweeps hit instead of
    re-running WordPiece tokenisation and layout bucketing.

    **Caches are strictly per-process.**  Identity keys are meaningless in
    any other process (same integer, different object), and the weakref
    guard cannot help because a forked child's aliases are *live* objects.
    Two defenses keep multi-process use safe: every cache clears itself in
    a forked child (``os.register_at_fork``, entries dropped, stats kept),
    and ``repro.parallel`` workers never receive a pickled cache at all —
    each worker builds a fresh :class:`Featurizer` whose shard-local cache
    warms up on that worker's own shard (its hit rate is exported as the
    ``parallel.feature_cache.hit_rate{worker=}`` gauge).

    When a :mod:`repro.obs` telemetry session is active, every hit, miss
    and LRU eviction also increments the session counters
    ``feature_cache.hits`` / ``feature_cache.misses`` /
    ``feature_cache.evictions``, and each lookup refreshes the live
    ``feature_cache.hit_rate`` gauge — alert rules can watch the rate
    mid-run instead of waiting for :meth:`export_metrics`.
    """

    def __init__(self, maxsize: int = 256):
        if maxsize <= 0:
            raise ValueError("cache maxsize must be positive")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[int, Tuple[weakref.ref, DocumentFeatures]]" = (
            OrderedDict()
        )
        # Entries and counters are mutated under this lock (concurrent
        # predict() calls share one cache); telemetry publishing happens
        # after release so a metrics lock is never taken while holding it.
        self._lock = threading.Lock()
        _LIVE_CACHES.add(self)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def lookup(self, document: ResumeDocument) -> Optional[DocumentFeatures]:
        """Return cached features for ``document``, or None (counts a miss)."""
        features: Optional[DocumentFeatures] = None
        with self._lock:
            entry = self._entries.get(id(document))
            if entry is not None:
                ref, cached = entry
                if ref() is document:
                    self._entries.move_to_end(id(document))
                    self.hits += 1
                    features = cached
                else:
                    del self._entries[id(document)]
            if features is None:
                self.misses += 1
            hit_rate = self.hit_rate
        telemetry = obs.get_telemetry()
        if telemetry is not None:
            counter = (
                "feature_cache.hits" if features is not None
                else "feature_cache.misses"
            )
            telemetry.metrics.counter(counter).inc()
            telemetry.metrics.gauge("feature_cache.hit_rate").set(hit_rate)
        return features

    def store(self, document: ResumeDocument, features: DocumentFeatures) -> None:
        evicted = 0
        with self._lock:
            self._entries[id(document)] = (weakref.ref(document), features)
            self._entries.move_to_end(id(document))
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
        if evicted:
            telemetry = obs.get_telemetry()
            if telemetry is not None:
                telemetry.metrics.counter("feature_cache.evictions").inc(evicted)

    def clear(self, preserve_stats: bool = False) -> None:
        """Drop every entry; ``preserve_stats=True`` keeps the cumulative
        hit/miss/eviction counters (long-running services clear entries to
        release memory without losing their lifetime totals)."""
        with self._lock:
            self._entries.clear()
            if not preserve_stats:
                self.hits = 0
                self.misses = 0
                self.evictions = 0

    def info(self) -> Dict[str, int]:
        """Counters for tests and the profiling report."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "size": len(self._entries),
            "maxsize": self.maxsize,
        }

    def export_metrics(self, registry) -> None:
        """Publish the cumulative counters as gauges on ``registry``.

        The incremental counters above only cover lookups made while a
        session was active; this pushes the lifetime totals (e.g. at
        snapshot time) for caches that predate the session.
        """
        registry.gauge("feature_cache.size").set(len(self._entries))
        registry.gauge("feature_cache.hit_rate").set(self.hit_rate)
        registry.gauge("feature_cache.total_hits").set(self.hits)
        registry.gauge("feature_cache.total_misses").set(self.misses)
        registry.gauge("feature_cache.total_evictions").set(self.evictions)


class Featurizer:
    """Featuriser binding a tokenizer to a model config.

    Featurisation is pure in the document, so results are memoised in an
    identity-keyed LRU (:class:`FeatureCache`) by default; pass
    ``cache_size=0`` to disable.  Callers must treat the returned arrays as
    read-only.
    """

    def __init__(
        self,
        tokenizer: WordPieceTokenizer,
        config: ResuFormerConfig,
        cache_size: int = 256,
    ):
        self.tokenizer = tokenizer
        self.config = config
        self.cache = FeatureCache(cache_size) if cache_size else None

    # ------------------------------------------------------------------
    def featurize(self, document: ResumeDocument) -> DocumentFeatures:
        """Build (or fetch from cache) the feature bundle for one document."""
        if self.cache is None:
            return self._compute(document)
        features = self.cache.lookup(document)
        if features is None:
            features = self._compute(document)
            self.cache.store(document, features)
        return features

    def featurize_many(
        self, documents: Sequence[ResumeDocument], repeats: int = 1
    ) -> List[DocumentFeatures]:
        """Featurize a document list through the cache, in order.

        ``repeats`` runs the sweep that many times (later passes are cache
        hits for any document still resident) and returns the final pass —
        benchmarks use it to measure warm-cache throughput.
        """
        if repeats <= 0:
            raise ValueError("repeats must be positive")
        for _ in range(repeats - 1):
            for document in documents:
                self.featurize(document)
        return [self.featurize(document) for document in documents]

    def _compute(self, document: ResumeDocument) -> DocumentFeatures:
        """Build the full feature bundle for one document."""
        sentences = document.sentences[: self.config.max_document_sentences]
        if not sentences:
            raise ValueError(f"document {document.doc_id} has no sentences")
        cap = self.config.max_sentence_tokens
        m = len(sentences)

        # Tokenise first so padding width adapts to the document (padding
        # dominates compute at small scales; the cap still bounds it).
        tokenized = []
        for sentence in sentences:
            page = document.page(sentence.page)
            ids, boxes = self._tokenize_sentence(sentence, page.width, page.height)
            tokenized.append((ids[:cap], boxes[:cap]))
        t = max(len(ids) for ids, _ in tokenized)

        token_ids = np.zeros((m, t), dtype=np.int64)
        token_mask = np.zeros((m, t), dtype=np.float64)
        token_layout = np.zeros((m, t, 7), dtype=np.int64)
        sent_layout = np.zeros((m, 7), dtype=np.int64)
        sent_visual = np.zeros((m, VISUAL_DIM), dtype=np.float64)

        for row, (sentence, (ids, boxes)) in enumerate(zip(sentences, tokenized)):
            page = document.page(sentence.page)
            token_ids[row, : len(ids)] = ids
            token_mask[row, : len(ids)] = 1.0
            token_layout[row, : len(boxes)] = boxes
            sent_layout[row] = self._layout_tuple(
                sentence.bbox.normalized(page.width, page.height), sentence.page
            )
            if sentence.visual is not None:
                sent_visual[row] = np.asarray(sentence.visual, dtype=np.float64)
            else:
                sent_visual[row] = sentence_visual_features(
                    sentence, page.width, page.height
                )

        positions = np.arange(m, dtype=np.int64)
        return DocumentFeatures(
            token_ids=token_ids,
            token_mask=token_mask,
            token_layout=token_layout,
            token_segments=np.zeros((m, t), dtype=np.int64),
            sentence_layout=sent_layout,
            sentence_visual=sent_visual,
            sentence_positions=positions,
            sentence_segments=(positions % self.config.num_segments).astype(np.int64),
        )

    # ------------------------------------------------------------------
    def _tokenize_sentence(self, sentence: Sentence, page_width, page_height):
        """WordPiece ids + bucketised layout tuples, with a leading [CLS].

        Sub-word pieces inherit their source word's bounding box, the
        standard LayoutLM convention.  ``[CLS]`` carries the merged sentence
        box so its representation can attend with sentence-level geometry.
        """
        vocab = self.tokenizer.vocab
        ids: List[int] = [vocab.cls_id]
        boxes: List[np.ndarray] = [
            self._layout_tuple(
                sentence.bbox.normalized(page_width, page_height), sentence.page
            )
        ]
        for token in sentence.tokens:
            normalized = token.bbox.normalized(page_width, page_height)
            layout = self._layout_tuple(normalized, token.page)
            for piece in self.tokenizer.tokenize_word(token.word.lower()):
                ids.append(vocab.token_to_id(piece))
                boxes.append(layout)
        return ids, boxes

    def _layout_tuple(self, box: BBox, page: int) -> np.ndarray:
        """Bucketise a normalised box into embedding indices."""
        buckets = self.config.layout_buckets
        scale = 1000 // buckets + (1 if 1000 % buckets else 0)

        def bucket(value: float) -> int:
            return min(int(value) // scale, buckets - 1)

        x0, y0, x1, y1 = box.to_tuple()
        return np.array(
            [
                bucket(x0),
                bucket(y0),
                bucket(x1),
                bucket(y1),
                bucket(x1 - x0),
                bucket(y1 - y0),
                min(page, _MAX_PAGES - 1),
            ],
            dtype=np.int64,
        )
