"""Self-supervised pre-training objectives (Section IV-A2).

Implements the three objectives and their combination (Eq. 7):

* **Masked layout-language model (MLLM)** — mask WordPiece tokens, keep
  their 2-D layout embeddings, predict the originals (``L_wp``).
* **Self-supervised contrastive learning (SCL)** — dynamically mask
  sentence slots in the document encoder and contrast the contextual
  prediction at each masked slot against the true fused sentence embedding
  across the batch (Eq. 3–4, ``L_cl``).
* **Dynamic next-sentence prediction (DNSP)** — sample sentence positions
  and score adjacency through a bilinear interaction matrix (Eq. 5–6,
  ``L_ns``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..docmodel.document import ResumeDocument
from ..nn import AdamW, Linear, Module, Parameter, ParamGroup, Tensor, concat
from ..nn import clip_grad_norm
from ..nn import init as nn_init
from ..nn.functional import cross_entropy, log_softmax
from .config import ResuFormerConfig
from .featurize import DocumentFeatures, Featurizer
from .hierarchical import HierarchicalEncoder

__all__ = ["PretrainObjectives", "PretrainHeads", "Pretrainer", "masked_copy"]


@dataclass
class PretrainObjectives:
    """Toggles for the ablations of Table III."""

    wmp: bool = True   # masked layout-language model  (w/o WMP ablation)
    scl: bool = True   # contrastive sentence masking  (w/o SCL ablation)
    dnsp: bool = True  # dynamic next-sentence         (w/o DNSP ablation)

    def any(self) -> bool:
        return self.wmp or self.scl or self.dnsp


class PretrainHeads(Module):
    """Trainable heads owned by pre-training only."""

    def __init__(
        self, config: ResuFormerConfig, rng: Optional[np.random.Generator] = None
    ):
        super().__init__()
        rng = rng or nn_init.default_rng()
        self.mlm = Linear(config.hidden_dim, config.vocab_size, rng=rng)
        #: ``W_d`` of Eq. 5.
        self.dnsp_interaction = Parameter(
            nn_init.normal((config.document_dim, config.document_dim), rng, std=0.02)
        )


def masked_copy(
    token_ids: np.ndarray,
    token_mask: np.ndarray,
    mask_prob: float,
    mask_id: int,
    vocab_size: int,
    rng: np.random.Generator,
) -> tuple:
    """BERT-style corruption: returns ``(corrupted_ids, prediction_mask)``.

    Of the selected positions, 80% become ``[MASK]``, 10% a random id and
    10% stay unchanged.  The ``[CLS]`` column (position 0) is never masked.
    """
    corrupted = token_ids.copy()
    selectable = (token_mask > 0).copy()
    selectable[:, 0] = False
    selected = selectable & (rng.random(token_ids.shape) < mask_prob)
    action = rng.random(token_ids.shape)
    use_mask = selected & (action < 0.8)
    use_random = selected & (action >= 0.8) & (action < 0.9)
    corrupted[use_mask] = mask_id
    corrupted[use_random] = rng.integers(5, vocab_size, size=int(use_random.sum()))
    return corrupted, selected


class Pretrainer:
    """Drives Eq. 7 over an unlabeled document corpus."""

    def __init__(
        self,
        encoder: HierarchicalEncoder,
        featurizer: Featurizer,
        objectives: Optional[PretrainObjectives] = None,
        seed: int = 0,
        learning_rate: float = 5e-4,
        weight_decay: float = 0.01,
        max_grad_norm: float = 5.0,
        dynamic_sentence_masking: bool = True,
    ):
        self.encoder = encoder
        self.featurizer = featurizer
        self.config = encoder.config
        self.objectives = objectives or PretrainObjectives()
        self.rng = np.random.default_rng(seed)
        #: The paper argues *dynamic* masking (fresh slots each step) beats
        #: static masking; False freezes each document's masked slots for
        #: the ablation bench.
        self.dynamic_sentence_masking = dynamic_sentence_masking
        self._static_slots: dict = {}
        self.heads = PretrainHeads(self.config, rng=np.random.default_rng(seed + 1))
        params = encoder.parameters() + self.heads.parameters()
        self.optimizer = AdamW(
            [ParamGroup(params, learning_rate)], weight_decay=weight_decay
        )
        self.max_grad_norm = max_grad_norm

    # ------------------------------------------------------------------
    # Individual objectives
    # ------------------------------------------------------------------
    def mllm_loss(self, features: DocumentFeatures) -> Optional[Tensor]:
        """Objective #1: masked layout-language model (``L_wp``)."""
        vocab = self.featurizer.tokenizer.vocab
        corrupted, selected = masked_copy(
            features.token_ids,
            features.token_mask,
            self.config.token_mask_prob,
            vocab.mask_id,
            len(vocab),
            self.rng,
        )
        if not selected.any():
            return None
        token_states, _ = self.encoder.sentence_encoder(
            corrupted,
            features.token_mask,
            features.token_layout,  # layout survives masking, the point of MLLM
            features.token_segments,
        )
        logits = self.heads.mlm(token_states)
        return cross_entropy(logits, features.token_ids, mask=selected)

    def _mask_slots(self, m: int, ratio: float) -> Optional[np.ndarray]:
        count = max(int(round(ratio * m)), 1)
        if m < 2:
            return None
        count = min(count, m - 1)
        slots = np.zeros(m, dtype=bool)
        slots[self.rng.choice(m, size=count, replace=False)] = True
        return slots

    def scl_pairs(self, features: DocumentFeatures):
        """Run one document with dynamic sentence masking.

        Returns ``(predicted_rows, target_rows)`` at the masked slots, or
        ``None`` when the document is too short to mask.
        """
        if self.dynamic_sentence_masking:
            slots = self._mask_slots(
                features.num_sentences, self.config.sentence_mask_ratio
            )
        else:
            key = id(features)
            if key not in self._static_slots:
                self._static_slots[key] = self._mask_slots(
                    features.num_sentences, self.config.sentence_mask_ratio
                )
            slots = self._static_slots[key]
        if slots is None:
            return None
        encoded = self.encoder(features, sentence_mask_slots=slots)
        idx = np.where(slots)[0]
        return encoded.contextual[idx], encoded.fused[idx], encoded

    @staticmethod
    def info_nce(predicted: Tensor, targets: Tensor, temperature: float) -> Tensor:
        """Eq. 3–4: similarity matrix + softmax CE on the diagonal."""
        sim = predicted @ targets.transpose(1, 0)
        logp = log_softmax(sim / temperature, axis=-1)
        n = sim.shape[0]
        diagonal = logp[np.arange(n), np.arange(n)]
        return -diagonal.mean()

    def dnsp_loss(self, contextual: Tensor) -> Optional[Tensor]:
        """Objective #3: dynamic next-sentence prediction (Eq. 5–6)."""
        m = contextual.shape[0]
        if m < 3:
            return None
        count = max(int(round(self.config.next_sentence_ratio * m)), 1)
        count = min(count, m - 1)
        anchors = self.rng.choice(m - 1, size=count, replace=False)
        h_prime = contextual[anchors]
        h_next = contextual[anchors + 1]
        scores = h_prime @ self.heads.dnsp_interaction @ h_next.transpose(1, 0)
        logp = log_softmax(scores, axis=-1)
        diagonal = logp[np.arange(count), np.arange(count)]
        return -diagonal.mean()

    # ------------------------------------------------------------------
    # Training loop
    # ------------------------------------------------------------------
    def pretrain_step(
        self, batch: Sequence[DocumentFeatures]
    ) -> Dict[str, float]:
        """One optimiser step over a batch of documents; returns losses."""
        if not self.objectives.any():
            raise ValueError("all pre-training objectives disabled")
        losses: Dict[str, float] = {}
        total: Optional[Tensor] = None

        def add(term: Optional[Tensor], weight: float, name: str):
            nonlocal total
            if term is None:
                return
            weighted = term * weight
            losses[name] = float(term.data)
            total = weighted if total is None else total + weighted

        # SCL pools masked slots across the whole batch (Eq. 4's N = b*k).
        predicted_rows: List[Tensor] = []
        target_rows: List[Tensor] = []
        contextual_states: List[Tensor] = []
        if self.objectives.scl or self.objectives.dnsp:
            for features in batch:
                result = self.scl_pairs(features)
                if result is None:
                    continue
                predicted, targets, encoded = result
                predicted_rows.append(predicted)
                target_rows.append(targets)
                contextual_states.append(encoded.contextual)

        if self.objectives.wmp:
            wp_terms = [self.mllm_loss(f) for f in batch]
            wp_terms = [t for t in wp_terms if t is not None]
            if wp_terms:
                mean_wp = wp_terms[0]
                for term in wp_terms[1:]:
                    mean_wp = mean_wp + term
                add(mean_wp / float(len(wp_terms)), self.config.lambda_wp, "wp")

        if self.objectives.scl and predicted_rows:
            predicted = concat(predicted_rows, axis=0)
            targets = concat(target_rows, axis=0)
            add(
                self.info_nce(predicted, targets, self.config.temperature),
                self.config.lambda_cl,
                "cl",
            )

        if self.objectives.dnsp and contextual_states:
            ns_terms = [self.dnsp_loss(c) for c in contextual_states]
            ns_terms = [t for t in ns_terms if t is not None]
            if ns_terms:
                mean_ns = ns_terms[0]
                for term in ns_terms[1:]:
                    mean_ns = mean_ns + term
                add(mean_ns / float(len(ns_terms)), self.config.lambda_ns, "ns")

        if total is None:
            return losses
        self.optimizer.zero_grad()
        total.backward()
        clip_grad_norm(
            self.encoder.parameters() + self.heads.parameters(), self.max_grad_norm
        )
        self.optimizer.step()
        losses["total"] = float(total.data)
        return losses

    def fit(
        self,
        documents: Iterable[ResumeDocument],
        epochs: int = 1,
        batch_size: int = 4,
    ) -> List[Dict[str, float]]:
        """Pre-train over a document corpus; returns per-step loss records."""
        features = [self.featurizer.featurize(d) for d in documents]
        history: List[Dict[str, float]] = []
        for _ in range(epochs):
            order = self.rng.permutation(len(features))
            for start in range(0, len(order), batch_size):
                batch = [features[i] for i in order[start : start + batch_size]]
                self.encoder.train()
                history.append(self.pretrain_step(batch))
        return history
