"""Self-supervised pre-training objectives (Section IV-A2).

Implements the three objectives and their combination (Eq. 7):

* **Masked layout-language model (MLLM)** — mask WordPiece tokens, keep
  their 2-D layout embeddings, predict the originals (``L_wp``).
* **Self-supervised contrastive learning (SCL)** — dynamically mask
  sentence slots in the document encoder and contrast the contextual
  prediction at each masked slot against the true fused sentence embedding
  across the batch (Eq. 3–4, ``L_cl``).
* **Dynamic next-sentence prediction (DNSP)** — sample sentence positions
  and score adjacency through a bilinear interaction matrix (Eq. 5–6,
  ``L_ns``).

All three run *batched*: the documents of a step are collated into one
padded :class:`~repro.core.batching.DocumentBatch`, MLLM corrupts the flat
cross-document sentence block in one shot and encodes it in length
buckets, and SCL/DNSP share a single batched document-encoder pass with
per-document slot masks.  The per-document methods (:meth:`Pretrainer.
mllm_loss`, :meth:`Pretrainer.scl_pairs`, :meth:`Pretrainer.dnsp_loss`)
remain as the reference implementations the parity tests compare against.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..docmodel.document import ResumeDocument
from ..nn import AdamW, Linear, Module, Parameter, ParamGroup, Tensor
from ..nn import clip_grad_norm
from ..nn import init as nn_init
from ..nn.functional import cross_entropy, log_softmax, masked_fill
from ..text.vocab import SPECIAL_TOKENS
from .batching import DocumentBatch, collate_documents
from .config import ResuFormerConfig
from .featurize import DocumentFeatures, Featurizer
from .hierarchical import HierarchicalEncoder
from .training import GradAccumulator, iter_minibatches

__all__ = ["PretrainObjectives", "PretrainHeads", "Pretrainer", "masked_copy"]


@dataclass
class PretrainObjectives:
    """Toggles for the ablations of Table III."""

    wmp: bool = True   # masked layout-language model  (w/o WMP ablation)
    scl: bool = True   # contrastive sentence masking  (w/o SCL ablation)
    dnsp: bool = True  # dynamic next-sentence         (w/o DNSP ablation)

    def any(self) -> bool:
        return self.wmp or self.scl or self.dnsp


class PretrainHeads(Module):
    """Trainable heads owned by pre-training only."""

    def __init__(
        self, config: ResuFormerConfig, rng: Optional[np.random.Generator] = None
    ):
        super().__init__()
        rng = rng or nn_init.default_rng()
        self.mlm = Linear(config.hidden_dim, config.vocab_size, rng=rng)
        #: ``W_d`` of Eq. 5.
        self.dnsp_interaction = Parameter(
            nn_init.normal((config.document_dim, config.document_dim), rng, std=0.02)
        )


def masked_copy(
    token_ids: np.ndarray,
    token_mask: np.ndarray,
    mask_prob: float,
    mask_id: int,
    vocab_size: int,
    rng: np.random.Generator,
    random_floor: Optional[int] = None,
) -> tuple:
    """BERT-style corruption: returns ``(corrupted_ids, prediction_mask)``.

    Of the selected positions, 80% become ``[MASK]``, 10% a random id and
    10% stay unchanged.  The ``[CLS]`` column (position 0) is never masked.
    ``random_floor`` is the smallest id eligible as a random replacement —
    callers derive it from the vocabulary's special tokens (it defaults to
    ``mask_id + 1``, correct when the specials occupy the leading ids).
    """
    if random_floor is None:
        random_floor = mask_id + 1
    corrupted = token_ids.copy()
    selectable = (token_mask > 0).copy()
    selectable[:, 0] = False
    selected = selectable & (rng.random(token_ids.shape) < mask_prob)
    action = rng.random(token_ids.shape)
    use_mask = selected & (action < 0.8)
    use_random = selected & (action >= 0.8) & (action < 0.9)
    corrupted[use_mask] = mask_id
    if random_floor < vocab_size:
        corrupted[use_random] = rng.integers(
            random_floor, vocab_size, size=int(use_random.sum())
        )
    else:
        # Degenerate vocabulary of nothing but specials: fall back to [MASK].
        corrupted[use_random] = mask_id
    return corrupted, selected


class _StaticSlotCache:
    """Frozen sentence-mask slots per document, keyed by feature identity.

    Mirrors :class:`~repro.core.featurize.FeatureCache`: entries are
    guarded by a weak reference so a recycled ``id()`` from garbage-
    collected features can never alias a live entry, and an LRU bound keeps
    the cache from growing with the corpus.  Supports ``key in cache`` /
    ``cache[key]`` on raw ``id()`` values for introspection.
    """

    def __init__(self, maxsize: int = 1024):
        if maxsize <= 0:
            raise ValueError("cache maxsize must be positive")
        self.maxsize = maxsize
        self._entries: "OrderedDict[int, Tuple[weakref.ref, Optional[np.ndarray]]]" = (
            OrderedDict()
        )

    def get(self, features: DocumentFeatures) -> Tuple[bool, Optional[np.ndarray]]:
        """``(found, slots)`` — ``slots`` may legitimately be None."""
        key = id(features)
        entry = self._entries.get(key)
        if entry is not None:
            ref, slots = entry
            if ref() is features:
                self._entries.move_to_end(key)
                return True, slots
            del self._entries[key]
        return False, None

    def store(
        self, features: DocumentFeatures, slots: Optional[np.ndarray]
    ) -> None:
        self._entries[id(features)] = (weakref.ref(features), slots)
        self._entries.move_to_end(id(features))
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: int) -> bool:
        entry = self._entries.get(key)
        return entry is not None and entry[0]() is not None

    def __getitem__(self, key: int) -> Optional[np.ndarray]:
        return self._entries[key][1]

    def clear(self) -> None:
        self._entries.clear()


class Pretrainer:
    """Drives Eq. 7 over an unlabeled document corpus."""

    def __init__(
        self,
        encoder: HierarchicalEncoder,
        featurizer: Featurizer,
        objectives: Optional[PretrainObjectives] = None,
        seed: int = 0,
        learning_rate: float = 5e-4,
        weight_decay: float = 0.01,
        max_grad_norm: float = 5.0,
        dynamic_sentence_masking: bool = True,
    ):
        self.encoder = encoder
        self.featurizer = featurizer
        self.config = encoder.config
        self.objectives = objectives or PretrainObjectives()
        #: Base seed, kept for the data-parallel path's per-document
        #: randomness discipline (see repro.parallel.randomness).
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        #: The paper argues *dynamic* masking (fresh slots each step) beats
        #: static masking; False freezes each document's masked slots for
        #: the ablation bench.
        self.dynamic_sentence_masking = dynamic_sentence_masking
        self._static_slots = _StaticSlotCache()
        vocab = featurizer.tokenizer.vocab
        #: First id eligible as a random MLLM replacement — one past the
        #: highest special-token id, derived from the vocabulary itself.
        self._random_token_floor = (
            max(vocab.token_to_id(token) for token in SPECIAL_TOKENS) + 1
        )
        self.heads = PretrainHeads(self.config, rng=np.random.default_rng(seed + 1))
        params = encoder.parameters() + self.heads.parameters()
        self.optimizer = AdamW(
            [ParamGroup(params, learning_rate)], weight_decay=weight_decay
        )
        self.max_grad_norm = max_grad_norm
        #: Steps published to the telemetry run log (never reset).
        self._steps_emitted = 0

    # ------------------------------------------------------------------
    # Individual objectives — per-document reference implementations
    # ------------------------------------------------------------------
    def mllm_loss(
        self,
        features: DocumentFeatures,
        corruption: Optional[tuple] = None,
    ) -> Optional[Tensor]:
        """Objective #1: masked layout-language model (``L_wp``).

        ``corruption`` — an explicit ``(corrupted_ids, prediction_mask)``
        pair — bypasses the RNG draw (the parity tests feed both paths the
        same corruption).
        """
        vocab = self.featurizer.tokenizer.vocab
        if corruption is None:
            corruption = masked_copy(
                features.token_ids,
                features.token_mask,
                self.config.token_mask_prob,
                vocab.mask_id,
                len(vocab),
                self.rng,
                random_floor=self._random_token_floor,
            )
        corrupted, selected = corruption
        if not selected.any():
            return None
        token_states, _ = self.encoder.sentence_encoder(
            corrupted,
            features.token_mask,
            features.token_layout,  # layout survives masking, the point of MLLM
            features.token_segments,
        )
        logits = self.heads.mlm(token_states)
        return cross_entropy(logits, features.token_ids, mask=selected)

    def _mask_slots(self, m: int, ratio: float) -> Optional[np.ndarray]:
        count = max(int(round(ratio * m)), 1)
        if m < 2:
            return None
        count = min(count, m - 1)
        slots = np.zeros(m, dtype=bool)
        slots[self.rng.choice(m, size=count, replace=False)] = True
        return slots

    def _slots_for(self, features: DocumentFeatures) -> Optional[np.ndarray]:
        """Sentence-mask slots for one document (dynamic or static)."""
        if self.dynamic_sentence_masking:
            return self._mask_slots(
                features.num_sentences, self.config.sentence_mask_ratio
            )
        found, slots = self._static_slots.get(features)
        if not found:
            slots = self._mask_slots(
                features.num_sentences, self.config.sentence_mask_ratio
            )
            self._static_slots.store(features, slots)
        return slots

    def scl_pairs(
        self, features: DocumentFeatures, slots: Optional[np.ndarray] = None
    ):
        """Run one document with dynamic sentence masking.

        Returns ``(predicted_rows, target_rows)`` at the masked slots, or
        ``None`` when the document is too short to mask.  ``slots`` bypasses
        the sampling (parity tests).
        """
        if slots is None:
            slots = self._slots_for(features)
        if slots is None:
            return None
        encoded = self.encoder(features, sentence_mask_slots=slots)
        idx = np.where(slots)[0]
        return encoded.contextual[idx], encoded.fused[idx], encoded

    @staticmethod
    def info_nce(predicted: Tensor, targets: Tensor, temperature: float) -> Tensor:
        """Eq. 3–4: similarity matrix + softmax CE on the diagonal."""
        sim = predicted @ targets.transpose(1, 0)
        logp = log_softmax(sim / temperature, axis=-1)
        n = sim.shape[0]
        diagonal = logp[np.arange(n), np.arange(n)]
        return -diagonal.mean()

    def dnsp_loss(
        self, contextual: Tensor, anchors: Optional[np.ndarray] = None
    ) -> Optional[Tensor]:
        """Objective #3: dynamic next-sentence prediction (Eq. 5–6)."""
        m = contextual.shape[0]
        if m < 3:
            return None
        if anchors is None:
            count = max(int(round(self.config.next_sentence_ratio * m)), 1)
            count = min(count, m - 1)
            anchors = self.rng.choice(m - 1, size=count, replace=False)
        anchors = np.asarray(anchors, dtype=np.int64)
        count = anchors.shape[0]
        h_prime = contextual[anchors]
        h_next = contextual[anchors + 1]
        scores = h_prime @ self.heads.dnsp_interaction @ h_next.transpose(1, 0)
        logp = log_softmax(scores, axis=-1)
        diagonal = logp[np.arange(count), np.arange(count)]
        return -diagonal.mean()

    # ------------------------------------------------------------------
    # Batched objectives
    # ------------------------------------------------------------------
    def sample_sentence_slots(
        self, batch: DocumentBatch
    ) -> Optional[np.ndarray]:
        """Per-document mask slots padded to ``(B, m_max)`` (document order
        matches the per-document loop, so a fixed RNG draws the same slots)."""
        slots = np.zeros((batch.batch_size, batch.max_sentences), dtype=bool)
        any_masked = False
        for row, features in enumerate(batch.features):
            doc_slots = self._slots_for(features)
            if doc_slots is None:
                continue
            slots[row, : features.num_sentences] = doc_slots
            any_masked = True
        return slots if any_masked else None

    def sample_dnsp_anchors(
        self, lengths: Sequence[int]
    ) -> List[Optional[np.ndarray]]:
        """Per-document DNSP anchor positions (None for documents < 3
        sentences), drawn in document order like the per-document loop."""
        anchors: List[Optional[np.ndarray]] = []
        for m in lengths:
            m = int(m)
            if m < 3:
                anchors.append(None)
                continue
            count = max(int(round(self.config.next_sentence_ratio * m)), 1)
            count = min(count, m - 1)
            anchors.append(self.rng.choice(m - 1, size=count, replace=False))
        return anchors

    def mllm_loss_batch(
        self,
        batch: DocumentBatch,
        corruption: Optional[tuple] = None,
    ) -> Optional[Tensor]:
        """Batched ``L_wp`` over the collated flat sentence block.

        ``masked_copy`` corrupts every sentence of every document in one
        vectorised draw, the sentence encoder runs in length buckets, and
        per-position weights reproduce the per-document mean exactly: each
        masked position of document ``d`` carries ``1 / (count_d * D)``
        where ``D`` counts documents with at least one masked token — so
        the result equals the mean of per-document :meth:`mllm_loss` terms
        for the same corruption.
        """
        vocab = self.featurizer.tokenizer.vocab
        if corruption is None:
            corruption = masked_copy(
                batch.token_ids,
                batch.token_mask,
                self.config.token_mask_prob,
                vocab.mask_id,
                len(vocab),
                self.rng,
                random_floor=self._random_token_floor,
            )
        corrupted, selected = corruption
        if not selected.any():
            return None

        weights = np.zeros(selected.shape, dtype=np.float64)
        doc_rows = []
        offset = 0
        for features in batch.features:
            rows = slice(offset, offset + features.num_sentences)
            doc_rows.append((rows, float(selected[rows].sum())))
            offset += features.num_sentences
        contributing = sum(1 for _, count in doc_rows if count)
        for rows, count in doc_rows:
            if count:
                weights[rows] = selected[rows] / (count * contributing)

        total: Optional[Tensor] = None
        for rows, token_states, _ in self.encoder.iter_sentence_buckets(
            corrupted, batch.token_mask, batch.token_layout, batch.token_segments
        ):
            bucket_weights = weights[rows][:, : token_states.shape[1]]
            if not bucket_weights.any():
                continue
            logp = log_softmax(self.heads.mlm(token_states), axis=-1)
            flat = logp.reshape(-1, logp.shape[-1])
            targets = batch.token_ids[rows][:, : token_states.shape[1]].reshape(-1)
            picked = flat[np.arange(flat.shape[0]), targets]
            term = -(picked * Tensor(bucket_weights.reshape(-1))).sum()
            total = term if total is None else total + term
        return total

    def dnsp_loss_batch(
        self,
        contextual: Tensor,
        lengths: Sequence[int],
        anchors: Optional[List[Optional[np.ndarray]]] = None,
    ) -> Optional[Tensor]:
        """Batched ``L_ns``: one bilinear score matrix over every anchor of
        every document, with cross-document pairs masked out so each row's
        softmax normalises within its own document (Eq. 5–6 semantics).

        Equals the mean of per-document :meth:`dnsp_loss` values for the
        same anchors: the masked positions underflow to exactly zero
        probability, leaving each document's within-block softmax intact.
        """
        if anchors is None:
            anchors = self.sample_dnsp_anchors(lengths)
        doc_parts: List[np.ndarray] = []
        pos_parts: List[np.ndarray] = []
        counts: List[int] = []
        for row, doc_anchors in enumerate(anchors):
            if doc_anchors is None or len(doc_anchors) == 0:
                continue
            doc_anchors = np.asarray(doc_anchors, dtype=np.int64)
            doc_parts.append(np.full(doc_anchors.shape[0], row, dtype=np.int64))
            pos_parts.append(doc_anchors)
            counts.append(doc_anchors.shape[0])
        if not counts:
            return None
        doc_idx = np.concatenate(doc_parts)
        positions = np.concatenate(pos_parts)
        h_prime = contextual[doc_idx, positions]
        h_next = contextual[doc_idx, positions + 1]
        scores = h_prime @ self.heads.dnsp_interaction @ h_next.transpose(1, 0)
        same_document = doc_idx[:, None] == doc_idx[None, :]
        scores = masked_fill(scores, ~same_document)
        logp = log_softmax(scores, axis=-1)
        k = doc_idx.shape[0]
        diagonal = logp[np.arange(k), np.arange(k)]
        weights = np.concatenate(
            [np.full(c, 1.0 / (c * len(counts))) for c in counts]
        )
        return -(diagonal * Tensor(weights)).sum()

    # ------------------------------------------------------------------
    # Training loop
    # ------------------------------------------------------------------
    def pretrain_losses(
        self,
        batch: Sequence[DocumentFeatures],
        collated: Optional[DocumentBatch] = None,
        slots: Optional[np.ndarray] = None,
        corruption: Optional[tuple] = None,
        anchors: Optional[List[Optional[np.ndarray]]] = None,
    ) -> Tuple[Dict[str, float], Optional[Tensor]]:
        """Batched forward over the active objectives.

        Returns ``(losses, total)`` where ``total`` is the Eq. 7 weighted
        sum (or None if nothing contributed).  The optional ``slots`` /
        ``corruption`` / ``anchors`` arguments inject explicit randomness
        for the parity tests; by default each is drawn from ``self.rng`` in
        document order.
        """
        if not self.objectives.any():
            raise ValueError("all pre-training objectives disabled")
        losses: Dict[str, float] = {}
        total: Optional[Tensor] = None

        def add(term: Optional[Tensor], weight: float, name: str):
            nonlocal total
            if term is None:
                return
            weighted = term * weight
            losses[name] = float(term.data)
            total = weighted if total is None else total + weighted

        doc_batch = collated if collated is not None else collate_documents(list(batch))

        # SCL and DNSP share one batched document-encoder pass over the
        # slot-masked inputs; SCL pools masked slots across the whole batch
        # (Eq. 4's N = b*k).
        if self.objectives.scl or self.objectives.dnsp:
            if slots is None:
                slots = self.sample_sentence_slots(doc_batch)
            if slots is not None and slots.any():
                encoded = self.encoder.encode_batch_pretrain(
                    doc_batch, mask_slots=slots
                )
                if self.objectives.scl:
                    rows, cols = np.nonzero(slots)
                    predicted = encoded.contextual[rows, cols]
                    targets = encoded.fused[rows, cols]
                    add(
                        self.info_nce(predicted, targets, self.config.temperature),
                        self.config.lambda_cl,
                        "cl",
                    )
                if self.objectives.dnsp:
                    # Only documents that were masked ran through the
                    # per-document loop, so only they contribute anchors.
                    lengths = np.where(slots.any(axis=1), doc_batch.lengths, 0)
                    add(
                        self.dnsp_loss_batch(
                            encoded.contextual, lengths, anchors=anchors
                        ),
                        self.config.lambda_ns,
                        "ns",
                    )

        if self.objectives.wmp:
            add(
                self.mllm_loss_batch(doc_batch, corruption=corruption),
                self.config.lambda_wp,
                "wp",
            )
        return losses, total

    def _lambda_weighted(self, losses: Dict[str, float]) -> Dict[str, float]:
        """Eq. 7's λ-weighted per-objective contributions."""
        weights = {
            "wp": self.config.lambda_wp,
            "cl": self.config.lambda_cl,
            "ns": self.config.lambda_ns,
        }
        return {
            name: value * weights[name]
            for name, value in losses.items()
            if name in weights
        }

    def _emit_step(
        self, telemetry, step: int, losses: Dict[str, float],
        documents: int, grad_norm: Optional[float] = None,
    ) -> None:
        """Publish one pre-training step: raw and λ-weighted loss series.

        An attached :class:`repro.obs.AlertEngine` derives the
        ``pretrain.losses.{wp,cl,ns,total}`` series from these events —
        the default ``nan-loss`` / ``loss-spike`` rules watch all of
        them, and ``scl-collapse`` / ``dnsp-collapse`` specifically watch
        the Eq. 7 contrastive and next-sentence objectives for degenerate
        solutions.
        """
        for name, value in losses.items():
            # Objective names are the fixed {wp, cl, ns, total} loss-term
            # set, not per-item values — bounded cardinality.
            # repro-lint: disable=RN012
            telemetry.metrics.gauge("pretrain.loss").set(value, objective=name)
        telemetry.metrics.counter("pretrain.steps").inc()
        telemetry.metrics.counter("pretrain.documents").inc(documents)
        telemetry.event(
            "step",
            phase="pretrain",
            step=step,
            losses=dict(losses),
            weighted_losses=self._lambda_weighted(losses),
            documents=documents,
            grad_norm=grad_norm,
        )

    def pretrain_step(
        self, batch: Sequence[DocumentFeatures]
    ) -> Dict[str, float]:
        """One optimiser step over a batch of documents; returns losses."""
        with obs.trace("pretrain.step", documents=len(batch)):
            losses, total = self.pretrain_losses(batch)
            if total is None:
                return losses
            self.optimizer.zero_grad()
            total.backward()
            grad_norm = clip_grad_norm(
                self.encoder.parameters() + self.heads.parameters(),
                self.max_grad_norm,
            )
            self.optimizer.step()
        losses["total"] = float(total.data)
        telemetry = obs.get_telemetry()
        if telemetry is not None:
            self._steps_emitted += 1
            self._emit_step(
                telemetry, self._steps_emitted, losses, len(batch), grad_norm
            )
        return losses

    def fit(
        self,
        documents: Iterable[ResumeDocument],
        epochs: int = 1,
        batch_size: int = 4,
        grad_accumulation: int = 1,
        num_workers: int = 0,
    ) -> List[Dict[str, float]]:
        """Pre-train over a document corpus; returns per-step loss records.

        ``grad_accumulation`` accumulates that many mini-batches into each
        optimizer step (weighted by document count), raising the effective
        batch without growing the padded forward pass.  Note that SCL's
        cross-batch pooling still spans one mini-batch at a time.

        ``num_workers >= 1`` switches to synchronous data-parallel steps:
        batches shard across worker replicas, corruption/slot/anchor draws
        move to a per-document seeded discipline (worker-count invariant),
        and SCL's cross-batch InfoNCE is computed globally by the parent
        from gathered slot rows — so the objective is *not* approximated
        by sharding, and final parameters are identical for every worker
        count (with ``dropout=0``; see docs/API.md §14).
        """
        if num_workers:
            if grad_accumulation != 1:
                raise ValueError(
                    "grad_accumulation is not supported with num_workers; "
                    "raise batch_size instead (SCL pools the whole "
                    "effective batch either way)"
                )
            return self._fit_parallel(
                documents, epochs=epochs, batch_size=batch_size,
                num_workers=num_workers,
            )
        features = [self.featurizer.featurize(d) for d in documents]
        engine = GradAccumulator(
            self.optimizer,
            self.encoder.parameters() + self.heads.parameters(),
            max_grad_norm=self.max_grad_norm,
            accumulation=grad_accumulation,
        )
        lengths = [f.num_sentences for f in features]
        history: List[Dict[str, float]] = []
        telemetry = obs.get_telemetry()
        for epoch_index in range(epochs):
            with obs.trace("pretrain.epoch", epoch=epoch_index):
                for chunk in iter_minibatches(
                    len(features), batch_size, rng=self.rng, lengths=lengths
                ):
                    batch = [features[i] for i in chunk]
                    self.encoder.train()
                    with obs.trace("pretrain.step", documents=len(batch)):
                        losses, total = self.pretrain_losses(batch)
                        stepped = False
                        if total is not None:
                            stepped = engine.backward(total, weight=len(batch))
                            losses["total"] = float(total.data)
                    history.append(losses)
                    if telemetry is not None:
                        self._steps_emitted += 1
                        self._emit_step(
                            telemetry,
                            self._steps_emitted,
                            losses,
                            len(batch),
                            engine.last_grad_norm if stepped else None,
                        )
                engine.flush()
            if telemetry is not None:
                telemetry.event("epoch", phase="pretrain", epoch=epoch_index)
        return history

    # ------------------------------------------------------------------
    # Data-parallel training (repro.parallel)
    # ------------------------------------------------------------------
    def _fit_parallel(
        self,
        documents: Iterable[ResumeDocument],
        epochs: int,
        batch_size: int,
        num_workers: int,
    ) -> List[Dict[str, float]]:
        """Data-parallel :meth:`fit` over sharded worker replicas.

        Batch order still comes from the parent's RNG; all per-document
        randomness (corruption, slots, anchors) moves to the seeded
        per-document discipline of :mod:`repro.parallel.randomness`, so
        every worker count draws identical randomness.  Each step is the
        two-phase protocol of
        :class:`repro.parallel.workers.PretrainWorkerContext`.
        """
        from ..parallel import (
            DataParallelEngine,
            init_pretrain_worker,
            make_runner,
            param_layout,
            param_size,
        )

        documents = list(documents)
        cap = self.config.max_document_sentences
        lengths = [min(d.num_sentences, cap) for d in documents]
        parameters = self.encoder.parameters() + self.heads.parameters()
        payload = {
            "config": self.config,
            "tokenizer": self.featurizer.tokenizer,
            "objectives": self.objectives,
            "seed": self.seed,
            "dynamic": self.dynamic_sentence_masking,
            "documents": documents,
            "layout": param_layout(parameters),
        }
        history: List[Dict[str, float]] = []
        telemetry = obs.get_telemetry()
        step = 0
        with make_runner(
            num_workers, init_pretrain_worker, payload, param_size(parameters)
        ) as runner:
            engine = DataParallelEngine(
                runner, self.optimizer, parameters,
                max_grad_norm=self.max_grad_norm,
            )
            for epoch_index in range(epochs):
                with obs.trace(
                    "pretrain.epoch", epoch=epoch_index, workers=num_workers
                ):
                    for chunk in iter_minibatches(
                        len(documents), batch_size, rng=self.rng,
                        lengths=lengths,
                    ):
                        with obs.trace(
                            "pretrain.step", documents=len(chunk),
                            workers=num_workers,
                        ):
                            losses, stepped = self._parallel_step(
                                engine, chunk, step
                            )
                        step += 1
                        history.append(losses)
                        if telemetry is not None:
                            self._steps_emitted += 1
                            self._emit_step(
                                telemetry,
                                self._steps_emitted,
                                losses,
                                len(chunk),
                                engine.last_grad_norm if stepped else None,
                            )
                if telemetry is not None:
                    telemetry.event("epoch", phase="pretrain", epoch=epoch_index)
        return history

    def _parallel_step(
        self, engine, chunk: List[int], step: int
    ) -> Tuple[Dict[str, float], bool]:
        """One two-phase data-parallel optimizer step over ``chunk``.

        Phase 1 gathers each shard's SCL slot rows and shard-local
        MLLM/DNSP terms; the parent evaluates the *global* InfoNCE
        (closed form, exact row gradients) and the global contributing
        counts; phase 2 sends every worker its surrogate coefficients and
        reduces the summed slabs into one optimizer step.
        """
        from ..parallel import info_nce_grads, publish_cache_hit_rates

        engine.broadcast()
        shards = engine.shard(chunk)
        results = engine.dispatch(
            "forward", shards, [{"step": step}] * len(shards)
        )
        publish_cache_hit_rates(results)
        losses: Dict[str, float] = {}

        row_counts = [
            0 if r["predicted"] is None else r["predicted"].shape[0]
            for r in results
        ]
        grad_blocks: List[Optional[tuple]] = [None] * len(results)
        if self.objectives.scl and sum(row_counts):
            predicted = np.concatenate(
                [r["predicted"] for r in results if r["predicted"] is not None]
            )
            targets = np.concatenate(
                [r["targets"] for r in results if r["targets"] is not None]
            )
            cl_value, g_pred, g_tgt = info_nce_grads(
                predicted, targets, self.config.temperature
            )
            losses["cl"] = cl_value
            # The workers' surrogates add the row terms unweighted, so the
            # Eq. 7 λ rides on the gradients themselves.
            g_pred *= self.config.lambda_cl
            g_tgt *= self.config.lambda_cl
            offset = 0
            for worker_id, count in enumerate(row_counts):
                if count:
                    grad_blocks[worker_id] = (
                        g_pred[offset : offset + count],
                        g_tgt[offset : offset + count],
                    )
                offset += count

        mllm_docs = sum(r["mllm_docs"] for r in results)
        dnsp_docs = sum(r["dnsp_docs"] for r in results)
        if mllm_docs:
            losses["wp"] = (
                sum(
                    r["mllm"] * r["mllm_docs"]
                    for r in results
                    if r["mllm"] is not None
                )
                / mllm_docs
            )
        if dnsp_docs:
            losses["ns"] = (
                sum(
                    r["dnsp"] * r["dnsp_docs"]
                    for r in results
                    if r["dnsp"] is not None
                )
                / dnsp_docs
            )

        extras = []
        for worker_id in range(len(results)):
            block = grad_blocks[worker_id]
            extras.append(
                {
                    "g_pred": None if block is None else block[0],
                    "g_tgt": None if block is None else block[1],
                    "mllm_scale": (
                        self.config.lambda_wp / mllm_docs if mllm_docs else 0.0
                    ),
                    "dnsp_scale": (
                        self.config.lambda_ns / dnsp_docs if dnsp_docs else 0.0
                    ),
                }
            )
        engine.dispatch("backward", shards, extras)
        if not losses:
            return losses, False
        # Worker surrogates already carry the global 1/D, 1/C and λ
        # factors, so the all-reduce is a plain sum (no weight rescale).
        engine.apply(None)
        losses["total"] = sum(
            value * weight
            for value, weight in (
                (losses.get("wp"), self.config.lambda_wp),
                (losses.get("cl"), self.config.lambda_cl),
                (losses.get("ns"), self.config.lambda_ns),
            )
            if value is not None
        )
        return losses, True
