"""Input embeddings for the hierarchical encoder (Eq. 1–2).

* :class:`TextEmbedding` — word + 1-D position + segment (Eq. 1).
* :class:`LayoutEmbedding` — the 2-D spatial embedding of Eq. 2: separate
  x-axis, y-axis and page embedding tables whose outputs are concatenated
  (``[emb_g(p); emb_x(x_min, x_max, w); emb_y(y_min, y_max, h)]``) and
  projected to the model width.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Embedding, LayerNorm, Linear, Module, Tensor, concat
from ..nn import init as nn_init

__all__ = ["TextEmbedding", "LayoutEmbedding"]

_MAX_PAGES = 16


class TextEmbedding(Module):
    """Sum of word, 1-D positional and segment embeddings (Eq. 1)."""

    def __init__(
        self,
        vocab_size: int,
        dim: int,
        max_positions: int,
        num_segments: int = 2,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or nn_init.default_rng()
        self.word = Embedding(vocab_size, dim, rng=rng, padding_idx=0)
        self.position = Embedding(max_positions, dim, rng=rng)
        self.segment = Embedding(num_segments, dim, rng=rng)
        self.norm = LayerNorm(dim)
        self.max_positions = max_positions

    def forward(self, token_ids: np.ndarray, segments: np.ndarray) -> Tensor:
        """``token_ids``/``segments``: integer arrays ``(..., seq)``."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        seq = token_ids.shape[-1]
        if seq > self.max_positions:
            raise ValueError(
                f"sequence length {seq} exceeds max positions {self.max_positions}"
            )
        positions = np.broadcast_to(np.arange(seq), token_ids.shape)
        summed = (
            self.word(token_ids)
            + self.position(positions)
            + self.segment(np.asarray(segments, dtype=np.int64))
        )
        return self.norm(summed)

    def infer(
        self,
        token_ids: np.ndarray,
        segments: np.ndarray,
        dtype=None,
        positions: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Raw-array forward (same op order as :meth:`forward`).

        ``dtype`` routes the gathers through cast embedding tables so a
        single-precision inference pipeline starts narrow instead of
        converting after the fact.  ``positions`` overrides the implied
        0..seq-1 position ids — callers that flatten several padded
        groups into one row block pass the per-group positions here.
        """
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if positions is None:
            seq = token_ids.shape[-1]
            if seq > self.max_positions:
                raise ValueError(
                    f"sequence length {seq} exceeds max positions "
                    f"{self.max_positions}"
                )
            positions = np.broadcast_to(np.arange(seq), token_ids.shape)
        summed = self.word.lookup(token_ids, dtype=dtype)
        summed += self.position.lookup(positions, dtype=dtype)
        summed += self.segment.lookup(np.asarray(segments, dtype=np.int64), dtype=dtype)
        return self.norm.infer(summed)


class LayoutEmbedding(Module):
    """The 2-D layout embedding of Eq. 2 over bucketised coordinates.

    Inputs are integer layout tuples ``(x_min, y_min, x_max, y_max, width,
    height, page)`` (see :data:`repro.core.featurize.LAYOUT_FEATURES`).
    The x-features share one embedding table, the y-features another; the
    three x (respectively y) embeddings are summed, then ``[page; x; y]``
    is concatenated and projected to the model dimension.
    """

    def __init__(
        self,
        dim: int,
        buckets: int,
        rng: Optional[np.random.Generator] = None,
        axis_dim: Optional[int] = None,
        page_dim: int = 8,
    ):
        super().__init__()
        rng = rng or nn_init.default_rng()
        axis_dim = axis_dim or max(dim // 4, 8)
        self.x_table = Embedding(buckets, axis_dim, rng=rng)
        self.y_table = Embedding(buckets, axis_dim, rng=rng)
        self.page_table = Embedding(_MAX_PAGES, page_dim, rng=rng)
        self.project = Linear(page_dim + 2 * axis_dim, dim, rng=rng)

    def forward(self, layout: np.ndarray) -> Tensor:
        """``layout``: integer array ``(..., 7)``."""
        layout = np.asarray(layout, dtype=np.int64)
        x_part = (
            self.x_table(layout[..., 0])
            + self.x_table(layout[..., 2])
            + self.x_table(layout[..., 4])
        )
        y_part = (
            self.y_table(layout[..., 1])
            + self.y_table(layout[..., 3])
            + self.y_table(layout[..., 5])
        )
        page_part = self.page_table(layout[..., 6])
        combined = concat([page_part, x_part, y_part], axis=-1)
        return self.project(combined)

    def infer(self, layout: np.ndarray, dtype=None) -> np.ndarray:
        """Raw-array forward (same op order as :meth:`forward`)."""
        layout = np.asarray(layout, dtype=np.int64)
        x_part = self.x_table.lookup(layout[..., 0], dtype=dtype)
        x_part += self.x_table.lookup(layout[..., 2], dtype=dtype)
        x_part += self.x_table.lookup(layout[..., 4], dtype=dtype)
        y_part = self.y_table.lookup(layout[..., 1], dtype=dtype)
        y_part += self.y_table.lookup(layout[..., 3], dtype=dtype)
        y_part += self.y_table.lookup(layout[..., 5], dtype=dtype)
        page_part = self.page_table.lookup(layout[..., 6], dtype=dtype)
        combined = np.concatenate([page_part, x_part, y_part], axis=-1)
        return self.project.infer(combined)
