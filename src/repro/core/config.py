"""Model configuration for the hierarchical multi-modal encoder.

Defaults are a CPU-scale rendition of Section V-A2: the paper uses a 6-layer
sentence encoder and 4-layer document encoder at hidden size 768 with 12
heads; we keep every architectural mechanism but default to smaller
dimensions so pre-training and fine-tuning complete in seconds on a laptop.
All paper-scale values remain reachable through this config.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..corpus.render import VISUAL_DIM

__all__ = ["ResuFormerConfig"]


@dataclass
class ResuFormerConfig:
    """Hyper-parameters of the hierarchical encoder and its pre-training."""

    vocab_size: int = 2000
    # --- sentence-level encoder ---------------------------------------
    hidden_dim: int = 64
    sentence_layers: int = 2        # paper: 6
    sentence_heads: int = 4         # paper: 12
    max_sentence_tokens: int = 55   # paper: 55
    # --- document-level encoder ----------------------------------------
    document_layers: int = 2        # paper: 4
    document_heads: int = 4         # paper: 12
    max_document_sentences: int = 350  # paper: 350
    visual_dim: int = VISUAL_DIM
    visual_proj_dim: int = 16
    # --- shared ----------------------------------------------------------
    layout_buckets: int = 64        # coordinate buckets over [0, 1000]
    num_segments: int = 2           # [A]/[B]
    dropout: float = 0.1
    ffn_multiplier: int = 2
    # --- serving ----------------------------------------------------------
    #: Numeric regime of the inference fast path: "float64" (full
    #: precision, matches the training-graph forward to a few ulp of
    #: GEMM/LayerNorm round-off), "float32" (single-precision fused
    #: kernels) or "int8" (per-channel quantized GEMMs with a calibration
    #: pass; see repro.nn.quantize).
    inference_precision: str = "float64"
    # --- pre-training (Section V-A2) -------------------------------------
    token_mask_prob: float = 0.15
    sentence_mask_ratio: float = 0.2   # "masked sentence ... account for 0.2"
    next_sentence_ratio: float = 0.2
    temperature: float = 0.8           # tau
    lambda_wp: float = 0.4
    lambda_cl: float = 1.0
    lambda_ns: float = 0.6

    @property
    def document_dim(self) -> int:
        """Width of the document-level stream: text ⊕ projected visual."""
        return self.hidden_dim + self.visual_proj_dim

    def validate(self) -> "ResuFormerConfig":
        if self.hidden_dim % self.sentence_heads != 0:
            raise ValueError("hidden_dim must divide sentence_heads")
        if self.document_dim % self.document_heads != 0:
            raise ValueError("document_dim must divide document_heads")
        if not 0.0 < self.temperature:
            raise ValueError("temperature must be positive")
        if self.inference_precision not in ("float64", "float32", "int8"):
            raise ValueError(
                "inference_precision must be 'float64', 'float32' or 'int8': "
                f"{self.inference_precision!r}"
            )
        return self

    @classmethod
    def paper_scale(cls) -> "ResuFormerConfig":
        """The full Section V-A2 configuration (for reference; heavy on CPU)."""
        return cls(
            vocab_size=21128,
            hidden_dim=768,
            sentence_layers=6,
            sentence_heads=12,
            document_layers=4,
            document_heads=12,
            visual_proj_dim=96,  # document stream 768+96, divisible by 12
            ffn_multiplier=4,
        )
