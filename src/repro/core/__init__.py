"""``repro.core`` — the ResuFormer hierarchical multi-modal model.

Implements the paper's first task: resume block classification via a
pre-trained hierarchical Transformer (sentence encoder + document encoder),
three self-supervised objectives, a BiLSTM+MLP+CRF fine-tuning head, and
knowledge distillation from a token-level teacher.
"""

from .batching import DocumentBatch, collate_documents, collate_labels
from .block_classifier import BlockClassifier, BlockTrainer, LabeledDocument
from .config import ResuFormerConfig
from .distill import pseudo_label, run_distillation
from .document_encoder import DocumentEncoder
from .embeddings import LayoutEmbedding, TextEmbedding
from .featurize import LAYOUT_FEATURES, DocumentFeatures, FeatureCache, Featurizer
from .hierarchical import EncodedBatch, EncodedDocument, HierarchicalEncoder
from .pretrain import (
    Pretrainer,
    PretrainHeads,
    PretrainObjectives,
    masked_copy,
)
from .sentence_encoder import SentenceEncoder
from .training import GradAccumulator, iter_minibatches

__all__ = [
    "ResuFormerConfig",
    "Featurizer",
    "FeatureCache",
    "DocumentFeatures",
    "DocumentBatch",
    "collate_documents",
    "collate_labels",
    "GradAccumulator",
    "iter_minibatches",
    "EncodedBatch",
    "LAYOUT_FEATURES",
    "TextEmbedding",
    "LayoutEmbedding",
    "SentenceEncoder",
    "DocumentEncoder",
    "HierarchicalEncoder",
    "EncodedDocument",
    "PretrainObjectives",
    "PretrainHeads",
    "Pretrainer",
    "masked_copy",
    "BlockClassifier",
    "BlockTrainer",
    "LabeledDocument",
    "pseudo_label",
    "run_distillation",
]
