"""Command-line tools: ``python -m repro.tools <command>``.

Commands:

* ``generate`` — write a synthetic resume corpus as JSON lines;
* ``render`` — print one generated resume's annotated page layout;
* ``train`` — train a small end-to-end parser and save it;
* ``parse`` — load a saved parser and parse a freshly generated resume.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np


def _cmd_generate(args: argparse.Namespace) -> int:
    from .corpus import ContentConfig, ResumeGenerator

    profile = ContentConfig.paper() if args.profile == "paper" else ContentConfig.tiny()
    generator = ResumeGenerator(seed=args.seed, content_config=profile)
    for document in generator.stream(args.count):
        payload = {
            "doc_id": document.doc_id,
            "pages": document.num_pages,
            "sentences": [
                {
                    "text": s.text,
                    "page": s.page,
                    "bbox": list(s.bbox.to_tuple()),
                    "block": s.majority_block()[0],
                }
                for s in document.sentences
            ],
        }
        print(json.dumps(payload))
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from .corpus import ContentConfig, ResumeGenerator, ascii_page

    profile = ContentConfig.paper() if args.profile == "paper" else ContentConfig.tiny()
    document = ResumeGenerator(seed=args.seed, content_config=profile).batch(1)[0]
    for page in range(1, document.num_pages + 1):
        print(ascii_page(document, page))
        print()
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from .core import (
        BlockClassifier,
        BlockTrainer,
        Featurizer,
        HierarchicalEncoder,
        LabeledDocument,
        Pretrainer,
        ResuFormerConfig,
    )
    from .corpus import ContentConfig, ResumeGenerator
    from .persistence import save_parser
    from .pipeline import ResumeParser
    from .text import WordPieceTokenizer

    generator = ResumeGenerator(seed=args.seed, content_config=ContentConfig.tiny())
    documents = generator.batch(args.documents)
    split = max(args.documents - 4, 2)
    unlabeled, labeled = documents[:split], documents[split:]

    print(f"training on {len(labeled)} labeled / {len(unlabeled)} unlabeled resumes")
    tokenizer = WordPieceTokenizer.train(
        (s.text for d in documents for s in d.sentences), vocab_size=1000
    )
    config = ResuFormerConfig(vocab_size=len(tokenizer.vocab))
    featurizer = Featurizer(tokenizer, config)
    encoder = HierarchicalEncoder(config, rng=np.random.default_rng(args.seed))
    Pretrainer(encoder, featurizer, seed=args.seed).fit(
        unlabeled, epochs=args.pretrain_epochs
    )
    classifier = BlockClassifier(encoder, featurizer)
    trainer = BlockTrainer(classifier, seed=args.seed)
    history = trainer.fit(
        [LabeledDocument.from_gold(d) for d in labeled[:-1]],
        validation=[LabeledDocument.from_gold(labeled[-1])],
        epochs=args.epochs,
    )
    if history["val_accuracy"]:
        print(f"validation sentence accuracy: {history['val_accuracy'][-1]:.2f}")
    save_parser(ResumeParser(classifier), args.output)
    print(f"saved parser to {args.output}")
    return 0


def _cmd_parse(args: argparse.Namespace) -> int:
    from .corpus import ContentConfig, ResumeGenerator
    from .persistence import load_parser

    parser = load_parser(args.model)
    document = ResumeGenerator(
        seed=args.seed, content_config=ContentConfig.tiny()
    ).batch(1)[0]
    parsed = parser.parse(document)
    print(json.dumps(parsed.to_dict(), indent=2))
    return 0


def build_cli() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools",
        description="ResuFormer reproduction command-line tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="emit synthetic resumes as JSONL")
    generate.add_argument("--count", type=int, default=5)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--profile", choices=["tiny", "paper"], default="tiny")
    generate.set_defaults(func=_cmd_generate)

    render = sub.add_parser("render", help="print an annotated resume layout")
    render.add_argument("--seed", type=int, default=0)
    render.add_argument("--profile", choices=["tiny", "paper"], default="tiny")
    render.set_defaults(func=_cmd_render)

    train = sub.add_parser("train", help="train and save a small parser")
    train.add_argument("--output", required=True)
    train.add_argument("--documents", type=int, default=20)
    train.add_argument("--pretrain-epochs", type=int, default=2)
    train.add_argument("--epochs", type=int, default=8)
    train.add_argument("--seed", type=int, default=0)
    train.set_defaults(func=_cmd_train)

    parse = sub.add_parser("parse", help="parse a generated resume with a saved model")
    parse.add_argument("--model", required=True)
    parse.add_argument("--seed", type=int, default=123)
    parse.set_defaults(func=_cmd_parse)
    return parser


def main(argv=None) -> int:
    args = build_cli().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
