"""Vocabulary: bidirectional token/id mapping with reserved special tokens."""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List

__all__ = ["Vocab", "PAD", "UNK", "CLS", "SEP", "MASK", "SPECIAL_TOKENS"]

PAD = "[PAD]"
UNK = "[UNK]"
CLS = "[CLS]"
SEP = "[SEP]"
MASK = "[MASK]"
SPECIAL_TOKENS = (PAD, UNK, CLS, SEP, MASK)


class Vocab:
    """An immutable-after-build token vocabulary.

    Special tokens always occupy the first ids so ``pad_id == 0`` can be
    relied on by padding code everywhere.
    """

    def __init__(self, tokens: Iterable[str]):
        self._token_to_id: Dict[str, int] = {}
        self._id_to_token: List[str] = []
        for token in SPECIAL_TOKENS:
            self._add(token)
        for token in tokens:
            self._add(token)

    def _add(self, token: str) -> None:
        if token not in self._token_to_id:
            self._token_to_id[token] = len(self._id_to_token)
            self._id_to_token.append(token)

    # ------------------------------------------------------------------
    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK]

    @property
    def cls_id(self) -> int:
        return self._token_to_id[CLS]

    @property
    def sep_id(self) -> int:
        return self._token_to_id[SEP]

    @property
    def mask_id(self) -> int:
        return self._token_to_id[MASK]

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def token_to_id(self, token: str) -> int:
        return self._token_to_id.get(token, self.unk_id)

    def id_to_token(self, idx: int) -> str:
        return self._id_to_token[idx]

    def encode(self, tokens: Iterable[str]) -> List[int]:
        return [self.token_to_id(t) for t in tokens]

    def decode(self, ids: Iterable[int]) -> List[str]:
        return [self.id_to_token(i) for i in ids]

    def tokens(self) -> List[str]:
        """All tokens in id order (including specials)."""
        return list(self._id_to_token)

    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self._id_to_token, handle, ensure_ascii=False)

    @classmethod
    def load(cls, path: str) -> "Vocab":
        with open(path, encoding="utf-8") as handle:
            tokens = json.load(handle)
        if tokens[: len(SPECIAL_TOKENS)] != list(SPECIAL_TOKENS):
            raise ValueError("vocabulary file missing special-token prefix")
        return cls(tokens[len(SPECIAL_TOKENS) :])
