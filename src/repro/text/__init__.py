"""``repro.text`` — vocabulary and WordPiece tokenisation substrate."""

from .normalize import normalize_text, pretokenize
from .vocab import CLS, MASK, PAD, SEP, SPECIAL_TOKENS, UNK, Vocab
from .word2vec import Word2VecConfig, Word2VecModel, train_word2vec
from .wordpiece import WordPieceTokenizer, train_wordpiece

__all__ = [
    "normalize_text",
    "pretokenize",
    "Vocab",
    "PAD",
    "UNK",
    "CLS",
    "SEP",
    "MASK",
    "SPECIAL_TOKENS",
    "WordPieceTokenizer",
    "Word2VecConfig",
    "Word2VecModel",
    "train_word2vec",
    "train_wordpiece",
]
