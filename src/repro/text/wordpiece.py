"""A trainable WordPiece tokenizer (Sennrich-style subword units).

The paper tokenises resume text with WordPiece before feeding the
sentence-level encoder.  This implementation trains a vocabulary by
iterative pair merging over a word-frequency table (the standard BPE-style
WordPiece trainer) and tokenises with greedy longest-match-first using the
``##`` continuation convention.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple

from .normalize import pretokenize
from .vocab import UNK, Vocab

__all__ = ["WordPieceTokenizer", "train_wordpiece"]

_CONTINUATION = "##"


def _word_to_units(word: str) -> Tuple[str, ...]:
    """Split a word into its initial character units with ## markers."""
    return tuple(
        ch if i == 0 else _CONTINUATION + ch for i, ch in enumerate(word)
    )


def _merge_units(units: Tuple[str, ...], pair: Tuple[str, str]) -> Tuple[str, ...]:
    merged: List[str] = []
    i = 0
    while i < len(units):
        if i + 1 < len(units) and (units[i], units[i + 1]) == pair:
            right = units[i + 1]
            right = right[len(_CONTINUATION) :] if right.startswith(_CONTINUATION) else right
            merged.append(units[i] + right)
            i += 2
        else:
            merged.append(units[i])
            i += 1
    return tuple(merged)


def train_wordpiece(
    texts: Iterable[str],
    vocab_size: int = 2000,
    min_frequency: int = 2,
) -> Vocab:
    """Learn a WordPiece vocabulary from raw texts.

    Starts from the character alphabet and repeatedly merges the most
    frequent adjacent unit pair until ``vocab_size`` is reached or no pair
    occurs at least ``min_frequency`` times.
    """
    word_freq: Counter = Counter()
    for text in texts:
        word_freq.update(pretokenize(text))

    segmentations: Dict[str, Tuple[str, ...]] = {
        word: _word_to_units(word) for word in word_freq
    }
    alphabet = sorted({unit for units in segmentations.values() for unit in units})
    vocab_tokens: List[str] = list(alphabet)

    while len(vocab_tokens) < vocab_size:
        pair_freq: Counter = Counter()
        for word, units in segmentations.items():
            freq = word_freq[word]
            for a, b in zip(units, units[1:]):
                pair_freq[(a, b)] += freq
        if not pair_freq:
            break
        (best_pair, best_count) = pair_freq.most_common(1)[0]
        if best_count < min_frequency:
            break
        for word, units in segmentations.items():
            segmentations[word] = _merge_units(units, best_pair)
        left, right = best_pair
        right = right[len(_CONTINUATION) :] if right.startswith(_CONTINUATION) else right
        vocab_tokens.append(left + right)

    return Vocab(vocab_tokens)


class WordPieceTokenizer:
    """Greedy longest-match-first WordPiece tokenisation over a vocab."""

    def __init__(self, vocab: Vocab, max_word_chars: int = 64):
        self.vocab = vocab
        self.max_word_chars = max_word_chars
        self._cache: dict = {}

    @classmethod
    def train(
        cls,
        texts: Iterable[str],
        vocab_size: int = 2000,
        min_frequency: int = 2,
    ) -> "WordPieceTokenizer":
        return cls(train_wordpiece(texts, vocab_size, min_frequency))

    def tokenize_word(self, word: str) -> List[str]:
        """Tokenise a single (already normalised) word into subwords.

        Results are memoised — resume corpora repeat words heavily, and
        tokenisation is on the inference hot path.
        """
        cached = self._cache.get(word)
        if cached is not None:
            return list(cached)
        pieces = self._tokenize_word_uncached(word)
        self._cache[word] = tuple(pieces)
        return pieces

    def _tokenize_word_uncached(self, word: str) -> List[str]:
        if len(word) > self.max_word_chars:
            return [UNK]
        pieces = self._greedy_match(word)
        if pieces is not None:
            return pieces
        # Words with internal punctuation (phones, emails, dates) cannot
        # match a vocabulary trained on punctuation-split text; fall back to
        # BERT's basic-tokenizer behaviour — split on punctuation and
        # tokenise each chunk — while still emitting one piece list for the
        # whole word so word-level label alignment is preserved.
        chunks = pretokenize(word)
        if len(chunks) <= 1:
            return [UNK]
        pieces = []
        for chunk in chunks:
            chunk_pieces = self._greedy_match(chunk)
            pieces.extend(chunk_pieces if chunk_pieces is not None else [UNK])
        return pieces

    def _greedy_match(self, word: str) -> Optional[List[str]]:
        """Longest-match-first WordPiece; None when unmatchable."""
        if not word:
            return []
        pieces: List[str] = []
        start = 0
        while start < len(word):
            end = len(word)
            piece: Optional[str] = None
            while start < end:
                candidate = word[start:end]
                if start > 0:
                    candidate = _CONTINUATION + candidate
                if candidate in self.vocab:
                    piece = candidate
                    break
                end -= 1
            if piece is None:
                return None
            pieces.append(piece)
            start = end
        return pieces

    def tokenize(self, text: str) -> List[str]:
        """Tokenise raw text into subword strings."""
        tokens: List[str] = []
        for word in pretokenize(text):
            tokens.extend(self.tokenize_word(word))
        return tokens

    def encode(self, text: str) -> List[int]:
        """Tokenise and map to vocabulary ids."""
        return self.vocab.encode(self.tokenize(text))

    def decode(self, ids: Iterable[int]) -> str:
        """Best-effort inverse: join subwords, removing ## markers."""
        words: List[str] = []
        for token in self.vocab.decode(list(ids)):
            if token.startswith(_CONTINUATION) and words:
                words[-1] += token[len(_CONTINUATION) :]
            else:
                words.append(token)
        return " ".join(words)
