"""Skip-gram word2vec with negative sampling (Mikolov et al., 2013).

The paper's related work traces resume extraction through Word2Vec-
initialised BiLSTM+CRF systems (Sheng et al., 2018; Chen et al., 2016);
this module provides that substrate: a from-scratch SGNS trainer over the
corpus, producing an embedding matrix aligned to a :class:`~repro.text.
vocab.Vocab` that can initialise any model's word embedding table.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List, Optional, Sequence

import numpy as np

from .normalize import pretokenize
from .vocab import SPECIAL_TOKENS, Vocab

__all__ = ["Word2VecConfig", "train_word2vec", "Word2VecModel"]


class Word2VecConfig:
    """SGNS hyper-parameters."""

    def __init__(
        self,
        dim: int = 64,
        window: int = 3,
        negatives: int = 5,
        epochs: int = 3,
        learning_rate: float = 0.025,
        min_count: int = 1,
        subsample: float = 0.0,
        seed: int = 0,
    ):
        """``subsample`` of 0 disables frequent-word subsampling — the
        Mikolov heuristic assumes web-scale corpora and starves small ones."""
        if dim <= 0 or window <= 0 or negatives <= 0:
            raise ValueError("dim, window and negatives must be positive")
        self.dim = dim
        self.window = window
        self.negatives = negatives
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.min_count = min_count
        self.subsample = subsample
        self.seed = seed


class Word2VecModel:
    """Trained embeddings with similarity queries."""

    def __init__(self, vocab: Vocab, vectors: np.ndarray):
        if vectors.shape[0] != len(vocab):
            raise ValueError("vectors must align with the vocabulary")
        self.vocab = vocab
        self.vectors = vectors

    def vector(self, word: str) -> np.ndarray:
        return self.vectors[self.vocab.token_to_id(word)]

    def similarity(self, a: str, b: str) -> float:
        va, vb = self.vector(a), self.vector(b)
        denom = np.linalg.norm(va) * np.linalg.norm(vb)
        if denom == 0:
            return 0.0
        return float(va @ vb / denom)

    def most_similar(self, word: str, top: int = 5) -> List[tuple]:
        """Nearest words by cosine similarity (excludes the query/specials)."""
        query = self.vector(word)
        norms = np.linalg.norm(self.vectors, axis=1) * max(
            np.linalg.norm(query), 1e-12
        )
        scores = self.vectors @ query / np.maximum(norms, 1e-12)
        order = np.argsort(-scores)
        results = []
        skip = {self.vocab.token_to_id(word)} | set(range(len(SPECIAL_TOKENS)))
        for idx in order:
            if int(idx) in skip:
                continue
            results.append((self.vocab.id_to_token(int(idx)), float(scores[idx])))
            if len(results) >= top:
                break
        return results


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))


def train_word2vec(
    texts: Iterable[str],
    config: Optional[Word2VecConfig] = None,
    vocab: Optional[Vocab] = None,
) -> Word2VecModel:
    """Train SGNS embeddings over raw texts.

    When ``vocab`` is given, embeddings align to it (words below
    ``min_count`` or outside the corpus keep their random initialisation);
    otherwise a word-level vocabulary is built from the corpus.
    """
    config = config or Word2VecConfig()
    rng = np.random.default_rng(config.seed)

    sentences: List[List[str]] = [pretokenize(text) for text in texts]
    counts = Counter(word for sentence in sentences for word in sentence)
    if vocab is None:
        kept = [w for w, c in counts.most_common() if c >= config.min_count]
        vocab = Vocab(kept)

    vocab_size = len(vocab)
    input_vectors = (rng.random((vocab_size, config.dim)) - 0.5) / config.dim
    output_vectors = np.zeros((vocab_size, config.dim))

    # Unigram^0.75 negative-sampling table.
    frequencies = np.zeros(vocab_size)
    for word, count in counts.items():
        frequencies[vocab.token_to_id(word)] += count
    weights = frequencies**0.75
    total_weight = weights.sum()
    if total_weight == 0:
        return Word2VecModel(vocab, input_vectors)
    sampling = weights / total_weight

    total_words = max(sum(counts.values()), 1)
    lr = config.learning_rate
    for _ in range(config.epochs):
        for sentence in sentences:
            ids: List[int] = []
            for word in sentence:
                idx = vocab.token_to_id(word)
                if idx == vocab.unk_id:
                    continue
                if config.subsample > 0:
                    # Frequent-word subsampling (Mikolov's heuristic).
                    frequency = counts[word] / total_words
                    keep = min(
                        1.0,
                        (config.subsample / frequency) ** 0.5
                        + config.subsample / frequency,
                    )
                    if rng.random() >= keep:
                        continue
                ids.append(idx)
            for position, center in enumerate(ids):
                span = int(rng.integers(1, config.window + 1))
                lo = max(position - span, 0)
                hi = min(position + span + 1, len(ids))
                for ctx_pos in range(lo, hi):
                    if ctx_pos == position:
                        continue
                    context = ids[ctx_pos]
                    negatives = rng.choice(
                        vocab_size, size=config.negatives, p=sampling
                    )
                    targets = np.concatenate([[context], negatives])
                    labels = np.zeros(len(targets))
                    labels[0] = 1.0
                    v_in = input_vectors[center]
                    v_out = output_vectors[targets]
                    scores = _sigmoid(v_out @ v_in)
                    gradient = (labels - scores) * lr
                    input_vectors[center] += gradient @ v_out
                    output_vectors[targets] += gradient[:, None] * v_in
    return Word2VecModel(vocab, input_vectors)
