"""Text normalisation and pre-tokenisation helpers."""

from __future__ import annotations

import re
import unicodedata
from typing import List

__all__ = ["normalize_text", "pretokenize"]

_PUNCT_RE = re.compile(r"([!-/:-@\[-`{-~])")
_WHITESPACE_RE = re.compile(r"\s+")


def normalize_text(text: str) -> str:
    """Lowercase, NFKC-normalise and collapse whitespace."""
    text = unicodedata.normalize("NFKC", text)
    text = text.lower()
    return _WHITESPACE_RE.sub(" ", text).strip()


def pretokenize(text: str) -> List[str]:
    """Split normalised text into whitespace/punctuation-delimited words.

    Punctuation characters become standalone tokens, matching the BERT
    basic tokenizer's behaviour so emails split as
    ``alice @ example . com``.
    """
    text = normalize_text(text)
    if not text:
        return []
    text = _PUNCT_RE.sub(r" \1 ", text)
    return [w for w in text.split(" ") if w]
