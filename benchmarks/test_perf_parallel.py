"""Perf benchmark: multi-process data-parallel training and corpus gen.

Times pre-training epochs and synthetic corpus generation at 1, 2 and 4
workers (``repro.parallel``) and records wall-clock, throughput, scaling
efficiency, plus the embedded telemetry summary (all-reduce spans,
per-worker step timers, shard-imbalance gauge) and a sampling-profiler
summary of one untimed 2-worker run (hot functions, span self-time,
memory watermarks).  The machine-readable report goes to
``BENCH_parallel.json`` at the repository root.

Parity comes first: before any timing, the 1-vs-2-worker run must land
within 1e-9 on final parameters — a fast shard that optimises a
different objective would be worthless.

The 1-worker baseline runs the same sharded discipline in process (no
spawn cost), so the multi-worker numbers answer "what does forking buy
me" rather than "what does the parallel code path cost".  The scaling
floor (>= 1.6x at 4 workers) is only asserted on machines with at least
4 cores and outside smoke mode — a single-core container can't
materialise parallel speedup no matter how sound the implementation.

``BENCH_PARALLEL_SMOKE=1`` shrinks the workload for CI and skips the
speedup floor (shared runners are too noisy to gate on), keeping the
parity assertion.

Run via ``make bench-parallel`` (or ``pytest benchmarks/test_perf_parallel.py``).
"""

from __future__ import annotations

import gc
import os
import time

import numpy as np

import repro  # noqa: F401  (pins BLAS threads)
from repro import obs
from repro.core import Featurizer, HierarchicalEncoder, Pretrainer, ResuFormerConfig
from repro.corpus import ContentConfig, ResumeGenerator
from repro.parallel import param_vector
from repro.text import WordPieceTokenizer

REPORT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_parallel.json",
)

SMOKE = os.environ.get("BENCH_PARALLEL_SMOKE", "") not in ("", "0")
WORKER_COUNTS = (1, 2, 4)
NUM_DOCS = 8 if SMOKE else 24
GEN_DOCS = 8 if SMOKE else 48
BATCH_SIZE = 8
EPOCHS = 1
ROUNDS = 1 if SMOKE else 2
SEED = 611


def _build_world():
    generator = ResumeGenerator(seed=SEED, content_config=ContentConfig.tiny())
    documents = generator.batch(NUM_DOCS)
    tokenizer = WordPieceTokenizer.train(
        (s.text for d in documents for s in d.sentences),
        vocab_size=600,
        min_frequency=1,
    )
    config = ResuFormerConfig(vocab_size=len(tokenizer.vocab), dropout=0.0)
    return generator, documents, tokenizer, config


def _pretrain(documents, tokenizer, config, num_workers, learning_rate=5e-4):
    encoder = HierarchicalEncoder(config, rng=np.random.default_rng(SEED))
    trainer = Pretrainer(
        encoder,
        Featurizer(tokenizer, config),
        seed=SEED + 1,
        learning_rate=learning_rate,
    )
    trainer.fit(
        documents, epochs=EPOCHS, batch_size=BATCH_SIZE, num_workers=num_workers
    )
    return param_vector(encoder.parameters())


def test_parallel_training_scaling(monkeypatch):
    cores = os.cpu_count() or 1
    generator, documents, tokenizer, config = _build_world()

    # Parity gate before any timing (local backend: arithmetic identical
    # to the spawn pool, no fork latency in the assertion path).
    with monkeypatch.context() as patch:
        patch.setenv("REPRO_PARALLEL_BACKEND", "local")
        parity_gap = float(
            np.abs(
                _pretrain(documents, tokenizer, config, 1)
                - _pretrain(documents, tokenizer, config, 2)
            ).max()
        )
    assert parity_gap <= 1e-9, (
        f"1-vs-2-worker final parameters diverged by {parity_gap:.2e}"
    )

    session = obs.Telemetry()
    train_seconds = {}
    generate_seconds = {}
    for num_workers in WORKER_COUNTS:
        train_rounds, generate_rounds = [], []
        for _ in range(ROUNDS):
            gc.collect()
            started = time.perf_counter()
            with obs.use_telemetry(session):
                _pretrain(documents, tokenizer, config, num_workers)
            train_rounds.append(time.perf_counter() - started)

            gc.collect()
            started = time.perf_counter()
            with obs.use_telemetry(session):
                generated = generator.batch(GEN_DOCS, num_workers=num_workers)
            generate_rounds.append(time.perf_counter() - started)
            assert len(generated) == GEN_DOCS
        train_seconds[num_workers] = min(train_rounds)
        generate_seconds[num_workers] = min(generate_rounds)

    # One extra (untimed) 2-worker pretrain under the sampling profiler:
    # the report carries where multi-process wall time actually goes —
    # parent dispatch/collect vs worker forward/backward — without the
    # sampler perturbing the timed rounds above.
    profiler = obs.Profiler(hz=obs.DEFAULT_PROFILE_HZ)
    profiled = obs.Telemetry(profiler=profiler)
    profiler.start()
    try:
        with obs.use_telemetry(profiled):
            _pretrain(documents, tokenizer, config, 2)
    finally:
        profiler.stop()

    num_steps = EPOCHS * -(-NUM_DOCS // BATCH_SIZE)
    speedups = {
        w: train_seconds[1] / train_seconds[w] for w in WORKER_COUNTS
    }
    report = {
        "benchmark": "parallel_training",
        "smoke": SMOKE,
        "cpu_count": cores,
        "num_documents": NUM_DOCS,
        "generated_documents": GEN_DOCS,
        "batch_size": BATCH_SIZE,
        "epochs": EPOCHS,
        "rounds": ROUNDS,
        "parity_max_abs_diff": parity_gap,
        "pretrain": {
            "seconds": {str(w): train_seconds[w] for w in WORKER_COUNTS},
            "steps_per_second": {
                str(w): num_steps / train_seconds[w] for w in WORKER_COUNTS
            },
            "documents_per_second": {
                str(w): EPOCHS * NUM_DOCS / train_seconds[w]
                for w in WORKER_COUNTS
            },
            "speedup_vs_one_worker": {str(w): speedups[w] for w in WORKER_COUNTS},
            "scaling_efficiency": {
                str(w): speedups[w] / w for w in WORKER_COUNTS
            },
        },
        "corpus_generation": {
            "seconds": {str(w): generate_seconds[w] for w in WORKER_COUNTS},
            "documents_per_second": {
                str(w): GEN_DOCS / generate_seconds[w] for w in WORKER_COUNTS
            },
            "speedup_vs_one_worker": {
                str(w): generate_seconds[1] / generate_seconds[w]
                for w in WORKER_COUNTS
            },
        },
        "telemetry": session.summary(),
        "profile": profiler.summary(),
    }
    obs.write_bench_report(REPORT_PATH, report)
    print(
        f"\nparallel pretraining on {cores} cores: "
        + " | ".join(
            f"{w}w {train_seconds[w]:.2f}s ({speedups[w]:.2f}x)"
            for w in WORKER_COUNTS
        )
        + f" | corpus gen 4w {generate_seconds[4]:.2f}s | parity {parity_gap:.1e}"
        f"\n[saved to {REPORT_PATH}]",
        flush=True,
    )

    if not SMOKE and cores >= 4:
        assert speedups[4] >= 1.6, (
            f"4-worker pretraining must be >= 1.6x over 1 worker on a "
            f"{cores}-core machine, got {speedups[4]:.2f}x"
        )
