"""Shared setup for the intra-block NER benchmarks (Tables IV and V)."""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Sequence

import numpy as np

import repro  # noqa: F401
from repro.baselines import (
    AutoNer,
    BertBiLstmCrf,
    BertBiLstmFuzzyCrf,
    DrMatch,
    NerBaselineTrainer,
)
from repro.corpus import NerExample, build_ner_corpus
from repro.docmodel import BLOCK_ENTITIES
from repro.eval import PrfScore, entity_prf_by_tag
from repro.ner import (
    DistantAnnotator,
    NerConfig,
    NerTagger,
    SelfTrainConfig,
    SelfTrainer,
    annotate_examples,
    augment_examples,
    build_dictionaries,
)
from repro.text import WordPieceTokenizer

#: Experiment scale: the paper's 20k/400/600 samples at ~1:25.
NUM_TRAIN_DOCS = 110
NUM_VALIDATION_DOCS = 8
NUM_TEST_DOCS = 14
SEED = 11
#: Dictionary calibration: chosen so the D&R Match profile matches the
#: paper's (high precision, partial recall, macro-F1 ≈ 0.75-0.8).
DICT_COVERAGE = 0.45
DICT_NOISE = 0.5
NAME_COVERAGE = 0.65

TEACHER_EPOCHS = 14
TEACHER_PATIENCE = 5
SELF_TRAIN_ITERATIONS = 64
LEARNING_RATE = 2e-3
STUDENT_LEARNING_RATE = 5e-4
BATCH_SIZE = 24
BASELINE_EPOCHS = 12
HIDDEN_DIM = 80
LSTM_HIDDEN = 48


@lru_cache(maxsize=1)
def ner_world():
    """Corpus, annotator, distant train set, tokenizer, config."""
    corpus = build_ner_corpus(
        num_train_docs=NUM_TRAIN_DOCS,
        num_validation_docs=NUM_VALIDATION_DOCS,
        num_test_docs=NUM_TEST_DOCS,
        seed=SEED,
    )
    dictionaries = build_dictionaries(
        coverage=DICT_COVERAGE, seed=1, noise=DICT_NOISE,
        name_coverage=NAME_COVERAGE,
    )
    annotator = DistantAnnotator(dictionaries)
    train = augment_examples(
        annotate_examples(corpus.train, annotator), dictionaries, seed=0
    )
    tokenizer = WordPieceTokenizer.train(
        (e.text for e in train), vocab_size=1400, min_frequency=1
    )
    config_kwargs = dict(
        vocab_size=len(tokenizer.vocab),
        hidden_dim=HIDDEN_DIM,
        lstm_hidden=LSTM_HIDDEN,
    )
    return corpus, annotator, train, tokenizer, config_kwargs


def self_train_config(**overrides) -> SelfTrainConfig:
    base = dict(
        teacher_epochs=TEACHER_EPOCHS,
        teacher_patience=TEACHER_PATIENCE,
        iterations=SELF_TRAIN_ITERATIONS,
        learning_rate=LEARNING_RATE,
        student_learning_rate=STUDENT_LEARNING_RATE,
        batch_size=BATCH_SIZE,
        eval_every=4,
    )
    base.update(overrides)
    return SelfTrainConfig(**base)


@lru_cache(maxsize=1)
def ner_teacher() -> NerTagger:
    """The early-stopped teacher (also Table V's *w/o SD* row).

    All self-training variants share this teacher: Algorithm 2's step 1 is
    identical across them, so training it once is equivalent to the paper's
    per-variant retraining and saves several minutes per variant.
    """
    corpus, _, train, tokenizer, config_kwargs = ner_world()
    model = NerTagger(
        NerConfig(**config_kwargs), tokenizer, rng=np.random.default_rng(0)
    )
    trainer = SelfTrainer(model, self_train_config(iterations=0), seed=0)
    return trainer.train_teacher(train, corpus.validation)


def train_our_ner(seed: int = 0, **config_overrides) -> NerTagger:
    corpus, _, train, tokenizer, config_kwargs = ner_world()
    config = self_train_config(**config_overrides)
    teacher = ner_teacher()
    if not config.use_self_distillation:
        return teacher
    trainer = SelfTrainer(teacher, config, seed=seed)
    return trainer.self_train(teacher, train, corpus.validation)


@lru_cache(maxsize=1)
def our_ner_model() -> NerTagger:
    return train_our_ner()


@lru_cache(maxsize=1)
def dr_match_model() -> DrMatch:
    _, annotator, *_ = ner_world()
    return DrMatch(annotator)


def _train_baseline(cls, seed: int, needs_annotator: bool):
    corpus, annotator, train, tokenizer, config_kwargs = ner_world()
    model = cls(
        NerConfig(**config_kwargs), tokenizer, rng=np.random.default_rng(seed)
    )
    trainer = NerBaselineTrainer(
        model,
        annotator=annotator if needs_annotator else None,
        learning_rate=LEARNING_RATE,
        batch_size=BATCH_SIZE,
        seed=seed,
    )
    trainer.fit(train, epochs=BASELINE_EPOCHS)
    return model


@lru_cache(maxsize=1)
def bilstm_crf_model():
    return _train_baseline(BertBiLstmCrf, seed=20, needs_annotator=False)


@lru_cache(maxsize=1)
def bilstm_fuzzy_crf_model():
    return _train_baseline(BertBiLstmFuzzyCrf, seed=21, needs_annotator=True)


@lru_cache(maxsize=1)
def autoner_model():
    return _train_baseline(AutoNer, seed=22, needs_annotator=True)


NER_METHOD_BUILDERS = {
    "D&R Match": dr_match_model,
    "BERT+BiLSTM+CRF": bilstm_crf_model,
    "BERT+BiLSTM+FCRF": bilstm_fuzzy_crf_model,
    "AutoNER": autoner_model,
    "Our Method": our_ner_model,
}

#: Table IV's row layout: (block, tag) pairs in paper order.
TABLE4_ROWS = [
    (block, tag) for block, tags in BLOCK_ENTITIES.items() for tag in tags
]


def scores_by_block(
    model, test: Sequence[NerExample]
) -> Dict[str, PrfScore]:
    """Per-(block, tag) entity scores keyed ``'Block/Tag'`` (Table IV rows)."""
    predictions = model.predict(test)
    results: Dict[str, PrfScore] = {}
    for block in BLOCK_ENTITIES:
        indices = [i for i, e in enumerate(test) if e.block_tag == block]
        if not indices:
            continue
        gold = [test[i].labels for i in indices]
        pred = [predictions[i] for i in indices]
        for tag, score in entity_prf_by_tag(gold, pred).items():
            if tag in BLOCK_ENTITIES[block]:
                results[f"{block}/{tag}"] = score
    return results


def macro_f1(scores: Dict[str, PrfScore]) -> float:
    values = [s.f1 for s in scores.values()]
    return float(np.mean(values)) if values else 0.0
