"""Perf benchmark: batched training steps vs per-document training steps.

Times one epoch of block-classifier training both ways on the same
documents — the classic loop (zero_grad / loss / backward / clip / step
per document) against the mini-batch engine (one collated CRF loss and
one optimizer step per ``BATCH_SIZE`` documents) — and records steps/sec,
sentences/sec, per-stage breakdown (collate / loss / backward / step),
plus the same comparison for the pre-training objectives and the NER
word-BiLSTM loss.  The machine-readable report goes to
``BENCH_training.json`` at the repository root.

Both paths are timed in interleaved rounds and the speedup is taken from
each path's fastest round (noise only ever inflates a round, so the
minimum is the most faithful estimate of true cost).  Before any timing,
the batched loss is asserted equal (within tolerance) to the mean of the
per-document losses — a fast batch that optimises a different objective
would be worthless.

``BENCH_TRAIN_SMOKE=1`` shrinks the workload for CI and skips the
speedup floor (shared runners are too noisy to gate on), keeping the
parity assertions.

Run via ``make bench-train`` (or ``pytest benchmarks/test_perf_training.py``).
"""

from __future__ import annotations

import gc
import os
import time

import numpy as np

import repro  # noqa: F401  (pins BLAS threads)
from repro import obs
from repro.core import (
    BlockClassifier,
    Featurizer,
    HierarchicalEncoder,
    LabeledDocument,
    Pretrainer,
    ResuFormerConfig,
    collate_documents,
    collate_labels,
    iter_minibatches,
)
from repro.corpus import ContentConfig, ResumeGenerator, build_ner_corpus
from repro.eval import LatencyStats, StageProfile
from repro.ner import NerConfig, NerTagger
from repro.nn import AdamW, ParamGroup, clip_grad_norm
from repro.text import WordPieceTokenizer

REPORT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_training.json",
)

SMOKE = os.environ.get("BENCH_TRAIN_SMOKE", "") not in ("", "0")
NUM_DOCS = 8 if SMOKE else 32
BATCH_SIZE = 8
ROUNDS = 2 if SMOKE else 5
SEED = 417


def _build_world():
    generator = ResumeGenerator(seed=SEED, content_config=ContentConfig.tiny())
    documents = generator.batch(NUM_DOCS)
    tokenizer = WordPieceTokenizer.train(
        (s.text for d in documents for s in d.sentences),
        vocab_size=600,
        min_frequency=1,
    )
    config = ResuFormerConfig(vocab_size=len(tokenizer.vocab), dropout=0.0)
    featurizer = Featurizer(tokenizer, config)
    encoder = HierarchicalEncoder(config, rng=np.random.default_rng(SEED))
    model = BlockClassifier(encoder, featurizer, rng=np.random.default_rng(SEED + 1))
    labeled = [LabeledDocument.from_gold(d) for d in documents]
    features = [featurizer.featurize(item.document) for item in labeled]
    return documents, model, labeled, features


def _zero_lr_optimizer(parameters) -> AdamW:
    """Full AdamW step compute with a 0.0 learning rate.

    Every measured round then runs on identical parameters — the work per
    round is exactly repeatable and the pre-timing parity check stays
    valid throughout — while the step itself costs the same as a real one.
    """
    return AdamW([ParamGroup(parameters, 0.0)], weight_decay=0.0)


def test_batched_training_speedup():
    _, model, labeled, features = _build_world()
    model.train()
    parameters = model.parameters()
    optimizer = _zero_lr_optimizer(parameters)
    label_lists = [item.labels for item in labeled]

    # Length-bucketed chunks, exactly as BlockTrainer.fit forms them:
    # each chunk groups similarly-sized documents so the padded kernels
    # don't pay the longest document's cost on every row.  Collation is
    # still *timed* (re-done inside the batched rounds) since it is
    # genuine per-step work of the batched path.
    chunk_indices = list(iter_minibatches(
        len(features), BATCH_SIZE,
        lengths=[f.num_sentences for f in features],
    ))
    chunk_features = [[features[i] for i in c] for c in chunk_indices]
    chunk_labels = [[label_lists[i] for i in c] for c in chunk_indices]

    # Parity first: a fast step that computes the wrong loss is worthless.
    parity_gap = 0.0
    for chunk, labels in zip(chunk_features, chunk_labels):
        batched = float(model.loss_batch(
            collate_documents(chunk), collate_labels(chunk, labels)
        ).data)
        singles = [float(model.loss(f, l).data) for f, l in zip(chunk, labels)]
        parity_gap = max(parity_gap, abs(batched - float(np.mean(singles))))
    assert parity_gap < 1e-6, (
        f"batched loss drifted {parity_gap:.2e} from the per-document mean"
    )

    def single_step(f, labels):
        optimizer.zero_grad()
        loss = model.loss(f, labels)
        loss.backward()
        clip_grad_norm(parameters, 5.0)
        optimizer.step()

    profile = StageProfile()

    def batched_step(chunk, labels):
        with profile.stage("collate"):
            batch = collate_documents(chunk)
            label_block = collate_labels(chunk, labels)
        optimizer.zero_grad()
        with profile.stage("loss"):
            loss = model.loss_batch(batch, label_block)
        with profile.stage("backward"):
            loss.backward()
        with profile.stage("step"):
            clip_grad_norm(parameters, 5.0)
            optimizer.step()

    # Warm both code paths before measuring.
    single_step(features[0], label_lists[0])
    batched_step(chunk_features[0], chunk_labels[0])

    single_samples = []
    single_rounds = []
    batched_rounds = []
    # The batched rounds run under a telemetry session so optimizer-step
    # timings and grad-norm gauges land in the report; the per-document
    # reference rounds stay outside it, so instrumentation cost can only
    # ever count *against* the batched path it is reported for.
    session = obs.Telemetry()
    for _ in range(ROUNDS):
        gc.collect()
        started_round = time.perf_counter()
        for f, labels in zip(features, label_lists):
            started = time.perf_counter()
            single_step(f, labels)
            single_samples.append(time.perf_counter() - started)
        single_rounds.append(time.perf_counter() - started_round)

        gc.collect()
        started_round = time.perf_counter()
        with obs.use_telemetry(session):
            for chunk, labels in zip(chunk_features, chunk_labels):
                batched_step(chunk, labels)
        batched_rounds.append(time.perf_counter() - started_round)

    single = LatencyStats.from_samples(single_samples)
    batched = LatencyStats.from_samples(batched_rounds, units=[NUM_DOCS] * ROUNDS)
    num_sentences = sum(f.num_sentences for f in features)
    speedup = min(single_rounds) / min(batched_rounds)

    # --- Pre-training objectives: batch-of-8 step vs batch-of-1 steps ---
    pretrainer = Pretrainer(model.encoder, model.featurizer, seed=SEED)
    pretrainer.optimizer = _zero_lr_optimizer(
        pretrainer.encoder.parameters() + pretrainer.heads.parameters()
    )
    pretrainer.pretrain_step(features[:BATCH_SIZE])  # warm
    pre_single_rounds, pre_batched_rounds = [], []
    pretrain_rounds = 1 if SMOKE else 3
    for _ in range(pretrain_rounds):
        gc.collect()
        started = time.perf_counter()
        for f in features[:BATCH_SIZE]:
            pretrainer.pretrain_step([f])
        pre_single_rounds.append(time.perf_counter() - started)
        gc.collect()
        started = time.perf_counter()
        with obs.use_telemetry(session):
            losses = pretrainer.pretrain_step(features[:BATCH_SIZE])
        pre_batched_rounds.append(time.perf_counter() - started)
    pretrain_speedup = min(pre_single_rounds) / min(pre_batched_rounds)

    # --- NER word-BiLSTM+MLP loss: per-example steps vs one batched step ---
    corpus = build_ner_corpus(
        num_train_docs=4, num_validation_docs=1, num_test_docs=1, seed=SEED
    )
    ner_tokenizer = WordPieceTokenizer.train(
        [e.text for e in corpus.train], vocab_size=400, min_frequency=1
    )
    tagger = NerTagger(
        NerConfig(
            vocab_size=len(ner_tokenizer.vocab),
            hidden_dim=32,
            layers=1,
            heads=2,
            lstm_hidden=16,
            dropout=0.0,
        ),
        ner_tokenizer,
        rng=np.random.default_rng(SEED),
    )
    tagger.train()
    examples = (corpus.train * BATCH_SIZE)[:BATCH_SIZE]
    ner_params = tagger.parameters()
    ner_optimizer = _zero_lr_optimizer(ner_params)
    ner_batch = tagger.featurizer.featurize(examples)
    ner_singles = [tagger.featurizer.featurize([e]) for e in examples]

    def ner_step(loss_fn):
        ner_optimizer.zero_grad()
        loss = loss_fn()
        loss.backward()
        clip_grad_norm(ner_params, 5.0)
        ner_optimizer.step()
        return float(loss.data)

    ner_step(lambda: tagger.loss_batch(ner_batch))  # warm
    ner_single_rounds, ner_batched_rounds = [], []
    for _ in range(ROUNDS):
        gc.collect()
        started = time.perf_counter()
        singles = [ner_step(lambda f=f: tagger.loss(f)) for f in ner_singles]
        ner_single_rounds.append(time.perf_counter() - started)
        gc.collect()
        started = time.perf_counter()
        ner_batched_loss = ner_step(lambda: tagger.loss_batch(ner_batch))
        ner_batched_rounds.append(time.perf_counter() - started)
    assert abs(ner_batched_loss - float(np.mean(singles))) < 1e-6
    ner_speedup = min(ner_single_rounds) / min(ner_batched_rounds)

    report = {
        "benchmark": "batched_training",
        "smoke": SMOKE,
        "num_documents": NUM_DOCS,
        "batch_size": BATCH_SIZE,
        "rounds": ROUNDS,
        "block_trainer": {
            "per_document_step": single.to_dict(),
            "batched_step": batched.to_dict(),
            "best_round_seconds": {
                "per_document_step": min(single_rounds),
                "batched_step": min(batched_rounds),
            },
            "speedup_per_document": speedup,
            "loss_parity_max_abs_diff": parity_gap,
            "steps_per_second": {
                "per_document": NUM_DOCS / min(single_rounds),
                "batched": len(chunk_features) / min(batched_rounds),
            },
            "sentences_per_second": {
                "per_document": num_sentences / min(single_rounds),
                "batched": num_sentences / min(batched_rounds),
            },
            "stages": profile.breakdown(),
        },
        "pretrain": {
            "batch_size": BATCH_SIZE,
            "best_round_seconds": {
                "per_document_step": min(pre_single_rounds),
                "batched_step": min(pre_batched_rounds),
            },
            "speedup_per_document": pretrain_speedup,
            "losses": losses,
        },
        "ner": {
            "batch_size": BATCH_SIZE,
            "best_round_seconds": {
                "per_example_step": min(ner_single_rounds),
                "batched_step": min(ner_batched_rounds),
            },
            "speedup_per_example": ner_speedup,
        },
        "telemetry": session.summary(),
    }
    obs.write_bench_report(REPORT_PATH, report)
    print(
        f"\nblock training: per-doc p50={single.p50 * 1e3:.1f}ms/doc, batched "
        f"p50={batched.p50 * 1e3:.1f}ms/doc | speedup {speedup:.2f}x | "
        f"{num_sentences / min(batched_rounds):.0f} sentences/s | "
        f"pretrain {pretrain_speedup:.2f}x | ner {ner_speedup:.2f}x"
        f"\n[saved to {REPORT_PATH}]",
        flush=True,
    )

    if not SMOKE:
        assert speedup >= 2.0, (
            f"batched training step must be >= 2x faster per document at "
            f"batch {BATCH_SIZE}, got {speedup:.2f}x"
        )
