"""Table II — resume block classification: per-tag F1 (R/P) + Time/Resume.

Paper results (F1): our method wins on 7 of 8 tags (LayoutXLM edges PInfo),
pre-trained multimodal models (RoBERTa+GCN, LayoutXLM, ours) dominate the
text-only non-pretrained ones (BERT+CRF, HiBERT+CRF), and the two
sentence-level methods (HiBERT+CRF 0.19s, ours 0.27s) run ~15x faster per
resume than the token-level ones (3.26-3.88s).

This bench trains all five methods on the shared scaled-down corpus,
reports the same table, and asserts the paper's qualitative orderings.
"""

import numpy as np

from repro.docmodel import BLOCK_TAGS
from repro.eval import format_prf_table, time_per_resume

from .harness import (
    BLOCK_METHOD_BUILDERS,
    block_world,
    evaluate_block_methods,
    report,
    timing_documents,
)

PAPER_F1 = {
    "BERT+CRF": {"PInfo": 77.88, "EduExp": 63.95, "WorkExp": 60.77,
                 "ProjExp": 66.51, "Summary": 43.42, "Awards": 15.31,
                 "SkillDes": 40.94, "Title": 43.10},
    "HiBERT+CRF": {"PInfo": 73.28, "EduExp": 60.50, "WorkExp": 56.25,
                   "ProjExp": 59.88, "Summary": 36.60, "Awards": 10.48,
                   "SkillDes": 35.96, "Title": 37.25},
    "RoBERTa+GCN": {"PInfo": 89.95, "EduExp": 88.68, "WorkExp": 84.72,
                    "ProjExp": 85.68, "Summary": 83.95, "Awards": 70.12,
                    "SkillDes": 87.01, "Title": 84.88},
    "LayoutXLM": {"PInfo": 92.99, "EduExp": 90.85, "WorkExp": 86.20,
                  "ProjExp": 86.25, "Summary": 85.10, "Awards": 71.23,
                  "SkillDes": 88.64, "Title": 84.77},
    "Our Method": {"PInfo": 91.75, "EduExp": 91.00, "WorkExp": 93.59,
                   "ProjExp": 93.23, "Summary": 91.69, "Awards": 75.28,
                   "SkillDes": 92.68, "Title": 87.80},
}
PAPER_TIME = {"BERT+CRF": "3.26s", "HiBERT+CRF": "0.19s",
              "RoBERTa+GCN": "3.46s", "LayoutXLM": "3.88s",
              "Our Method": "0.27s"}


def macro_f1(scores) -> float:
    values = [scores[tag].f1 for tag in BLOCK_TAGS if tag in scores]
    return float(np.mean(values)) if values else 0.0


def attention_work_ratio(documents) -> float:
    """Attention position-pairs: sliding token windows vs the hierarchy.

    Token-level models re-encode overlapping windows of W pieces
    (W^2 pairs each); the hierarchy attends within each sentence plus once
    across the m sentences.  This is the scale-independent version of the
    paper's Time/Resume argument.
    """
    from repro.baselines import window_document

    _, tokenizer, _, token_config, *_ = block_world()
    from repro.baselines import TokenTaggerConfig

    config = TokenTaggerConfig(**token_config)
    token_pairs = 0
    hierarchy_pairs = 0
    for document in documents:
        windows = window_document(
            document, tokenizer, config, stride=config.window_words // 2
        )
        token_pairs += sum(len(w.word_ids) ** 2 for w in windows)
        lengths = [len(s.tokens) + 1 for s in document.sentences]
        hierarchy_pairs += sum(n**2 for n in lengths) + len(lengths) ** 2
    return token_pairs / max(hierarchy_pairs, 1)


def test_table2_block_classification(benchmark):
    # Train all five methods (cached across benches in this session).
    methods = benchmark.pedantic(
        lambda: {name: build() for name, build in BLOCK_METHOD_BUILDERS.items()},
        rounds=1,
        iterations=1,
    )
    results = evaluate_block_methods(methods)

    # Time/Resume on paper-profile multi-page documents.
    documents = timing_documents(3)
    times = {
        name: time_per_resume(model.predict, documents, repeats=1)
        for name, model in methods.items()
    }
    time_row = {name: f"{seconds:.2f}s" for name, seconds in times.items()}

    text = format_prf_table(
        results,
        BLOCK_TAGS,
        title="Table II (measured) — block classification F1 (R / P), in %",
        extra_rows={"Time/Resume": time_row},
    )
    paper_rows = "\n".join(
        f"  {method:12s} " + "  ".join(
            f"{tag}={value:.1f}" for tag, value in PAPER_F1[method].items()
        ) + f"  time={PAPER_TIME[method]}"
        for method in PAPER_F1
    )
    text += "\n\nTable II (paper F1):\n" + paper_rows
    report("table2_block_classification", text)

    macro = {name: macro_f1(scores) for name, scores in results.items()}
    summary = ", ".join(f"{k}: {v:.3f}" for k, v in macro.items())
    report("table2_macro_summary", f"macro-F1 -> {summary}")

    # Error analysis: our method's token-level confusion on the test split.
    from repro.eval import confusion_matrix, format_confusion, most_confused_pairs

    corpus, *_ = block_world()
    gold = [d.token_block_tags() for d in corpus.test]
    predicted = [methods["Our Method"].predict_token_tags(d) for d in corpus.test]
    matrix = confusion_matrix(gold, predicted, BLOCK_TAGS)
    confused = most_confused_pairs(matrix, BLOCK_TAGS, top=5)
    report(
        "table2_confusion",
        format_confusion(matrix, BLOCK_TAGS)
        + "\n\nmost confused (gold -> predicted): "
        + ", ".join(f"{g}->{p}: {n}" for g, p, n in confused),
    )

    # --- Shape assertions (paper's qualitative findings) ---------------
    # 1. Our multimodal pretrained model beats both text-only baselines.
    assert macro["Our Method"] > macro["BERT+CRF"]
    assert macro["Our Method"] > macro["HiBERT+CRF"]
    # 2. Our method is at least competitive with the strongest baseline.
    best_baseline = max(v for k, v in macro.items() if k != "Our Method")
    assert macro["Our Method"] >= best_baseline - 0.05
    # 3. Sentence-level methods are faster per resume than token-level
    #    ones.  The paper's ~15x gap reflects 12-layer/768-dim window
    #    re-encoding (compute-bound); our small models are partly
    #    dispatch-bound, so we assert a >= 1.5x wall-clock gap and report
    #    the architectural work ratio (attention position-pairs), which is
    #    an order of magnitude, alongside.
    sentence_level = min(times["Our Method"], times["HiBERT+CRF"])
    token_level = min(times["BERT+CRF"], times["LayoutXLM"], times["RoBERTa+GCN"])
    work = attention_work_ratio(documents)
    report(
        "table2_timing_detail",
        f"wall-clock token/sentence ratio: {token_level / sentence_level:.2f}x; "
        f"attention position-pair ratio (token-level windows vs hierarchy): "
        f"{work:.1f}x",
    )
    assert token_level >= 1.5 * sentence_level, times
