"""Figure 1 — three different styles of resume templates.

The paper shows three fictional resumes in distinct layouts to motivate
style diversity.  We render the first page of one resume per template
(classic single-column, two-column sidebar, compact) with gold block
annotations, and verify the layouts are measurably different.
"""

import numpy as np

from repro.corpus import (
    ClassicTemplate,
    CompactTemplate,
    ContentConfig,
    ResumeGenerator,
    TwoColumnTemplate,
    ascii_page,
    render_page,
)

from .harness import report


def render_all():
    renders = {}
    documents = {}
    for template in (ClassicTemplate(), TwoColumnTemplate(), CompactTemplate()):
        generator = ResumeGenerator(
            seed=41, content_config=ContentConfig.tiny(), templates=[template]
        )
        document = generator.batch(1, prefix=template.name)[0]
        documents[template.name] = document
        renders[template.name] = ascii_page(document, 1)
    return documents, renders


def test_fig1_templates(benchmark):
    documents, renders = benchmark.pedantic(render_all, rounds=1, iterations=1)

    parts = ["Figure 1 — three resume template styles (page 1, gold blocks)"]
    for name, art in renders.items():
        parts.append(f"\n=== template: {name} ===")
        parts.append(art)
    report("fig1_templates", "\n".join(parts))

    classic = documents["classic"]
    two_col = documents["two-column"]
    compact = documents["compact"]

    # Two-column layout: PInfo text sits left of the experience column.
    pinfo_x = [
        s.bbox.x0 for s in two_col.sentences if s.majority_block()[0] == "PInfo"
    ]
    work_x = [
        s.bbox.x0 for s in two_col.sentences if s.majority_block()[0] == "WorkExp"
    ]
    assert pinfo_x and work_x
    assert max(pinfo_x) < min(work_x)

    # Compact template uses smaller fonts than classic.
    assert (
        np.mean([s.mean_font_size for s in compact.sentences])
        < np.mean([s.mean_font_size for s in classic.sentences])
    )

    # All three carry ink on page 1 and have different ink distributions.
    grids = {name: render_page(d, 1) for name, d in documents.items()}
    for grid in grids.values():
        assert grid.sum() > 0
    assert not np.allclose(grids["classic"], grids["two-column"])
    assert not np.allclose(grids["classic"], grids["compact"])
