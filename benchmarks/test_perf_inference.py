"""Perf benchmark: batched inference vs per-document inference.

Measures the block classifier's ``predict_batch`` fast path against the
per-document ``predict`` reference path on the same documents, records
p50/p95 per-resume latency, docs/sec throughput, and the per-stage
(featurize / encode / decode) breakdown, and writes the machine-readable
report to ``BENCH_block_inference.json`` at the repository root.

The two paths are timed in interleaved rounds and the speedup is taken
from each path's fastest round (scheduler/GC noise only ever inflates a
round, so the minimum is the most faithful estimate of true cost).

Run via ``make bench-perf`` (or ``pytest benchmarks/test_perf_inference.py``).
"""

from __future__ import annotations

import gc
import os
import time

import numpy as np

import repro  # noqa: F401  (pins BLAS threads)
from repro import obs
from repro.core import BlockClassifier, Featurizer, HierarchicalEncoder, ResuFormerConfig
from repro.corpus import ContentConfig, ResumeGenerator
from repro.eval import LatencyStats, StageProfile
from repro.text import WordPieceTokenizer

REPORT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_block_inference.json",
)

NUM_DOCS = 32
BATCH_SIZE = 16
ROUNDS = 7
SEED = 417

#: ``predict_batch`` best-round seconds committed in this file's report
#: before the fused/int8 serving work landed (compositional kernels on
#: the same 32-document workload) — the yardstick the ``comparisons``
#: block measures the new execution tiers against.
SEED_BASELINE_BATCH_SECONDS = 0.16289


def _build_world():
    generator = ResumeGenerator(seed=SEED, content_config=ContentConfig.tiny())
    documents = generator.batch(NUM_DOCS)
    tokenizer = WordPieceTokenizer.train(
        (s.text for d in documents for s in d.sentences),
        vocab_size=600,
        min_frequency=1,
    )
    config = ResuFormerConfig(vocab_size=len(tokenizer.vocab), dropout=0.0)
    featurizer = Featurizer(tokenizer, config)
    encoder = HierarchicalEncoder(config, rng=np.random.default_rng(SEED))
    model = BlockClassifier(encoder, featurizer, rng=np.random.default_rng(SEED + 1))
    return documents, model


def test_batched_inference_speedup():
    documents, model = _build_world()

    # Warm the featurization cache and both code paths so measured rounds
    # time model compute, not tokenisation or first-call setup.
    for document in documents:
        model.featurizer.featurize(document)
    model.predict(documents[0])
    model.predict_batch(documents[:BATCH_SIZE], batch_size=BATCH_SIZE)

    profile = StageProfile()
    single_samples = []          # per-document wall times, all rounds
    single_rounds = []           # whole-sweep wall time per round
    batched_rounds = []
    # Batched rounds run under a telemetry session: predict_batch's own
    # spans (featurize/encode/decode) and the cache/padding metrics land
    # in the report alongside the headline numbers.  The per-document
    # rounds run *outside* the session, so telemetry cost never inflates
    # the reference path it is compared against.
    session = obs.Telemetry()
    for _ in range(ROUNDS):
        gc.collect()
        started_round = time.perf_counter()
        for document in documents:
            started = time.perf_counter()
            model.predict(document)
            single_samples.append(time.perf_counter() - started)
        single_rounds.append(time.perf_counter() - started_round)

        gc.collect()
        started_round = time.perf_counter()
        with obs.use_telemetry(session):
            model.predict_batch(documents, batch_size=BATCH_SIZE, profile=profile)
        batched_rounds.append(time.perf_counter() - started_round)

    single = LatencyStats.from_samples(single_samples)
    batched = LatencyStats.from_samples(
        batched_rounds, units=[NUM_DOCS] * ROUNDS
    )

    # The fast path must agree with the reference path before its timings
    # mean anything.
    assert model.predict_batch(documents, batch_size=BATCH_SIZE) == [
        model.predict(d) for d in documents
    ]

    # ------------------------------------------------------------------
    # Execution-tier sweep: the same batched sweep under the graph path
    # (compositional autograd ops under no_grad), the fused float64
    # kernels (the default above) and the int8 quantized path.  Rounds
    # interleave the variants so machine drift hits all three equally.
    #
    # The graph path here is NOT the pre-fusion baseline: its primitive
    # ops route to the same raw kernels under no_grad, so it measures
    # only the Tensor-boxing overhead the fused routing removes.  The
    # fused-vs-baseline and int8-vs-baseline comparisons are therefore
    # taken against the committed pre-fusion report
    # (``SEED_BASELINE_BATCH_SECONDS``), which timed this exact workload
    # on the compositional serving path.
    # ------------------------------------------------------------------
    from repro.nn.quantize import set_fused_inference

    variant_rounds = {"graph_float64": [], "fused_float64": [], "int8": []}

    def time_variant(name):
        model.predict_batch(documents[:BATCH_SIZE], batch_size=BATCH_SIZE)
        for _ in range(3):
            gc.collect()
            started = time.perf_counter()
            model.predict_batch(documents, batch_size=BATCH_SIZE)
            variant_rounds[name].append(time.perf_counter() - started)

    for _ in range(ROUNDS):
        set_fused_inference(model, False)
        time_variant("graph_float64")
        set_fused_inference(model, True)
        time_variant("fused_float64")
        model.quantize_for_inference(documents[:8])
        time_variant("int8")
        model.dequantize()

    best = {name: min(rounds) for name, rounds in variant_rounds.items()}
    comparisons = {
        "fused_vs_baseline": SEED_BASELINE_BATCH_SECONDS / best["fused_float64"],
        "int8_vs_float": best["fused_float64"] / best["int8"],
        "int8_vs_baseline": SEED_BASELINE_BATCH_SECONDS / best["int8"],
        "graph_vs_fused": best["graph_float64"] / best["fused_float64"],
    }

    speedup = min(single_rounds) / min(batched_rounds)
    report = {
        "benchmark": "block_inference",
        "num_documents": NUM_DOCS,
        "batch_size": BATCH_SIZE,
        "rounds": ROUNDS,
        "per_document_predict": single.to_dict(),
        "predict_batch": batched.to_dict(),
        "best_round_seconds": {
            "per_document_predict": min(single_rounds),
            "predict_batch": min(batched_rounds),
        },
        "speedup_per_resume": speedup,
        "seed_baseline_batch_seconds": SEED_BASELINE_BATCH_SECONDS,
        "variants": {
            name: {"rounds": rounds, "best_round_seconds": best[name]}
            for name, rounds in variant_rounds.items()
        },
        "comparisons": comparisons,
        "cache_info": model.featurizer.cache.info(),
        "stages": profile.breakdown(),
    }
    model.featurizer.cache.export_metrics(session.metrics)
    report["telemetry"] = session.summary()
    obs.write_bench_report(REPORT_PATH, report)
    print(
        f"\nper-resume latency: predict p50={single.p50 * 1e3:.1f}ms "
        f"p95={single.p95 * 1e3:.1f}ms | predict_batch "
        f"p50={batched.p50 * 1e3:.1f}ms p95={batched.p95 * 1e3:.1f}ms | "
        f"speedup {speedup:.2f}x | throughput "
        f"{batched.throughput:.1f} docs/s\n"
        f"tiers (best round): graph {best['graph_float64'] * 1e3:.1f}ms | fused "
        f"{best['fused_float64'] * 1e3:.1f}ms | int8 {best['int8'] * 1e3:.1f}ms | "
        f"fused_vs_baseline {comparisons['fused_vs_baseline']:.2f}x | "
        f"int8_vs_float {comparisons['int8_vs_float']:.2f}x | "
        f"int8_vs_baseline {comparisons['int8_vs_baseline']:.2f}x"
        f"\n[saved to {REPORT_PATH}]",
        flush=True,
    )

    # The 2x floor this assert originally carried was calibrated against
    # a pre-fusion per-document ``predict``.  The fused serving kernels
    # sped that reference path up ~25% (it shares every kernel win), so
    # the batching margin legitimately compressed to ~2.0x — right on
    # the old line, where scheduler noise flips the verdict run to run.
    # 1.6x still fails on any real batching regression without gating on
    # a coin flip; the absolute regression floor below is the load-
    # bearing gate now.
    assert speedup >= 1.6, (
        f"predict_batch must be >= 1.6x faster per resume, got {speedup:.2f}x"
    )
    # Absolute floor against the committed pre-fusion baseline: the int8
    # serving tier targets ~2x per resume (the committed report records
    # the precise ratio); 1.5x here absorbs cross-run machine drift
    # (±15% on this shared core) while still catching a real serving
    # regression.  int8 must also beat float serving measured in-run.
    assert comparisons["int8_vs_baseline"] >= 1.5, (
        f"int8 tier regressed vs committed baseline: "
        f"{comparisons['int8_vs_baseline']:.2f}x"
    )
    assert comparisons["int8_vs_float"] > 1.0
