"""Perf benchmark: batched inference vs per-document inference.

Measures the block classifier's ``predict_batch`` fast path against the
per-document ``predict`` reference path on the same documents, records
p50/p95 per-resume latency, docs/sec throughput, and the per-stage
(featurize / encode / decode) breakdown, and writes the machine-readable
report to ``BENCH_block_inference.json`` at the repository root.

The two paths are timed in interleaved rounds and the speedup is taken
from each path's fastest round (scheduler/GC noise only ever inflates a
round, so the minimum is the most faithful estimate of true cost).

Run via ``make bench-perf`` (or ``pytest benchmarks/test_perf_inference.py``).
"""

from __future__ import annotations

import gc
import os
import time

import numpy as np

import repro  # noqa: F401  (pins BLAS threads)
from repro import obs
from repro.core import BlockClassifier, Featurizer, HierarchicalEncoder, ResuFormerConfig
from repro.corpus import ContentConfig, ResumeGenerator
from repro.eval import LatencyStats, StageProfile
from repro.text import WordPieceTokenizer

REPORT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_block_inference.json",
)

NUM_DOCS = 32
BATCH_SIZE = 16
ROUNDS = 5
SEED = 417


def _build_world():
    generator = ResumeGenerator(seed=SEED, content_config=ContentConfig.tiny())
    documents = generator.batch(NUM_DOCS)
    tokenizer = WordPieceTokenizer.train(
        (s.text for d in documents for s in d.sentences),
        vocab_size=600,
        min_frequency=1,
    )
    config = ResuFormerConfig(vocab_size=len(tokenizer.vocab), dropout=0.0)
    featurizer = Featurizer(tokenizer, config)
    encoder = HierarchicalEncoder(config, rng=np.random.default_rng(SEED))
    model = BlockClassifier(encoder, featurizer, rng=np.random.default_rng(SEED + 1))
    return documents, model


def test_batched_inference_speedup():
    documents, model = _build_world()

    # Warm the featurization cache and both code paths so measured rounds
    # time model compute, not tokenisation or first-call setup.
    for document in documents:
        model.featurizer.featurize(document)
    model.predict(documents[0])
    model.predict_batch(documents[:BATCH_SIZE], batch_size=BATCH_SIZE)

    profile = StageProfile()
    single_samples = []          # per-document wall times, all rounds
    single_rounds = []           # whole-sweep wall time per round
    batched_rounds = []
    # Batched rounds run under a telemetry session: predict_batch's own
    # spans (featurize/encode/decode) and the cache/padding metrics land
    # in the report alongside the headline numbers.  The per-document
    # rounds run *outside* the session, so telemetry cost never inflates
    # the reference path it is compared against.
    session = obs.Telemetry()
    for _ in range(ROUNDS):
        gc.collect()
        started_round = time.perf_counter()
        for document in documents:
            started = time.perf_counter()
            model.predict(document)
            single_samples.append(time.perf_counter() - started)
        single_rounds.append(time.perf_counter() - started_round)

        gc.collect()
        started_round = time.perf_counter()
        with obs.use_telemetry(session):
            model.predict_batch(documents, batch_size=BATCH_SIZE, profile=profile)
        batched_rounds.append(time.perf_counter() - started_round)

    single = LatencyStats.from_samples(single_samples)
    batched = LatencyStats.from_samples(
        batched_rounds, units=[NUM_DOCS] * ROUNDS
    )

    # The fast path must agree with the reference path before its timings
    # mean anything.
    assert model.predict_batch(documents, batch_size=BATCH_SIZE) == [
        model.predict(d) for d in documents
    ]

    speedup = min(single_rounds) / min(batched_rounds)
    report = {
        "benchmark": "block_inference",
        "num_documents": NUM_DOCS,
        "batch_size": BATCH_SIZE,
        "rounds": ROUNDS,
        "per_document_predict": single.to_dict(),
        "predict_batch": batched.to_dict(),
        "best_round_seconds": {
            "per_document_predict": min(single_rounds),
            "predict_batch": min(batched_rounds),
        },
        "speedup_per_resume": speedup,
        "cache_info": model.featurizer.cache.info(),
        "stages": profile.breakdown(),
    }
    model.featurizer.cache.export_metrics(session.metrics)
    report["telemetry"] = session.summary()
    obs.write_json(REPORT_PATH, report)
    print(
        f"\nper-resume latency: predict p50={single.p50 * 1e3:.1f}ms "
        f"p95={single.p95 * 1e3:.1f}ms | predict_batch "
        f"p50={batched.p50 * 1e3:.1f}ms p95={batched.p95 * 1e3:.1f}ms | "
        f"speedup {speedup:.2f}x | throughput "
        f"{batched.throughput:.1f} docs/s\n[saved to {REPORT_PATH}]",
        flush=True,
    )

    assert speedup >= 2.0, (
        f"predict_batch must be >= 2x faster per resume, got {speedup:.2f}x"
    )
