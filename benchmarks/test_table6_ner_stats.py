"""Table VI — intra-block information extraction dataset statistics.

Paper: 20,000 train / 400 validation / 600 test samples; avg tokens
362/359/381; avg entities 3.5/4.1/4.3.  Train samples are distantly
annotated blocks with >= 1 matched entity; validation/test are
expert-labeled (gold here).
"""

from repro.corpus import ContentConfig, build_ner_corpus, ner_stats
from repro.eval import format_stats_table
from repro.ner import DistantAnnotator, annotate_examples, build_dictionaries

from .harness import report

PAPER_ROWS = {
    "train": {"# of samples": 20000, "avg # of tokens": 362, "avg # of entities": 3.5},
    "validation": {"# of samples": 400, "avg # of tokens": 359, "avg # of entities": 4.1},
    "test": {"# of samples": 600, "avg # of tokens": 381, "avg # of entities": 4.3},
}


def build_splits():
    corpus = build_ner_corpus(
        num_train_docs=60,
        num_validation_docs=6,
        num_test_docs=9,
        seed=6,
        content_config=ContentConfig.paper(),
    )
    annotator = DistantAnnotator(build_dictionaries(coverage=0.6, seed=1, noise=0.4))
    train = annotate_examples(corpus.train, annotator)
    return {"train": train, "validation": corpus.validation, "test": corpus.test}


def test_table6_ner_stats(benchmark):
    splits = benchmark.pedantic(build_splits, rounds=1, iterations=1)

    measured = {}
    for name, examples in splits.items():
        stats = ner_stats(examples)
        measured[name] = {
            "# of samples": stats.num_samples,
            "avg # of tokens": stats.avg_tokens,
            "avg # of entities": stats.avg_entities,
        }
    text = format_stats_table(measured, title="Table VI (measured)")
    text += "\n\n" + format_stats_table(PAPER_ROWS, title="Table VI (paper)")
    report("table6_ner_stats", text)

    # Shape: every distant train sample has >= 1 entity; blocks carry a
    # handful of entities each, like the paper's 3.5-4.3.
    assert all(e.num_entities >= 1 for e in splits["train"])
    for name, stats in measured.items():
        assert 1.0 <= stats["avg # of entities"] <= 8.0, name
        assert stats["avg # of tokens"] >= 10, name
    assert measured["train"]["# of samples"] > measured["test"]["# of samples"]
