"""Figure 3 — case study: LayoutXLM vs our method on a 3-page resume.

The paper shows per-page block maps from both models on one real resume:
LayoutXLM, limited to local windows, fragments one work experience into two
and misses an Awards insert; our method, seeing the whole document, keeps
block structure coherent.  LayoutXLM took 4.28s vs 0.29s for ours (~15x).

This bench parses one held-out multi-page resume with both trained models,
renders the annotated pages, and checks the speed gap plus a block-count
coherence metric (predicted block instances should not exceed gold by more
than the token-level model's).
"""

import time

from repro.corpus import ContentConfig, ResumeGenerator, ascii_page
from repro.docmodel import BLOCK_SCHEME, iob_to_spans

from .harness import block_world, layoutxlm_model, our_model, report


def pick_case_document():
    """A multi-page paper-profile resume unseen by either model."""
    generator = ResumeGenerator(
        seed=4242, content_config=ContentConfig.paper()
    )
    for document in generator.stream(10):
        if document.num_pages >= 3:
            return document
    raise AssertionError("no 3-page resume in the probe stream")


def block_instances(labels):
    ids = [
        BLOCK_SCHEME.label_id(l) if l in BLOCK_SCHEME.labels else 0
        for l in labels
    ]
    return iob_to_spans(ids, BLOCK_SCHEME)


def test_fig3_case_study(benchmark):
    models = benchmark.pedantic(
        lambda: (our_model(), layoutxlm_model()), rounds=1, iterations=1
    )
    ours, teacher = models
    block_world()  # ensure shared state is materialised
    document = pick_case_document()

    started = time.perf_counter()
    ours_labels = ours.predict(document)
    ours_seconds = time.perf_counter() - started

    started = time.perf_counter()
    teacher_labels = teacher.predict(document)
    teacher_seconds = time.perf_counter() - started

    gold_labels = BLOCK_SCHEME.decode(document.block_iob_labels(BLOCK_SCHEME))

    parts = [
        f"Figure 3 — case study on {document.doc_id} "
        f"({document.num_pages} pages, {document.num_sentences} sentences)",
        f"\nLayoutXLM-like: {teacher_seconds:.2f}s/resume  "
        f"(paper: 4.28s)   blocks={len(block_instances(teacher_labels))}",
        f"Our method    : {ours_seconds:.2f}s/resume  "
        f"(paper: 0.29s)   blocks={len(block_instances(ours_labels))}",
        f"Gold          : blocks={len(block_instances(gold_labels))}",
    ]
    tags = {
        "ours": [l if l == "O" else l[2:] for l in ours_labels],
        "layoutxlm": [l if l == "O" else l[2:] for l in teacher_labels],
    }
    for page in range(1, document.num_pages + 1):
        parts.append(f"\n--- our method, page {page} ---")
        parts.append(ascii_page(document, page, labels=tags["ours"]))
    parts.append("\n--- layoutxlm-like, page 1 (for contrast) ---")
    parts.append(ascii_page(document, 1, labels=tags["layoutxlm"]))
    report("fig3_case_study", "\n".join(parts))

    # Shape: the sentence-level model processes the full resume at once and
    # is several times faster than the windowed token-level model.
    assert ours_seconds < teacher_seconds, (ours_seconds, teacher_seconds)
    # Both models produce one label per sentence.
    assert len(ours_labels) == document.num_sentences
    assert len(teacher_labels) == document.num_sentences
