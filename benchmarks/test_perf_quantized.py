"""Quantization parity benchmark: int8 serving vs float serving.

Fine-tunes a small block classifier briefly (so labels have real
margins), then serves the same documents through the float64 fused path
and the int8 quantized path, and reports:

* block-level entity F1 of each path against the corpus gold labels,
* the :func:`repro.obs.compare` parity gate — int8 F1 may not fall more
  than ``F1_TOLERANCE`` relative to float F1 — whose JSON diff is the
  artifact CI uploads,
* best-round serving latency for both paths and the int8 speedup.

Run via ``make bench-quant`` (or ``pytest benchmarks/test_perf_quantized.py``).
The report lands in ``BENCH_quantized_inference.json`` at the repo root.
"""

from __future__ import annotations

import dataclasses
import gc
import os
import time

import numpy as np

import repro  # noqa: F401  (pins BLAS threads)
from repro import obs
from repro.core import (
    BlockClassifier,
    BlockTrainer,
    Featurizer,
    HierarchicalEncoder,
    LabeledDocument,
    ResuFormerConfig,
)
from repro.corpus import ContentConfig, ResumeGenerator
from repro.docmodel import BLOCK_SCHEME
from repro.eval import entity_prf
from repro.obs.compare import Gate, compare_summaries
from repro.text import WordPieceTokenizer

REPORT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_quantized_inference.json",
)

NUM_DOCS = 24
TRAIN_DOCS = 12
BATCH_SIZE = 8
ROUNDS = 3
SEED = 1129

#: Relative block-F1 the int8 path may lose versus float serving.
F1_TOLERANCE = 0.05


def _build_world():
    generator = ResumeGenerator(seed=SEED, content_config=ContentConfig.tiny())
    documents = generator.batch(NUM_DOCS + TRAIN_DOCS)
    tokenizer = WordPieceTokenizer.train(
        (s.text for d in documents for s in d.sentences),
        vocab_size=500,
        min_frequency=1,
    )
    config = ResuFormerConfig(
        vocab_size=len(tokenizer.vocab),
        hidden_dim=32,
        sentence_layers=1,
        sentence_heads=2,
        document_layers=1,
        document_heads=2,
        visual_proj_dim=8,
        dropout=0.0,
    )
    featurizer = Featurizer(tokenizer, config)
    encoder = HierarchicalEncoder(config, rng=np.random.default_rng(SEED))
    model = BlockClassifier(
        encoder, featurizer, lstm_hidden=16, rng=np.random.default_rng(SEED + 1)
    )
    train = [LabeledDocument.from_gold(d) for d in documents[NUM_DOCS:]]
    BlockTrainer(model, seed=0).fit(train, epochs=6)
    return documents[:NUM_DOCS], model


def _timed_sweep(model, documents):
    rounds = []
    for _ in range(ROUNDS):
        gc.collect()
        started = time.perf_counter()
        labels = model.predict_batch(documents, batch_size=BATCH_SIZE)
        rounds.append(time.perf_counter() - started)
    return labels, rounds


def test_quantized_parity_and_speedup():
    documents, model = _build_world()
    gold = [
        BLOCK_SCHEME.decode(d.block_iob_labels(BLOCK_SCHEME)) for d in documents
    ]

    model.predict_batch(documents, batch_size=BATCH_SIZE)  # warm cache + kernels
    float_labels, float_rounds = _timed_sweep(model, documents)
    float_score = entity_prf(gold, float_labels, BLOCK_SCHEME)

    model.quantize_for_inference(documents[:8])
    model.predict_batch(documents, batch_size=BATCH_SIZE)  # warm int8 kernels
    int8_labels, int8_rounds = _timed_sweep(model, documents)
    int8_score = entity_prf(gold, int8_labels, BLOCK_SCHEME)
    agreement = entity_prf(float_labels, int8_labels, BLOCK_SCHEME)

    gate = compare_summaries(
        {"block_f1.gold": float_score.f1, "block_f1.float_agreement": 1.0},
        {"block_f1.gold": int8_score.f1, "block_f1.float_agreement": agreement.f1},
        gates=[Gate("block_f1.*", F1_TOLERANCE, "rel_decrease")],
    )

    speedup = min(float_rounds) / min(int8_rounds)
    report = {
        "benchmark": "quantized_inference",
        "num_documents": NUM_DOCS,
        "batch_size": BATCH_SIZE,
        "rounds": ROUNDS,
        "float": {
            "block_f1_vs_gold": dataclasses.asdict(float_score),
            "rounds_seconds": float_rounds,
            "best_round_seconds": min(float_rounds),
        },
        "int8": {
            "block_f1_vs_gold": dataclasses.asdict(int8_score),
            "block_f1_vs_float": dataclasses.asdict(agreement),
            "rounds_seconds": int8_rounds,
            "best_round_seconds": min(int8_rounds),
        },
        "int8_vs_float_speedup": speedup,
        "parity_gate": gate,
    }
    obs.write_bench_report(REPORT_PATH, report)
    print(
        f"\nblock F1 vs gold: float {float_score.f1:.3f} | int8 "
        f"{int8_score.f1:.3f} | int8/float label agreement "
        f"{agreement.f1:.3f}\nbest round: float {min(float_rounds) * 1e3:.1f}ms "
        f"| int8 {min(int8_rounds) * 1e3:.1f}ms | speedup {speedup:.2f}x"
        f"\n[saved to {REPORT_PATH}]",
        flush=True,
    )

    assert gate["ok"], gate["regressions"]
    assert speedup > 1.0, f"int8 must beat float serving, got {speedup:.2f}x"
