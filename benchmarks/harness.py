"""Shared infrastructure for the table/figure benchmarks.

Each benchmark regenerates one table or figure of the paper at CPU scale.
Heavy setup (corpus generation, model training) happens once per pytest
session through the cached context builders here; the pytest-benchmark
fixture then times the *inference* path of each experiment.

Reports are written to ``benchmarks/results/<name>.txt`` and echoed to the
real stdout (bypassing pytest capture) so ``pytest benchmarks/`` shows the
paper-style tables inline.
"""

from __future__ import annotations

import os
import sys
from functools import lru_cache
from typing import Dict, List

import numpy as np

import repro  # noqa: F401  (pins BLAS threads)
from repro.baselines import (
    BertCrf,
    HiBertCrf,
    LayoutXlmLike,
    RobertaGcn,
    TokenTaggerConfig,
    TokenTaggerTrainer,
)
from repro.core import (
    BlockClassifier,
    BlockTrainer,
    Featurizer,
    HierarchicalEncoder,
    LabeledDocument,
    Pretrainer,
    PretrainObjectives,
    ResuFormerConfig,
    pseudo_label,
    run_distillation,
)
from repro.corpus import ContentConfig, ResumeGenerator, build_block_corpus
from repro.docmodel import BLOCK_SCHEME, BLOCK_TAGS
from repro.eval import AreaEvaluation
from repro.nn import AdamW, ParamGroup, clip_grad_norm
from repro.text import WordPieceTokenizer

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Experiment scale (paper counts scaled down, ratios approximately kept).
NUM_PRETRAIN = 24
NUM_TRAIN = 16
NUM_VALIDATION = 8
NUM_TEST = 12
SEED = 2023

#: Seeds for validation-based model selection, applied uniformly to every
#: learned method (small-data fine-tuning has real seed variance; selecting
#: by validation — never test — is standard protocol).
SELECTION_SEEDS = (0, 1, 2)


def report(name: str, text: str) -> str:
    """Echo a report to the terminal (despite capture) and persist it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(f"\n{text}\n[saved to {path}]", file=sys.__stdout__, flush=True)
    return path


@lru_cache(maxsize=1)
def block_world():
    """Corpus + tokenizer + configs shared by the block-task benchmarks."""
    corpus = build_block_corpus(
        num_pretrain=NUM_PRETRAIN,
        num_train=NUM_TRAIN,
        num_validation=NUM_VALIDATION,
        num_test=NUM_TEST,
        seed=SEED,
        content_config=ContentConfig.tiny(),
    )
    tokenizer = WordPieceTokenizer.train(
        (s.text for d in corpus.pretrain for s in d.sentences),
        vocab_size=1200,
        min_frequency=1,
    )
    model_config = ResuFormerConfig(vocab_size=len(tokenizer.vocab), dropout=0.0)
    token_config = dict(
        vocab_size=len(tokenizer.vocab),
        hidden_dim=64,
        layers=2,
        heads=4,
        window_words=384,  # the paper's 512-token limit, scaled
        dropout=0.0,
    )
    labeled = [LabeledDocument.from_gold(d) for d in corpus.train]
    validation = [LabeledDocument.from_gold(d) for d in corpus.validation]
    evaluation = AreaEvaluation(corpus.test)
    return corpus, tokenizer, model_config, token_config, labeled, validation, evaluation


def train_our_model(
    objectives: PretrainObjectives = None,
    use_kd: bool = False,
    seed: int = 0,
    pretrain_epochs: int = 4,
    finetune_epochs: int = 14,
):
    """Train ResuFormer (pretraining + fine-tuning, optional Algorithm-1 KD).

    KD defaults off at this reproduction scale: the LayoutXLM-like teacher
    tops out well below the student (macro-F1 ~0.66 vs ~0.84), so its hard
    pseudo-labels inject more noise than knowledge — the opposite of the
    paper's setting, where the teacher is a 270M-parameter model pretrained
    on 30M documents.  Table III measures the KD variant explicitly and
    EXPERIMENTS.md discusses the divergence.
    """
    corpus, tokenizer, model_config, token_config, labeled, validation, _ = block_world()
    featurizer = Featurizer(tokenizer, model_config)
    encoder = HierarchicalEncoder(model_config, rng=np.random.default_rng(seed))

    objectives = objectives or PretrainObjectives()
    if objectives.any():
        pretrainer = Pretrainer(
            encoder, featurizer, objectives=objectives, seed=seed
        )
        pretrainer.fit(corpus.pretrain, epochs=pretrain_epochs, batch_size=4)

    classifier = BlockClassifier(
        encoder, featurizer, rng=np.random.default_rng(seed + 1)
    )
    trainer = BlockTrainer(classifier, encoder_lr=1e-3, head_lr=5e-3, seed=seed)
    if use_kd:
        teacher = layoutxlm_model()
        unlabeled = corpus.pretrain[: NUM_TRAIN]
        pseudo = pseudo_label(teacher, unlabeled)
        run_distillation(
            trainer, labeled, pseudo, validation=validation,
            pseudo_epochs=1, finetune_epochs=finetune_epochs,
        )
    else:
        trainer.fit(
            labeled, validation=validation, epochs=finetune_epochs, patience=5
        )
    return classifier


def _validation_macro(model) -> float:
    """Validation-split area macro-F1 (selection metric; test stays held out)."""
    corpus, *_ = block_world()
    evaluation = AreaEvaluation(corpus.validation)
    scores = evaluation.evaluate(model)
    values = [scores[t].f1 for t in BLOCK_TAGS if t in scores]
    return float(np.mean(values)) if values else 0.0


def best_of_seeds(builder, seeds=SELECTION_SEEDS):
    """Train ``builder(seed)`` per seed, keep the best by validation macro."""
    best_model, best_value = None, -np.inf
    for seed in seeds:
        model = builder(seed)
        value = _validation_macro(model)
        if value > best_value:
            best_model, best_value = model, value
    return best_model


@lru_cache(maxsize=1)
def our_model():
    return best_of_seeds(lambda seed: train_our_model(seed=seed))


def _train_token_model(cls, seed: int, epochs: int, lr: float, mlm: bool):
    corpus, tokenizer, _, token_config, *_ = block_world()
    model = cls(
        TokenTaggerConfig(**token_config), tokenizer,
        rng=np.random.default_rng(10 + seed),
    )
    if mlm:
        model.pretrain_mlm(
            corpus.pretrain[:8], epochs=1, learning_rate=5e-4, seed=seed
        )
    TokenTaggerTrainer(model, learning_rate=lr, seed=seed).fit(
        corpus.train, epochs=epochs
    )
    return model


@lru_cache(maxsize=1)
def bert_crf_model():
    return best_of_seeds(
        lambda seed: _train_token_model(BertCrf, seed, epochs=10, lr=2e-3, mlm=False)
    )


@lru_cache(maxsize=1)
def layoutxlm_model():
    return best_of_seeds(
        lambda seed: _train_token_model(
            LayoutXlmLike, seed, epochs=14, lr=3e-3, mlm=True
        )
    )


@lru_cache(maxsize=1)
def roberta_gcn_model():
    # "RoBERTa" brings language-model pre-training in the paper.
    return best_of_seeds(
        lambda seed: _train_token_model(RobertaGcn, seed, epochs=10, lr=2e-3, mlm=True)
    )


def _train_hibert(seed: int):
    corpus, tokenizer, model_config, _, labeled, validation, _ = block_world()
    model = HiBertCrf(
        Featurizer(tokenizer, model_config), rng=np.random.default_rng(13 + seed)
    )
    optimizer = AdamW([ParamGroup(model.parameters(), 2e-3)], weight_decay=0.01)
    rng = np.random.default_rng(seed)
    features = [
        (model.featurizer.featurize(item.document), item.labels)
        for item in labeled
    ]
    for _ in range(12):
        for index in rng.permutation(len(features)):
            doc_features, labels = features[index]
            optimizer.zero_grad()
            loss = model.loss(doc_features, labels)
            loss.backward()
            clip_grad_norm(model.parameters(), 5.0)
            optimizer.step()
    return model


@lru_cache(maxsize=1)
def hibert_model():
    return best_of_seeds(_train_hibert)


BLOCK_METHOD_BUILDERS = {
    "BERT+CRF": bert_crf_model,
    "HiBERT+CRF": hibert_model,
    "RoBERTa+GCN": roberta_gcn_model,
    "LayoutXLM": layoutxlm_model,
    "Our Method": our_model,
}


def evaluate_block_methods(methods: Dict[str, object]):
    """Per-tag area P/R/F1 for each method on the shared test split."""
    *_, evaluation = block_world()
    return {name: evaluation.evaluate(model) for name, model in methods.items()}


def timing_documents(count: int = 3) -> List:
    """Paper-profile (multi-page) documents for the Time/Resume row."""
    generator = ResumeGenerator(
        seed=SEED + 99, content_config=ContentConfig.paper()
    )
    return generator.batch(count)
