"""Table V — ablation of the distantly supervised NER model.

Paper: full method > w/o HCS > w/o SL > w/o SD on every tag; dropping the
self-distillation framework (w/o SD — plain training on distant labels with
early stopping) is by far the largest drop.
"""

from repro.eval import format_prf_table

from .harness import report
from .ner_harness import (
    TABLE4_ROWS,
    macro_f1,
    ner_world,
    our_ner_model,
    scores_by_block,
    train_our_ner,
)

PAPER_MACRO_F1 = {
    "Our Method": 92.3, "w/o HCS": 90.8, "w/o SL": 89.4, "w/o SD": 81.0,
}


def build_variants():
    return {
        "Our Method": our_ner_model(),
        "w/o HCS": train_our_ner(seed=31, use_confidence_selection=False),
        "w/o SL": train_our_ner(seed=32, use_soft_labels=False),
        "w/o SD": train_our_ner(seed=33, use_self_distillation=False),
    }


def test_table5_ner_ablation(benchmark):
    variants = benchmark.pedantic(build_variants, rounds=1, iterations=1)
    corpus, *_ = ner_world()
    test = corpus.test

    results = {
        name: scores_by_block(model, test) for name, model in variants.items()
    }
    row_keys = [f"{block}/{tag}" for block, tag in TABLE4_ROWS]
    text = format_prf_table(
        results, row_keys,
        title="Table V (measured) — NER ablation: F1 (R / P), in %",
    )
    text += "\n\nTable V (paper, macro-F1): " + ", ".join(
        f"{k}={v:.1f}" for k, v in PAPER_MACRO_F1.items()
    )
    report("table5_ner_ablation", text)

    macros = {name: macro_f1(scores) for name, scores in results.items()}
    report(
        "table5_macro_summary",
        "macro-F1 -> " + ", ".join(f"{k}: {v:.3f}" for k, v in macros.items()),
    )

    # Shape: the full self-distillation recipe is at least as good as every
    # ablation (within small-scale noise).
    full = macros["Our Method"]
    for name, value in macros.items():
        assert full >= value - 0.05, (name, macros)
