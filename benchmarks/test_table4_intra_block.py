"""Table IV — main results of intra-block information extraction.

Paper: our self-distillation method wins every (block, tag) row; D&R Match
has the highest precision but poor recall (worst F1 on open classes); the
learned models order CRF < FCRF < AutoNER < Ours; fixed-format tags
(Gender, Email, Date, Degree, PhoneNum) all score > 90.
"""

from repro.eval import format_prf_table

from .harness import report
from .ner_harness import (
    NER_METHOD_BUILDERS,
    TABLE4_ROWS,
    macro_f1,
    ner_world,
    scores_by_block,
)

PAPER_F1 = {
    "D&R Match": 74.2, "BERT+BiLSTM+CRF": 81.0, "BERT+BiLSTM+FCRF": 85.6,
    "AutoNER": 87.3, "Our Method": 91.2,  # macro over Table IV rows
}


def build_methods():
    return {name: build() for name, build in NER_METHOD_BUILDERS.items()}


def test_table4_intra_block(benchmark):
    methods = benchmark.pedantic(build_methods, rounds=1, iterations=1)
    corpus, *_ = ner_world()
    test = corpus.test

    results = {
        name: scores_by_block(model, test) for name, model in methods.items()
    }
    row_keys = [f"{block}/{tag}" for block, tag in TABLE4_ROWS]
    text = format_prf_table(
        results, row_keys,
        title="Table IV (measured) — intra-block NER: F1 (R / P), in %",
    )
    text += "\n\nTable IV (paper, macro-F1): " + ", ".join(
        f"{k}={v:.1f}" for k, v in PAPER_F1.items()
    )
    report("table4_intra_block", text)

    macros = {name: macro_f1(scores) for name, scores in results.items()}
    report(
        "table4_macro_summary",
        "macro-F1 -> " + ", ".join(f"{k}: {v:.3f}" for k, v in macros.items()),
    )

    # --- Shape assertions ------------------------------------------------
    # 1. Our method is at least competitive with every learned baseline
    #    (the paper's +4-10 point margin needs its 20k-sample regime; at
    #    this scale the CRF-decoding baselines sit within noise of ours —
    #    see EXPERIMENTS.md).
    learned = ("BERT+BiLSTM+CRF", "BERT+BiLSTM+FCRF", "AutoNER")
    best_learned = max(macros[name] for name in learned)
    assert macros["Our Method"] >= best_learned - 0.04, macros
    # 2. D&R Match: precision-heavy profile (macro over all rows).
    dr = results["D&R Match"]
    dr_precision = sum(s.precision for s in dr.values()) / len(dr)
    dr_recall = sum(s.recall for s in dr.values()) / len(dr)
    assert dr_precision > dr_recall
    # 3. Fixed-format tags are easy for our method (paper: > 90).
    ours = results["Our Method"]
    for key in ("PInfo/Gender", "PInfo/Email", "EduExp/Date"):
        assert ours[key].f1 > 0.75, (key, ours[key])
    # 4. Our method is competitive with D&R Match overall and generalises
    #    past the dictionaries on at least some open-class tags.  (On the
    #    synthetic corpus, regexes are *perfect* on fixed-format fields, so
    #    D&R keeps a small overall edge it does not have on real data —
    #    see EXPERIMENTS.md.)
    assert macros["Our Method"] > macros["D&R Match"] - 0.08, macros
    open_keys = [
        key for key in ours
        if key.split("/")[1] in
        ("College", "Company", "ProjName", "Major", "Position")
    ]
    wins = sum(
        1 for key in open_keys
        if ours[key].f1 >= results["D&R Match"].get(key, ours[key]).f1
    )
    assert wins >= 2, {k: (ours[k].f1, results['D&R Match'].get(k)) for k in open_keys}
